//! Vendored stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec needs: a cheaply-cloneable immutable
//! byte buffer ([`Bytes`]) with cursor-style reads ([`Buf`]), and a growable
//! write buffer ([`BytesMut`]) with little-endian put methods ([`BufMut`]).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Sub-slice sharing the same backing storage.
    ///
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.end - self.start;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice out of bounds: {lo}..{hi} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

/// Cursor-style read access over a contiguous buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

/// Growable write buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Split off everything written so far, leaving `self` empty.
    ///
    /// The real crate returns a view into the same shared region and keeps
    /// the remaining capacity in `self` for reuse; this shim moves the
    /// whole backing `Vec` out instead, which preserves the call pattern
    /// (`buf.split().freeze()`) at the cost of not retaining pool
    /// capacity.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Append-style write access.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-2.5);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_advance_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(&c[..], &[3, 4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn copy_to_bytes_consumes() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(b.remaining(), 2);
    }
}
