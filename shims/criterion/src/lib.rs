//! Vendored stand-in for the `criterion` crate.
//!
//! Benchmarks in this workspace use a small slice of the criterion API:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `Bencher::iter`/`iter_batched`, and
//! `black_box`. This shim keeps those entry points source-compatible and
//! measures wall-clock time with `std::time::Instant`: it reports
//! median-of-samples ns/iter to stdout rather than criterion's full
//! statistical analysis, which is plenty for tracking relative regressions
//! offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How to size batches for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 60 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Iterations the routine should run per sample (set by the calibrator).
    iters: u64,
    /// Measured time for the sample, excluding `iter_batched` setup.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the per-sample iteration count so each sample takes roughly
    // 2ms: long enough to dominate timer overhead, short enough that a
    // full suite stays fast.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!("{id:<44} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, {iters} iters x {sample_size} samples)");
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every declared group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
