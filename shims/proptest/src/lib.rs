//! Vendored stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically (no registry access), so property tests
//! run on this minimal, deterministic re-implementation of the proptest API
//! surface they use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `prop_oneof!`, `Just`, `any`, numeric ranges,
//! single-character-class string "regexes", and the `collection` / `num`
//! helpers. Differences from upstream: no shrinking (failures report the
//! exact generated inputs instead), and the per-test RNG is seeded from the
//! test's module path, so runs are reproducible by construction.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashSet};
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------- rng

/// Deterministic per-test random source (SplitMix64). Also carries the
/// remaining depth budget for `prop_recursive` strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    depth: u32,
}

impl TestRng {
    /// Seed from a test's name so each test gets a stable, independent
    /// stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
            depth: 0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------- errors & config

/// A failed property check (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------- strategy core

/// A way to generate values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Build recursive structures: `recurse` receives a handle generating
    /// sub-values (bounded to `depth` levels), and returns the strategy for
    /// a compound value.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let cell: Rc<RefCell<Option<BoxedStrategy<Self::Value>>>> = Rc::new(RefCell::new(None));
        let handle = {
            let leaf = leaf.clone();
            let cell = Rc::clone(&cell);
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.depth == 0 || rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    let saved = rng.depth;
                    rng.depth = saved - 1;
                    let branch = cell.borrow().clone().expect("recursive strategy init");
                    let v = branch.generate(rng);
                    rng.depth = saved;
                    v
                }
            }))
        };
        let branch = recurse(handle.clone()).boxed();
        *cell.borrow_mut() = Some(branch);
        // The root goes through the same depth-guarded handle: a branch
        // node consumes one depth level, so generated structures never
        // nest deeper than `depth`.
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let saved = rng.depth;
            rng.depth = depth;
            let v = handle.generate(rng);
            rng.depth = saved;
            v
        }))
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---------------------------------------------------------------- any / Arbitrary

/// Types with a canonical unconstrained generator, for [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------- string patterns

/// `&str` patterns act as regex strategies. Supported shape: a single
/// character class with a bounded repetition — `"[a-z0-9_]{1,8}"` — which is
/// the only form this workspace uses.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn bad_pattern(pattern: &str) -> ! {
    panic!("unsupported string pattern {pattern:?}: expected \"[class]{{lo,hi}}\"")
}

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let Some(rest) = pattern.strip_prefix('[') else {
        bad_pattern(pattern)
    };
    let Some((class, rep)) = rest.split_once(']') else {
        bad_pattern(pattern)
    };
    // Expand escapes, then ranges.
    let mut raw: Vec<char> = Vec::new();
    let mut it = class.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('n') => raw.push('\n'),
                Some('t') => raw.push('\t'),
                Some(other) => raw.push(other),
                None => bad_pattern(pattern),
            }
        } else {
            raw.push(c);
        }
    }
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if i + 2 < raw.len() && raw[i + 1] == '-' {
            let (a, b) = (raw[i] as u32, raw[i + 2] as u32);
            assert!(a <= b, "bad range in pattern {pattern:?}");
            alphabet.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(raw[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
    let Some(rep) = rep.strip_prefix('{') else {
        bad_pattern(pattern)
    };
    let Some(rep) = rep.strip_suffix('}') else {
        bad_pattern(pattern)
    };
    let (lo, hi) = match rep.split_once(',') {
        Some((l, h)) => (l.trim().parse().unwrap(), h.trim().parse().unwrap()),
        None => {
            let n = rep.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi, "bad repetition in pattern {pattern:?}");
    (alphabet, lo, hi)
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------- collections

pub mod collection {
    use super::{BTreeSet, HashSet, Strategy, TestRng};

    /// Inclusive-exclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not contain
            // `target` distinct values.
            for _ in 0..(target * 10 + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            for _ in 0..(target * 10 + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

// ---------------------------------------------------------------- num

pub mod num {
    /// Strategies over `f64`.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Generates normal (non-zero, non-subnormal, finite) floats of
        /// either sign, like proptest's `num::f64::NORMAL`.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- macros

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion: fails the current case (with generated inputs
/// reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property failed at case {}/{}: {}\n  inputs: {}",
                        case, config.cases, err, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..7), &mut rng);
            assert!((-50..7).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_class_and_length() {
        let mut rng = super::TestRng::for_test("strings");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-z0-9_]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::generate(&"[ -~\\n\\t]{0,16}", &mut rng);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = super::TestRng::for_test("same");
        let mut b = super::TestRng::for_test("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn macro_expands_and_runs(x in 0u32..10, label in "[a-z]{1,4}") {
            prop_assert!(x < 10);
            prop_assert!(!label.is_empty() && label.len() <= 4, "len {}", label.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_override_applies(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = super::TestRng::for_test("trees");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion produced compound values");
    }
}
