//! Vendored stand-in for the `rand` crate.
//!
//! The workspace builds hermetically (no registry access), so the external
//! crates it names are provided as local shims implementing exactly the API
//! surface used here: `simcore::SimRng` implements [`RngCore`] so downstream
//! code can stay generic over RNG sources.

/// Error type for fallible RNG operations (never produced by this workspace's
/// generators; present for trait compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
