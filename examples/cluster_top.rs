//! A `top`-like cluster dashboard: an 8-node cluster where node 0 watches
//! everyone through `/proc/cluster`, while workloads come and go. Also
//! shows what the differential filter does to monitoring traffic.
//!
//! Run with: `cargo run --example cluster_top`

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::{SimDur, SimTime};
use simnet::NodeId;

fn dashboard(sim: &ClusterSim) -> String {
    let w = sim.world();
    let mut out = String::new();
    out.push_str(&format!("t={:>6}  ", format!("{}", sim.now())));
    out.push_str("node:  load  free_mb  disk_sec/s\n");
    for i in 1..w.len() {
        let name = &w.hosts[i].name;
        let load = w.dmons[0]
            .remote_value(NodeId(i), "LOADAVG")
            .map_or(f64::NAN, |(v, _)| v);
        let free = w.dmons[0]
            .remote_value(NodeId(i), "FREEMEM")
            .map_or(f64::NAN, |(v, _)| v / 1e6);
        let disk = w.dmons[0]
            .remote_value(NodeId(i), "DISKUSAGE")
            .map_or(f64::NAN, |(v, _)| v);
        out.push_str(&format!(
            "{name:>12}  {load:>5.2}  {free:>7.0}  {disk:>10.0}\n"
        ));
    }
    out
}

fn main() {
    let mut sim = ClusterSim::new(ClusterConfig::new(8));
    sim.start();

    // Scripted workloads: compute on node 3, memory pressure on node 5,
    // disk churn on node 7.
    sim.run_until(SimTime::from_secs(70));
    println!("== idle cluster ==\n{}", dashboard(&sim));

    sim.start_linpack(NodeId(3), 6);
    sim.world_mut().hosts[5]
        .mem
        .alloc("simulation", 400 * 1024 * 1024);
    // Disk churn on node 7: a burst of writes every 500 ms (scheduled
    // through the event loop so DISK MON's sliding window sees it live).
    sim.at(SimTime::from_secs(70), |_w, s| {
        s.schedule_periodic(
            SimTime::from_secs(70),
            simcore::SimDur::from_millis(500),
            |w: &mut dproc::ClusterWorld, s: &mut dproc::ClusterSched| {
                let now = s.now();
                for _ in 0..4 {
                    w.hosts[7]
                        .disk
                        .submit(now, simos::disk::IoDir::Write, 512 * 128);
                }
                simcore::Repeat::Continue
            },
        );
    });
    sim.run_until(SimTime::from_secs(135));
    println!("== loaded cluster (node3 compute, node5 memory, node7 disk) ==");
    println!("{}", dashboard(&sim));

    // Traffic comparison: default 1 s updates vs the differential filter.
    let events_default = sim.world().dmons[0].stats.events_received;
    println!("node0 received {events_default} monitoring events so far (1 s updates)");

    println!("\n== switching every stream to the 15% differential filter ==");
    for target in 1..8 {
        let name = format!("node{target}");
        sim.write_control(NodeId(0), &name, "delta * 0.15");
    }
    // Other nodes do the same for their own subscriptions.
    {
        let calib = sim.world().calib.clone();
        let w = sim.world_mut();
        for publisher in 0..8usize {
            for subscriber in 0..8usize {
                if publisher != subscriber {
                    w.dmons[publisher].on_control(
                        NodeId(subscriber),
                        &kecho::ControlMsg::SetParam {
                            metric: "*".into(),
                            param: kecho::ParamSpec::DeltaFraction { fraction: 0.15 },
                        },
                        &calib,
                    );
                }
            }
        }
        for d in &mut w.dmons {
            d.stats.reset();
        }
    }
    sim.run_for(SimDur::from_secs(65));
    let events_diff = sim.world().dmons[0].stats.events_received;
    println!("node0 received {events_diff} events in the same window with the differential filter");
    println!("{}", dashboard(&sim));
    println!("traffic reduction: the stable metrics stopped flowing; only changes propagate.");
}
