//! SmartPointer in action: a server streams visualization frames to a
//! client that progressively gets CPU-loaded; the dynamic filter watches
//! the client through dproc and re-customizes the stream, keeping latency
//! flat while the unmonitored baseline collapses.
//!
//! Run with: `cargo run --example smartpointer_demo`

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::SimTime;
use simnet::NodeId;
use simos::host::HostConfig;
use smartpointer::policy::{MonitorSet, Policy};
use smartpointer::{FrameSpec, SmartPointer, SmartPointerConfig};

fn run(policy: Policy, label: &str) {
    let cfg =
        ClusterConfig::named(&["server", "client", "aux"]).host_cfg(1, HostConfig::uniprocessor());
    let mut sim = ClusterSim::new(cfg);
    sim.start();
    sim.write_control(NodeId(1), "client", "window cpu 5");
    let app = SmartPointer::install(
        &mut sim,
        SmartPointerConfig {
            server: NodeId(0),
            clients: vec![(NodeId(1), policy)],
            spec: FrameSpec::interactive(),
            rate_hz: 5.0,
            write_to_disk: true,
            queue_cap: 64,
        },
    );

    println!("== {label} ==");
    println!("  t(s)  linpack  mode    latency(ms)  backlog");
    let mut prev_processed = 0usize;
    for step in 0..=6 {
        if step > 0 {
            sim.start_linpack(NodeId(1), 1);
        }
        sim.run_until(SimTime::from_secs(40 * (step as u64 + 1)));
        let st = app.client_stats(0);
        let recent: Vec<f64> = st
            .log
            .iter()
            .skip(prev_processed)
            .map(|&(_, l)| l * 1000.0)
            .collect();
        prev_processed = st.log.len();
        let mean = if recent.is_empty() {
            f64::NAN
        } else {
            recent.iter().sum::<f64>() / recent.len() as f64
        };
        let mode = st
            .mode_log
            .last()
            .map_or_else(|| "-".into(), |(_, m)| m.clone());
        println!(
            "  {:>4}  {:>7}  {:<6}  {:>11.1}  {:>7}",
            40 * (step + 1),
            step,
            mode,
            mean,
            app.backlog(0)
        );
    }
    let st = app.client_stats(0);
    println!(
        "  totals: {} received, {} processed, {} dropped\n",
        st.received, st.processed, st.dropped
    );
}

fn main() {
    run(Policy::NoFilter, "no filter: the original SmartPointer");
    run(
        Policy::Dynamic(MonitorSet::Cpu),
        "dynamic filter: server adapts using dproc's view of the client",
    );
}
