//! Quickstart: bring up the paper's Figure-1 cluster (alan, maui, etna),
//! watch `/proc/cluster` fill in, customize a remote node's monitoring
//! with parameters, and deploy the paper's Figure-3 E-code filter.
//!
//! Run with: `cargo run --example quickstart`

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::SimTime;
use simnet::NodeId;

fn main() {
    // Three testbed nodes on switched 100 Mbps Ethernet, d-mon polling at
    // 1 Hz — the defaults of the paper's deployment.
    let mut sim = ClusterSim::new(ClusterConfig::named(&["alan", "maui", "etna"]));
    sim.start();

    // Let a few monitoring rounds happen, plus some load on etna so the
    // numbers are not all zero.
    sim.start_linpack(NodeId(2), 2);
    sim.run_until(SimTime::from_secs(65));

    println!("== /proc tree on alan after 65 s (cf. paper Figure 1) ==");
    println!("{}", sim.world().hosts[0].proc.render_tree());

    println!("== alan's view of etna ==");
    for metric in ["cpu", "mem", "disk", "net", "pmc"] {
        let path = format!("cluster/etna/{metric}");
        let content = sim.world().hosts[0].proc.read(&path).unwrap();
        println!("/proc/{path}: {}", content.lines().next().unwrap_or(""));
    }

    // Customize: alan only wants etna's CPU data every 5 seconds, and only
    // while the load is above 1.5 — a period+threshold combination.
    println!("\n== customizing etna's stream to alan via its control file ==");
    sim.write_control(NodeId(0), "etna", "period cpu 5");
    sim.write_control(NodeId(0), "etna", "and above cpu 1.5");
    sim.run_until(SimTime::from_secs(70));
    let policy = sim.world().dmons[2]
        .policy_for(NodeId(0))
        .expect("policy installed at etna");
    println!(
        "etna now applies {} rule(s) to alan's CPU stream",
        policy.rule_count("LOADAVG")
    );

    // Quiet the remaining etna metrics too: 15% differential on the rest.
    sim.write_control(NodeId(0), "etna", "delta * 0.15");

    // Deploy the paper's Figure 3 filter on maui's stream to alan.
    println!("\n== deploying the Figure-3 dynamic filter on maui ==");
    let fig3 = format!("filter {}", ecode::FIG3_SOURCE.trim());
    sim.write_control(NodeId(0), "maui", &fig3);
    sim.run_until(SimTime::from_secs(75));
    println!(
        "maui has a compiled filter for alan: {}",
        sim.world().dmons[1].has_filter(NodeId(0))
    );

    // The filter and thresholds only forward on real activity; an idle
    // maui goes quiet and etna reports sparsely.
    let before = sim.world().dmons[0].stats.events_received;
    sim.run_until(SimTime::from_secs(100));
    let after = sim.world().dmons[0].stats.events_received;
    println!(
        "alan received {} events in the next 25 s (vs ~50 with default 1 s updates)",
        after - before
    );
}
