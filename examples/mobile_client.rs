//! Power as a first-class resource — the paper's stated future work for
//! wireless/mobile systems, built on dproc's extensibility: the battery
//! module is registered at *run time* on a handheld client ("monitoring
//! functionality available in the remote kernel but not directly
//! supported in dproc"), its readings flow to the SmartPointer server
//! like any other metric, and the server trades stream quality for
//! battery life once charge runs low.
//!
//! Run with: `cargo run --release --example mobile_client`

use dproc::cluster::{ClusterConfig, ClusterSim};
use dproc::modules::PowerMon;
use simcore::SimTime;
use simnet::NodeId;
use simos::host::HostConfig;
use simos::Battery;
use smartpointer::policy::Policy;
use smartpointer::{FrameSpec, SmartPointer, SmartPointerConfig, StreamMode};

fn main() {
    let cfg = ClusterConfig::named(&["server", "handheld", "aux"])
        .host_cfg(1, HostConfig::uniprocessor());
    let mut sim = ClusterSim::new(cfg);
    sim.start();

    // A small battery so the run shows a full discharge curve quickly.
    sim.world_mut().hosts[1].battery = Some(Battery::new(4000.0, 0.7, 1.3, 2e-6));
    println!("registering the POWER module on the handheld at run time...");
    sim.world_mut().dmons[1].register_module(Box::new(PowerMon));

    let app = SmartPointer::install(
        &mut sim,
        SmartPointerConfig {
            server: NodeId(0),
            clients: vec![(NodeId(1), Policy::NoFilter)],
            spec: FrameSpec::interactive(),
            rate_hz: 5.0,
            write_to_disk: false,
            queue_cap: 64,
        },
    );

    println!("\n  t(s)  battery%  stream   frames/s");
    let mut last_processed = 0u64;
    let mut throttled = false;
    for step in 1..=12 {
        let t = SimTime::from_secs(step * 120);
        sim.run_until(t);
        // The *server* reads the handheld's battery through dproc and
        // throttles the stream below 50% charge — power-aware stream
        // management, no client-side involvement.
        let battery = sim.world().dmons[0]
            .remote_value(NodeId(1), "BATTERY")
            .map_or(1.0, |(v, _)| v);
        if battery < 0.5 && !throttled {
            // Low-power mode: server-side pre-rendering at reduced quality.
            // (Deep subsampling would be wrong here — it *raises* client
            // CPU for reconstruction, the same single-resource pathology
            // as the paper's Fig. 11. Pre-rendered imagery at quality /2
            // cuts both the handheld's render CPU and its radio bytes.)
            app.set_policy(0, Policy::Static(StreamMode::PreRender(2)));
            throttled = true;
        }
        let st = app.client_stats(0);
        let rate = (st.processed - last_processed) as f64 / 120.0;
        last_processed = st.processed;
        println!(
            "  {:>4}  {:>7.1}  {:<7}  {:>7.2}{}",
            step * 120,
            battery * 100.0,
            st.mode_log
                .last()
                .map(|(_, m)| m.clone())
                .unwrap_or_default(),
            rate,
            if throttled && battery >= 0.5 {
                ""
            } else if throttled {
                "   <- throttled to save radio+CPU"
            } else {
                ""
            }
        );
    }

    let now = sim.now();
    let w = sim.world_mut();
    w.hosts[1].advance(now);
    let b = w.hosts[1].battery.as_ref().unwrap();
    println!(
        "\nfinal battery: {:.1}% ({:.0} J) — throttling the stream stretched it",
        b.fraction() * 100.0,
        b.level_j()
    );
}
