//! Calibration constants, in one documented place.
//!
//! The paper's absolute numbers come from quad Pentium Pro 200 MHz nodes
//! on switched 100 Mbps Fast Ethernet under Linux 2.4.18. This simulator
//! reproduces the *shapes* of the evaluation figures; the constants below
//! pin the magnitudes to the paper's reported values. Each constant names
//! the figure(s) it was calibrated against.

use simcore::SimDur;

/// All tunable cost-model constants.
#[derive(Debug, Clone)]
pub struct Calib {
    /// CPU cost for d-mon to build + submit one event, fixed part.
    /// Calibrated against Fig. 6 (~1.8 ms per polling iteration at 8
    /// nodes, update period 1 s ⇒ ~230 µs per event + per-byte part).
    pub submit_base: SimDur,
    /// CPU cost per payload byte on submission (buffer build, checksum,
    /// copy). Calibrated against Fig. 7 (5 KB events ≈ 3× the small-event
    /// iteration cost).
    pub submit_per_byte_ns: f64,
    /// CPU cost for d-mon to consume one incoming event and update the
    /// `/proc/cluster` entries, fixed part. Calibrated against Fig. 8
    /// (< 2.2 ms per iteration at 8 nodes, 1 s period).
    pub receive_base: SimDur,
    /// CPU cost per payload byte on receive.
    pub receive_per_byte_ns: f64,
    /// Per-iteration cost of polling the listening sockets even when no
    /// event arrived (Fig. 8 shows a small floor for the differential
    /// filter).
    pub receive_poll_cost: SimDur,
    /// Per-iteration cost of collecting one module's sample (kernel-thread
    /// work: scanning the task list, reading counters).
    pub collect_per_module: SimDur,
    /// Cost of evaluating the parameter rules for one metric for one
    /// subscriber. Calibrated against Fig. 6's differential-filter floor
    /// (≲ 100 µs at 8 nodes ⇒ ~2 µs per metric-subscriber).
    pub policy_eval: SimDur,
    /// VM dispatch cost per executed E-code instruction.
    pub ecode_instr: SimDur,
    /// One-time cost of compiling a deployed filter (the paper's dynamic
    /// binary code generation, E-code → native).
    pub filter_compile: SimDur,
    /// Aggregate kernel network-path cost per event *charged to the CPU
    /// but invisible to d-mon's own rdtsc measurements*: interrupt,
    /// softirq, buffer handling, and cache pollution. Split into send and
    /// receive sides. Calibrated against Fig. 4 (linpack drops ~4% at 8
    /// nodes with a 1 s update period, far more than the d-mon handler
    /// costs of Figs. 6–8 alone account for).
    pub kernel_path_send: SimDur,
    /// Receive-side counterpart of [`Calib::kernel_path_send`].
    pub kernel_path_recv: SimDur,
    /// d-mon CPU cost to build or consume one heartbeat. Heartbeats are
    /// preformatted 27-byte liveness packets — no record marshalling, no
    /// `/proc` updates — so they cost far less than a monitoring event.
    pub heartbeat_cost: SimDur,
    /// Kernel network-path cost of sending one heartbeat. A small packet
    /// on an established connection; a tenth of the full event path.
    pub heartbeat_path_send: SimDur,
    /// Receive-side counterpart of [`Calib::heartbeat_path_send`].
    pub heartbeat_path_recv: SimDur,
    /// Fraction of raw link capacity an Iperf UDP stream achieves on an
    /// idle link (UDP/IP/Ethernet framing). Fig. 5's baseline is ~96 Mbps
    /// on a 100 Mbps link.
    pub iperf_efficiency: f64,
    /// Queueing delay beyond which the TCP-like transport would have
    /// retransmitted — deliveries queued longer than this count one
    /// retransmission on the receiver's connection stats (NET MON's
    /// per-connection detail).
    pub rto: SimDur,
    /// Effective bandwidth an endpoint loses per monitoring event per
    /// second it handles (interrupt/DMA interference with the Iperf
    /// stream), in bits. Calibrated against Fig. 5 (< 0.5% drop at 8
    /// nodes, 1 s period).
    pub per_event_bw_cost_bits: f64,
}

impl Default for Calib {
    fn default() -> Self {
        Calib {
            submit_base: SimDur::from_micros(230),
            submit_per_byte_ns: 80.0,
            receive_base: SimDur::from_micros(280),
            receive_per_byte_ns: 60.0,
            receive_poll_cost: SimDur::from_micros(30),
            collect_per_module: SimDur::from_micros(40),
            policy_eval: SimDur::from_micros(2),
            ecode_instr: SimDur::from_nanos(25),
            filter_compile: SimDur::from_millis(2),
            kernel_path_send: SimDur::from_micros(1500),
            kernel_path_recv: SimDur::from_micros(3500),
            heartbeat_cost: SimDur::from_micros(10),
            heartbeat_path_send: SimDur::from_micros(150),
            heartbeat_path_recv: SimDur::from_micros(350),
            rto: SimDur::from_millis(200),
            iperf_efficiency: 0.96,
            per_event_bw_cost_bits: 12_000.0,
        }
    }
}

impl Calib {
    /// Total d-mon CPU cost (seconds) to submit one event of `bytes`.
    pub fn submit_cost(&self, bytes: usize) -> SimDur {
        self.submit_base + SimDur::from_nanos((self.submit_per_byte_ns * bytes as f64) as u64)
    }

    /// Total d-mon CPU cost (seconds) to receive one event of `bytes`.
    pub fn receive_cost(&self, bytes: usize) -> SimDur {
        self.receive_base + SimDur::from_nanos((self.receive_per_byte_ns * bytes as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_cost_scales_with_size() {
        let c = Calib::default();
        let small = c.submit_cost(90);
        let large = c.submit_cost(5000);
        assert!(small > SimDur::from_micros(230));
        assert!(large > small + SimDur::from_micros(300));
        // Fig. 6 magnitude check: 7 events of ~90 B within ~1.8 ms.
        assert!(
            small * 7 < SimDur::from_millis(2),
            "7x small = {}",
            small * 7
        );
        // Fig. 7: 7 events of 5 KB within ~5 ms.
        assert!(
            large * 7 < SimDur::from_millis(5),
            "7x large = {}",
            large * 7
        );
    }

    #[test]
    fn receive_cost_fits_fig8() {
        let c = Calib::default();
        let one = c.receive_cost(90);
        assert!(one * 7 < SimDur::from_micros(2200), "7x = {}", one * 7);
        assert!(one * 7 > SimDur::from_micros(1500));
    }
}
