//! Derived measurements used by the figure harness.
//!
//! The paper measures perturbation with the tools of its day: linpack for
//! CPU throughput and Iperf for available bandwidth. The raw residual
//! capacity comes from the network model; this module applies the
//! calibrated endpoint effects (protocol efficiency, per-event interrupt
//! interference) so the probe behaves like Iperf did on the testbed.

use simcore::SimTime;
use simnet::traffic::iperf_available_bps;
use simnet::NodeId;

use crate::cluster::ClusterWorld;

/// Iperf-style available bandwidth between two nodes, in Mbps, as the
/// paper's Fig. 5 and Fig. 10 measure it: raw residual capacity minus the
/// interrupt-interference of monitoring events handled at either endpoint,
/// scaled by UDP protocol efficiency.
pub fn iperf_probe_mbps(world: &mut ClusterWorld, now: SimTime, from: NodeId, to: NodeId) -> f64 {
    let raw = iperf_available_bps(&mut world.net, now, from, to);
    let ev_rate = world.event_rate(from, now) + world.event_rate(to, now);
    let penalty = ev_rate * world.calib.per_event_bw_cost_bits;
    ((raw - penalty).max(0.0) * world.calib.iperf_efficiency) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, ClusterSim};
    use simcore::SimDur;

    #[test]
    fn idle_probe_reads_efficiency_scaled_capacity() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        // No start(): no monitoring traffic at all.
        let now = sim.now();
        let w = sim.world_mut();
        let mbps = iperf_probe_mbps(w, now, NodeId(0), NodeId(1));
        assert!((mbps - 96.0).abs() < 0.01, "idle probe: {mbps}");
    }

    #[test]
    fn monitoring_traffic_shaves_bandwidth() {
        let mut sim = ClusterSim::new(ClusterConfig::new(8));
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let now = sim.now();
        let w = sim.world_mut();
        let mbps = iperf_probe_mbps(w, now, NodeId(0), NodeId(1));
        assert!(mbps < 96.0, "monitoring shaves the probe: {mbps}");
        assert!(mbps > 95.0, "but below half a percent: {mbps}");
    }

    #[test]
    fn probe_with_update_period_2s_drops_less() {
        let run = |period: u64| {
            let mut sim =
                ClusterSim::new(ClusterConfig::new(8).poll_period(SimDur::from_secs(period)));
            sim.start();
            sim.run_until(SimTime::from_secs(10));
            let now = sim.now();
            let w = sim.world_mut();
            iperf_probe_mbps(w, now, NodeId(0), NodeId(1))
        };
        let p1 = run(1);
        let p2 = run(2);
        assert!(p2 > p1, "longer period, higher residual: {p1} vs {p2}");
    }
}
