//! The control-file text protocol.
//!
//! Applications customize remote monitoring by writing plain text into
//! `/proc/cluster/<node>/control`. Each write is one command:
//!
//! ```text
//! period <metric|*> <seconds>      # update period
//! delta <metric|*> <fraction>      # differential filter (0.15 = 15%)
//! above <metric|*> <bound>         # threshold: send while value > bound
//! below <metric|*> <bound>         # threshold: send while value < bound
//! range <metric> <lo> <hi>         # threshold: send while lo <= v <= hi
//! and <metric> <rule...>           # add a rule without replacing (AND)
//! clear <metric|*>                 # drop the metric's rules
//! window <metric> <seconds>        # module averaging window (CPU MON)
//! filter <e-code source...>        # deploy a dynamic filter (rest of write)
//! nofilter                         # remove the deployed filter
//! ```
//!
//! `period`/`delta`/`above`/`below`/`range` *replace* the metric's rules;
//! `and ...` adds to them, enabling the paper's "every 2 s IF above 80%"
//! combinations.

use kecho::{ControlMsg, ParamSpec};

/// A parse failure, with the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ControlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad control write: {}", self.message)
    }
}

impl std::error::Error for ControlParseError {}

fn err(message: impl Into<String>) -> ControlParseError {
    ControlParseError {
        message: message.into(),
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, ControlParseError> {
    s.parse::<f64>()
        .map_err(|_| err(format!("{what} `{s}` is not a number")))
}

/// Internal: parse one rule command's spec portion.
fn parse_spec(cmd: &str, args: &[&str]) -> Result<ParamSpec, ControlParseError> {
    match cmd {
        "period" => {
            let [v] = args else {
                return Err(err("usage: period <metric|*> <seconds>"));
            };
            let period_s = parse_f64(v, "period")?;
            if period_s <= 0.0 {
                return Err(err("period must be positive"));
            }
            Ok(ParamSpec::Period { period_s })
        }
        "delta" => {
            let [v] = args else {
                return Err(err("usage: delta <metric|*> <fraction>"));
            };
            let fraction = parse_f64(v, "fraction")?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(err("delta fraction must be within [0, 1]"));
            }
            Ok(ParamSpec::DeltaFraction { fraction })
        }
        "above" => {
            let [v] = args else {
                return Err(err("usage: above <metric|*> <bound>"));
            };
            Ok(ParamSpec::Above {
                bound: parse_f64(v, "bound")?,
            })
        }
        "below" => {
            let [v] = args else {
                return Err(err("usage: below <metric|*> <bound>"));
            };
            Ok(ParamSpec::Below {
                bound: parse_f64(v, "bound")?,
            })
        }
        "range" => {
            let [lo, hi] = args else {
                return Err(err("usage: range <metric> <lo> <hi>"));
            };
            let lo = parse_f64(lo, "lo")?;
            let hi = parse_f64(hi, "hi")?;
            if lo > hi {
                return Err(err("range lo must not exceed hi"));
            }
            Ok(ParamSpec::Range { lo, hi })
        }
        other => Err(err(format!("unknown control command `{other}`"))),
    }
}

/// The result of parsing one control write: the wire message plus whether
/// the rule should *add* to (vs replace) the metric's existing rules.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDirective {
    /// The message to ship to the publisher.
    pub msg: ControlMsg,
    /// `and`-combined rather than replacing.
    pub additive: bool,
}

/// Parse one control-file write.
pub fn parse_control(text: &str) -> Result<ControlDirective, ControlParseError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(err("empty control write"));
    }
    let (head, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim_start()),
        None => (trimmed, ""),
    };
    match head {
        "filter" => {
            if rest.is_empty() {
                return Err(err("usage: filter <e-code source>"));
            }
            Ok(ControlDirective {
                msg: ControlMsg::DeployFilter {
                    source: rest.to_string(),
                },
                additive: false,
            })
        }
        "nofilter" => {
            if !rest.is_empty() {
                return Err(err("nofilter takes no arguments"));
            }
            Ok(ControlDirective {
                msg: ControlMsg::RemoveFilter,
                additive: false,
            })
        }
        "clear" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [metric] = parts[..] else {
                return Err(err("usage: clear <metric|*>"));
            };
            // Encoded as a zero-period sentinel? No — use Range over all
            // reals with the special metric prefix; simpler: a dedicated
            // pseudo-rule the d-mon interprets.
            Ok(ControlDirective {
                msg: ControlMsg::SetParam {
                    metric: format!("clear:{metric}"),
                    param: ParamSpec::Period { period_s: 1.0 },
                },
                additive: false,
            })
        }
        "window" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [metric, secs] = parts[..] else {
                return Err(err("usage: window <metric> <seconds>"));
            };
            let period_s = parse_f64(secs, "window")?;
            if period_s <= 0.0 {
                return Err(err("window must be positive"));
            }
            Ok(ControlDirective {
                msg: ControlMsg::SetParam {
                    metric: format!("window:{metric}"),
                    param: ParamSpec::Period { period_s },
                },
                additive: false,
            })
        }
        "and" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() < 2 {
                return Err(err("usage: and <cmd> <metric> <args...>"));
            }
            let inner = parse_control(rest)?;
            if inner.additive {
                return Err(err("`and and` is not a thing"));
            }
            match &inner.msg {
                ControlMsg::SetParam { .. } => Ok(ControlDirective {
                    msg: inner.msg,
                    additive: true,
                }),
                _ => Err(err("`and` only combines parameter rules")),
            }
        }
        cmd @ ("period" | "delta" | "above" | "below" | "range") => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.is_empty() {
                return Err(err(format!("usage: {cmd} <metric|*> <args...>")));
            }
            let metric = parts[0];
            let spec = parse_spec(cmd, &parts[1..])?;
            Ok(ControlDirective {
                msg: ControlMsg::SetParam {
                    metric: metric.to_string(),
                    param: spec,
                },
                additive: false,
            })
        }
        other => Err(err(format!("unknown control command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_period() {
        let d = parse_control("period cpu 2").unwrap();
        assert_eq!(
            d.msg,
            ControlMsg::SetParam {
                metric: "cpu".into(),
                param: ParamSpec::Period { period_s: 2.0 }
            }
        );
        assert!(!d.additive);
    }

    #[test]
    fn parses_delta_wildcard() {
        let d = parse_control("delta * 0.15").unwrap();
        assert_eq!(
            d.msg,
            ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::DeltaFraction { fraction: 0.15 }
            }
        );
    }

    #[test]
    fn parses_bounds_and_range() {
        assert!(matches!(
            parse_control("above cpu 0.8").unwrap().msg,
            ControlMsg::SetParam {
                param: ParamSpec::Above { bound },
                ..
            } if bound == 0.8
        ));
        assert!(matches!(
            parse_control("below mem 5e7").unwrap().msg,
            ControlMsg::SetParam {
                param: ParamSpec::Below { bound },
                ..
            } if bound == 5e7
        ));
        assert!(matches!(
            parse_control("range disk 100 200").unwrap().msg,
            ControlMsg::SetParam {
                param: ParamSpec::Range { lo, hi },
                ..
            } if lo == 100.0 && hi == 200.0
        ));
    }

    #[test]
    fn and_marks_additive() {
        let d = parse_control("and above cpu 0.8").unwrap();
        assert!(d.additive);
        assert!(matches!(d.msg, ControlMsg::SetParam { .. }));
    }

    #[test]
    fn filter_takes_rest_verbatim() {
        let src = "{ output[0] = input[LOADAVG]; }";
        let d = parse_control(&format!("filter {src}")).unwrap();
        assert_eq!(
            d.msg,
            ControlMsg::DeployFilter {
                source: src.to_string()
            }
        );
        // multiline source survives
        let multi = "filter {\n int i = 0;\n}";
        let d = parse_control(multi).unwrap();
        let ControlMsg::DeployFilter { source } = d.msg else {
            panic!()
        };
        assert!(source.contains("int i = 0;"));
    }

    #[test]
    fn nofilter_and_clear_and_window() {
        assert_eq!(
            parse_control("nofilter").unwrap().msg,
            ControlMsg::RemoveFilter
        );
        let d = parse_control("clear cpu").unwrap();
        assert!(matches!(d.msg, ControlMsg::SetParam { ref metric, .. } if metric == "clear:cpu"));
        let d = parse_control("window cpu 5").unwrap();
        assert!(
            matches!(d.msg, ControlMsg::SetParam { ref metric, param: ParamSpec::Period { period_s } }
            if metric == "window:cpu" && period_s == 5.0)
        );
    }

    #[test]
    fn rejects_malformed_writes() {
        for bad in [
            "",
            "   ",
            "bogus cpu 1",
            "period cpu",
            "period cpu abc",
            "period cpu -1",
            "delta cpu 1.5",
            "range disk 5 1",
            "nofilter extra",
            "filter",
            "and and above cpu 1",
            "and nofilter",
            "window cpu 0",
            "clear",
        ] {
            assert!(parse_control(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn error_display() {
        let e = parse_control("bogus x").unwrap_err();
        assert!(e.to_string().contains("bad control write"));
    }
}
