//! `dproc` — the paper's contribution: customizable, kernel-level,
//! distributed resource monitoring with a `/proc/cluster` interface.
//!
//! The pieces, mirroring Figure 2 of the paper:
//!
//! * [`modules`] — the monitoring modules (CPU MON, MEM MON, DISK MON,
//!   NET MON, PMC) that register with d-mon and collect kernel state,
//! * [`params`] — the parameter engine: update periods, thresholds
//!   (percent-delta, bounds, ranges) and AND-combinations thereof, applied
//!   per subscriber per metric,
//! * [`control`] — the text protocol written into
//!   `/proc/cluster/<node>/control` files and its parsing into control
//!   messages,
//! * [`dmon`] — the distributed-monitor kernel module: polls modules,
//!   applies parameters and E-code filters per subscriber, submits events
//!   on the KECho monitoring channel, consumes incoming events into the
//!   local `/proc/cluster` tree, and handles control messages (including
//!   run-time filter compilation),
//! * [`cluster`] — the runnable composition: N simulated hosts on a
//!   switched network, one d-mon each, with the discrete-event loop
//!   driving polling, delivery, and workloads,
//! * [`calib`] — every calibration constant in one documented place,
//! * [`measure`] — derived measurements used by the figure harness (Iperf
//!   probe adjustments, Mflops probes).
//!
//! # Quickstart
//!
//! ```
//! use dproc::cluster::{ClusterConfig, ClusterSim};
//! use simcore::{SimDur, SimTime};
//!
//! // A 3-node cluster named like the paper's Figure 1.
//! let mut sim = ClusterSim::new(ClusterConfig::named(&["alan", "maui", "etna"]));
//! sim.start();
//! sim.run_until(SimTime::from_secs(5));
//!
//! // maui's view of alan's load average, through /proc.
//! let world = sim.world();
//! let load = world.hosts[1].proc.read("cluster/alan/cpu").unwrap();
//! assert!(load.starts_with("cpu ") && load.contains("ts"), "got: {load}");
//! ```

pub mod calib;
pub mod cluster;
pub mod control;
pub mod dmon;
pub mod measure;
pub mod modules;
pub mod params;
pub(crate) mod pcluster;

pub use calib::Calib;
pub use cluster::{ClusterConfig, ClusterEvent, ClusterSched, ClusterSim, ClusterWorld};
pub use dmon::{DMon, DmonStats, PeerHealth};
pub use params::{PolicySet, Rule};
