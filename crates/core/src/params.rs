//! The parameter engine: update periods, thresholds, and combinations.
//!
//! The paper distinguishes two parameter families — update periods and
//! thresholds — and allows combining them ("update the CPU information
//! once every 2 seconds IF the CPU utilization is above 80%"). Threshold
//! comparisons can be percentage limits relative to the last measurement,
//! relative-value bounds, or min/max ranges. All of those are [`Rule`]s;
//! a metric's rules are ANDed.
//!
//! Parameters are "cheaper" than an equivalent E-code filter — no VM
//! dispatch, minimal book-keeping — which the `params_vs_filter` ablation
//! bench quantifies.

use std::collections::HashMap;

use kecho::ParamSpec;
use simcore::{SimDur, SimTime};

/// One admission rule for a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Send at most once per `period` (elapsed-time gate).
    Period(SimDur),
    /// Send only if the value moved at least `fraction` relative to the
    /// last *sent* value (the paper's differential filter). A zero last
    /// value passes whenever the value changed at all.
    DeltaFraction(f64),
    /// Send only while the value exceeds the bound.
    Above(f64),
    /// Send only while the value is below the bound.
    Below(f64),
    /// Send only while the value lies within `[lo, hi]`.
    Range(f64, f64),
}

impl Rule {
    /// Convert from the wire-level parameter spec.
    pub fn from_spec(spec: ParamSpec) -> Rule {
        match spec {
            ParamSpec::Period { period_s } => Rule::Period(SimDur::from_secs_f64(period_s)),
            ParamSpec::DeltaFraction { fraction } => Rule::DeltaFraction(fraction),
            ParamSpec::Above { bound } => Rule::Above(bound),
            ParamSpec::Below { bound } => Rule::Below(bound),
            ParamSpec::Range { lo, hi } => Rule::Range(lo, hi),
        }
    }

    /// Evaluate against the current sample.
    fn admits(&self, ctx: &RuleCtx) -> bool {
        match *self {
            Rule::Period(period) => match ctx.last_sent_at {
                None => true,
                Some(t) => ctx.now.since(t) >= period,
            },
            Rule::DeltaFraction(fraction) => {
                let last = ctx.last_sent_value;
                let delta = (ctx.value - last).abs();
                if last == 0.0 {
                    delta != 0.0
                } else {
                    delta >= fraction * last.abs()
                }
            }
            Rule::Above(bound) => ctx.value > bound,
            Rule::Below(bound) => ctx.value < bound,
            Rule::Range(lo, hi) => ctx.value >= lo && ctx.value <= hi,
        }
    }
}

/// Evaluation context for one metric decision.
#[derive(Debug, Clone, Copy)]
pub struct RuleCtx {
    /// Current sampled value.
    pub value: f64,
    /// Last value actually sent to this subscriber (0 if never).
    pub last_sent_value: f64,
    /// When a value was last sent to this subscriber.
    pub last_sent_at: Option<SimTime>,
    /// Current time.
    pub now: SimTime,
}

/// The rules one subscriber configured at a publisher: per metric name,
/// with `"*"` as the any-metric fallback.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    per_metric: HashMap<String, Vec<Rule>>,
    wildcard: Vec<Rule>,
}

impl PolicySet {
    /// Empty policy: every metric is sent on every poll.
    pub fn new() -> Self {
        PolicySet::default()
    }

    /// Add a rule for `metric` (`"*"` = all metrics). Rules accumulate
    /// and are ANDed; [`PolicySet::clear_metric`] resets.
    pub fn add_rule(&mut self, metric: &str, rule: Rule) {
        if metric == "*" {
            self.wildcard.push(rule);
        } else {
            self.per_metric
                .entry(metric.to_string())
                .or_default()
                .push(rule);
        }
    }

    /// Drop all rules for a metric (or the wildcard set for `"*"`).
    pub fn clear_metric(&mut self, metric: &str) {
        if metric == "*" {
            self.wildcard.clear();
        } else {
            self.per_metric.remove(metric);
        }
    }

    /// Replace the rules for a metric with a single rule — what a fresh
    /// `period`/`delta` control write does.
    pub fn set_rule(&mut self, metric: &str, rule: Rule) {
        self.clear_metric(metric);
        self.add_rule(metric, rule);
    }

    /// Rules that apply to `metric`: its own if any, else the wildcard.
    fn rules_for(&self, metric: &str) -> &[Rule] {
        match self.per_metric.get(metric) {
            Some(rules) if !rules.is_empty() => rules,
            _ => &self.wildcard,
        }
    }

    /// Decide whether to send `metric` under this policy. With no
    /// applicable rules the default is to send (every poll).
    pub fn decide(&self, metric: &str, ctx: &RuleCtx) -> bool {
        self.rules_for(metric).iter().all(|r| r.admits(ctx))
    }

    /// Number of rules that would run for `metric` (cost accounting).
    pub fn rule_count(&self, metric: &str) -> usize {
        self.rules_for(metric).len()
    }

    /// True if no rules are configured at all.
    pub fn is_empty(&self) -> bool {
        // detlint: allow(unordered-iter) all() is order-insensitive
        self.wildcard.is_empty() && self.per_metric.values().all(std::vec::Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(value: f64, last: f64, last_at: Option<u64>, now: u64) -> RuleCtx {
        RuleCtx {
            value,
            last_sent_value: last,
            last_sent_at: last_at.map(SimTime::from_secs),
            now: SimTime::from_secs(now),
        }
    }

    #[test]
    fn empty_policy_always_sends() {
        let p = PolicySet::new();
        assert!(p.is_empty());
        assert!(p.decide("cpu", &ctx(0.0, 0.0, None, 0)));
        assert!(p.decide("anything", &ctx(5.0, 5.0, Some(0), 1)));
    }

    #[test]
    fn period_gates_by_elapsed_time() {
        let mut p = PolicySet::new();
        p.set_rule("cpu", Rule::Period(SimDur::from_secs(2)));
        // never sent: admit
        assert!(p.decide("cpu", &ctx(1.0, 0.0, None, 0)));
        // sent at t=10: reject at t=11, admit at t=12
        assert!(!p.decide("cpu", &ctx(1.0, 1.0, Some(10), 11)));
        assert!(p.decide("cpu", &ctx(1.0, 1.0, Some(10), 12)));
    }

    #[test]
    fn delta_fraction_is_relative_to_last_sent() {
        let mut p = PolicySet::new();
        p.set_rule("*", Rule::DeltaFraction(0.15));
        assert!(!p.decide("cpu", &ctx(1.10, 1.0, Some(0), 1)), "10% < 15%");
        assert!(p.decide("cpu", &ctx(1.20, 1.0, Some(0), 1)), "20% > 15%");
        assert!(
            p.decide("cpu", &ctx(0.80, 1.0, Some(0), 1)),
            "drop counts too"
        );
        // zero last value: any change admits, no change rejects
        assert!(p.decide("cpu", &ctx(0.01, 0.0, None, 1)));
        assert!(!p.decide("cpu", &ctx(0.0, 0.0, None, 1)));
    }

    #[test]
    fn bounds_and_ranges() {
        let mut p = PolicySet::new();
        p.set_rule("load", Rule::Above(2.0));
        assert!(p.decide("load", &ctx(2.5, 0.0, None, 0)));
        assert!(!p.decide("load", &ctx(2.0, 0.0, None, 0)));

        p.set_rule("mem", Rule::Below(100.0));
        assert!(p.decide("mem", &ctx(50.0, 0.0, None, 0)));
        assert!(!p.decide("mem", &ctx(100.0, 0.0, None, 0)));

        p.set_rule("disk", Rule::Range(1.0, 2.0));
        assert!(p.decide("disk", &ctx(1.5, 0.0, None, 0)));
        assert!(p.decide("disk", &ctx(1.0, 0.0, None, 0)));
        assert!(!p.decide("disk", &ctx(2.1, 0.0, None, 0)));
    }

    #[test]
    fn combination_is_and() {
        // the paper's example: every 2 s IF above 80%.
        let mut p = PolicySet::new();
        p.add_rule("cpu", Rule::Period(SimDur::from_secs(2)));
        p.add_rule("cpu", Rule::Above(0.8));
        // high value but too soon
        assert!(!p.decide("cpu", &ctx(0.9, 0.9, Some(10), 11)));
        // long enough but low value
        assert!(!p.decide("cpu", &ctx(0.5, 0.9, Some(10), 20)));
        // both satisfied
        assert!(p.decide("cpu", &ctx(0.9, 0.9, Some(10), 20)));
        assert_eq!(p.rule_count("cpu"), 2);
    }

    #[test]
    fn specific_rules_shadow_wildcard() {
        let mut p = PolicySet::new();
        p.set_rule("*", Rule::Above(100.0));
        p.set_rule("cpu", Rule::Above(1.0));
        assert!(
            p.decide("cpu", &ctx(2.0, 0.0, None, 0)),
            "cpu uses own rule"
        );
        assert!(
            !p.decide("mem", &ctx(2.0, 0.0, None, 0)),
            "mem falls to wildcard"
        );
        p.clear_metric("cpu");
        assert!(
            !p.decide("cpu", &ctx(2.0, 0.0, None, 0)),
            "back to wildcard"
        );
    }

    #[test]
    fn set_rule_replaces() {
        let mut p = PolicySet::new();
        p.add_rule("cpu", Rule::Above(1.0));
        p.add_rule("cpu", Rule::Below(5.0));
        assert_eq!(p.rule_count("cpu"), 2);
        p.set_rule("cpu", Rule::Above(2.0));
        assert_eq!(p.rule_count("cpu"), 1);
    }

    #[test]
    fn from_spec_conversions() {
        assert_eq!(
            Rule::from_spec(ParamSpec::Period { period_s: 2.0 }),
            Rule::Period(SimDur::from_secs(2))
        );
        assert_eq!(
            Rule::from_spec(ParamSpec::DeltaFraction { fraction: 0.15 }),
            Rule::DeltaFraction(0.15)
        );
        assert_eq!(
            Rule::from_spec(ParamSpec::Above { bound: 1.0 }),
            Rule::Above(1.0)
        );
        assert_eq!(
            Rule::from_spec(ParamSpec::Below { bound: 1.0 }),
            Rule::Below(1.0)
        );
        assert_eq!(
            Rule::from_spec(ParamSpec::Range { lo: 1.0, hi: 2.0 }),
            Rule::Range(1.0, 2.0)
        );
    }
}
