//! The runnable cluster: N simulated hosts with one d-mon each, wired
//! through KECho channels over the switched network, driven by the
//! discrete-event loop.
//!
//! This is the composition layer: it owns the [`simcore::Sim`] event
//! queue, schedules each d-mon's polling iterations, turns planned sends
//! into network transfers, charges CPU costs to the hosts' schedulers, and
//! delivers events into the receiving d-mons. Applications (the figure
//! harness, SmartPointer) drive everything through [`ClusterSim`].

use simcore::{HandleMsg, Sim, SimDur, SimTime};
use simnet::link::{BytesWindow, LinkSpec};
use simnet::topology::{Placement, TopologySpec};
use simnet::traffic::FlowTable;
use simnet::{ConnId, Delivery, Network, NodeId, TrafficClass};
use simos::cpu::TaskState;
use simos::host::{Host, HostConfig};
use simos::workload::Linpack;
use simos::TaskId;

use kecho::{wire, ChannelId, Directory, Event, EventKind, Hop, Topology};

use crate::calib::Calib;
use crate::dmon::DMon;
use crate::modules::standard_modules;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node hostnames; length = cluster size.
    pub names: Vec<String>,
    /// Per-node host hardware (same length as `names`).
    pub host_cfgs: Vec<HostConfig>,
    /// d-mon polling period (the paper compares 1 s and 2 s).
    pub poll_period: SimDur,
    /// Link parameters (defaults to the paper's Fast Ethernet).
    pub link: LinkSpec,
    /// Channel routing topology.
    pub topology: Topology,
    /// Physical fabric shape: one switch (the paper's testbed) or racks
    /// behind top-of-rack switches uplinked to a spine. The star is the
    /// 1-rack degenerate case and runs bit-identically to the
    /// pre-hierarchy cluster.
    pub topo: TopologySpec,
    /// Inter-switch (rack ↔ spine) link parameters; only used when
    /// `topo` resolves to more than one rack.
    pub switch_link: LinkSpec,
    /// Cost model.
    pub calib: Calib,
    /// Extra payload bytes per monitoring event (Fig. 7 uses ~5 KB).
    pub event_pad: u32,
    /// Per-node offset of the first poll, avoiding phase-locked polling.
    pub stagger: SimDur,
    /// Subscribe every node to both channels at start (the normal dproc
    /// deployment).
    pub auto_subscribe: bool,
    /// Failure-detector silence bound for Fresh → Stale; `None` keeps the
    /// d-mon default (3× the polling period).
    pub stale_after: Option<SimDur>,
    /// Failure-detector silence bound for Stale → Dead; `None` keeps the
    /// d-mon default (8× the polling period).
    pub dead_after: Option<SimDur>,
}

impl ClusterConfig {
    /// `n` nodes named `node0..`, testbed hardware, 1 s polling.
    pub fn new(n: usize) -> Self {
        let names = (0..n).map(|i| format!("node{i}")).collect();
        Self::with_names(names)
    }

    /// Nodes with explicit names.
    pub fn named(names: &[&str]) -> Self {
        Self::with_names(names.iter().map(std::string::ToString::to_string).collect())
    }

    fn with_names(names: Vec<String>) -> Self {
        let n = names.len();
        ClusterConfig {
            names,
            host_cfgs: vec![HostConfig::testbed(); n],
            poll_period: SimDur::from_secs(1),
            link: LinkSpec::fast_ethernet(),
            topology: Topology::PeerToPeer,
            topo: TopologySpec::Star,
            switch_link: LinkSpec::fast_ethernet(),
            calib: Calib::default(),
            event_pad: 0,
            stagger: SimDur::from_millis(1),
            auto_subscribe: true,
            stale_after: None,
            dead_after: None,
        }
    }

    /// Set the polling period.
    pub fn poll_period(mut self, p: SimDur) -> Self {
        self.poll_period = p;
        self
    }

    /// Set the per-event pad bytes.
    pub fn event_pad(mut self, pad: u32) -> Self {
        self.event_pad = pad;
        self
    }

    /// Set the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Set the physical fabric shape.
    pub fn topo(mut self, spec: TopologySpec) -> Self {
        self.topo = spec;
        self
    }

    /// Shorthand: racks of `rack_size` nodes behind top-of-rack switches.
    pub fn racks(self, rack_size: usize) -> Self {
        self.topo(TopologySpec::Racks { rack_size })
    }

    /// Set the inter-switch (rack ↔ spine) link parameters.
    pub fn switch_link(mut self, spec: LinkSpec) -> Self {
        self.switch_link = spec;
        self
    }

    /// Set the poll start stagger between nodes. Tiny staggers (e.g.
    /// 1 µs) keep all polls inside one conservative window, which is what
    /// the parallel driver wants; the 1 ms default mimics real boot skew.
    pub fn stagger(mut self, s: SimDur) -> Self {
        self.stagger = s;
        self
    }

    /// Override one node's hardware.
    pub fn host_cfg(mut self, node: usize, cfg: HostConfig) -> Self {
        self.host_cfgs[node] = cfg;
        self
    }

    /// Override the calibration constants.
    pub fn calib(mut self, calib: Calib) -> Self {
        self.calib = calib;
        self
    }

    /// Override the failure-detector bounds (silence before Stale, before
    /// Dead).
    pub fn failure_bounds(mut self, stale_after: SimDur, dead_after: SimDur) -> Self {
        self.stale_after = Some(stale_after);
        self.dead_after = Some(dead_after);
        self
    }
}

/// Typed cluster events. The serial driver routes the three hot event
/// kinds (polls, service completions, deliveries) through the scheduler's
/// typed message lane — no per-event closure boxing — and the parallel
/// engine logs and merges the same values across shards. Fault actions
/// are cold and stay boxed on the serial driver; only the parallel
/// engine schedules `Fault` events.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// One d-mon polling iteration, with its generation token.
    Poll { i: usize, token: u64 },
    /// The node's kernel service thread finished draining one CPU charge.
    SvcDone { i: usize },
    /// A network message arrives at `hop.to`.
    Deliver {
        hop: Hop,
        ev: Event,
        bytes: usize,
        sent_at: SimTime,
        queued: SimDur,
    },
    /// The `k`-th scheduled fault action fires (parallel engine only).
    Fault { k: usize },
}

/// The serial scheduler type: world + typed cluster events.
pub type ClusterSched = Sim<ClusterWorld, ClusterEvent>;

impl HandleMsg<ClusterEvent> for ClusterWorld {
    /// Serial dispatch of the typed events. Program order inside each arm
    /// mirrors the old closure bodies exactly (and therefore the parallel
    /// engine's handlers in [`crate::pcluster`]): the poll re-arm happens
    /// *after* the poll body, like `schedule_periodic`'s tick wrapper did.
    fn handle(&mut self, sim: &mut ClusterSched, msg: ClusterEvent) {
        match msg {
            ClusterEvent::Poll { i, token } => {
                if self.poll_token[i] != token {
                    return; // stale series: crash or re-revive moved on
                }
                self.poll_node(sim, i);
                let period = self.poll_period;
                sim.schedule_msg_in(period, ClusterEvent::Poll { i, token });
            }
            ClusterEvent::SvcDone { i } => self.svc_drain(sim, i),
            ClusterEvent::Deliver {
                hop,
                ev,
                bytes,
                sent_at,
                queued,
            } => self.deliver(sim, hop, ev, bytes, sent_at, queued),
            ClusterEvent::Fault { .. } => {
                unreachable!("serial driver schedules fault actions as closures")
            }
        }
    }
}

/// The mutable world state the event loop drives.
pub struct ClusterWorld {
    /// The switched network.
    pub net: Network,
    /// Background flows (Iperf perturbation).
    pub flows: FlowTable,
    /// One host per node.
    pub hosts: Vec<Host>,
    /// One d-mon per node.
    pub dmons: Vec<DMon>,
    /// One linpack workload handle per node.
    pub linpacks: Vec<Linpack>,
    /// The channel directory.
    pub dir: Directory,
    /// The monitoring channel (rack 0's on a hierarchy — kept under the
    /// legacy name so single-rack consumers are untouched).
    pub mon_chan: ChannelId,
    /// The control channel (rack 0's on a hierarchy).
    pub ctl_chan: ChannelId,
    /// Resolved node → rack map (one rack on the star).
    pub placement: Placement,
    /// Per-rack `(monitoring, control)` channels. On the star this is
    /// exactly `[(mon_chan, ctl_chan)]`; on a hierarchy the rack scoping
    /// is what shrinks every publisher's subscriber set from cluster-size
    /// to rack-size.
    pub rack_chans: Vec<(ChannelId, ChannelId)>,
    /// The spine digest channel rack aggregators publish their bounded
    /// roll-ups on; `None` on the star (no aggregation tier).
    pub digest_chan: Option<ChannelId>,
    /// The cost model.
    pub calib: Calib,
    /// End-to-end monitoring-event latencies (µs).
    pub mon_latency_us: simcore::stats::Sampler,
    /// Lifetime count of delivered monitoring events.
    pub mon_delivered: u64,
    /// Lifetime count of delivered control events.
    pub ctl_delivered: u64,
    /// Per-node d-mon service task (kernel thread).
    pub(crate) svc_tasks: Vec<TaskId>,
    /// Per-node queue of pending CPU charges: the kernel thread is a
    /// serial server, so concurrent charges queue rather than overlap
    /// (overlapping them would under-account the stolen CPU).
    pub(crate) svc_pending: Vec<std::collections::VecDeque<SimDur>>,
    /// Whether each node's service task is currently draining a charge.
    pub(crate) svc_busy: Vec<bool>,
    /// Liveness per node; dead nodes neither poll nor receive (models
    /// crash failures for the fault-tolerance comparison).
    pub(crate) alive: Vec<bool>,
    /// Injected network faults: partitions, message loss, link
    /// degradation — plus the counters every dropped delivery feeds.
    pub fault: simnet::FaultState,
    /// Generation token per node's poll series. Bumped on crash and
    /// revive so a stale periodic closure stops instead of polling a
    /// dead (or doubly-revived) node forever.
    pub(crate) poll_token: Vec<u64>,
    /// Nodes the failure detector evicted from the directory. Only these
    /// auto-rejoin when they find themselves unsubscribed — nodes that
    /// were never subscribed (manual-subscription setups) stay out.
    pub(crate) evicted: Vec<bool>,
    /// Polling period, kept for re-arming a revived node's poll series.
    pub(crate) poll_period: SimDur,
    /// Per-node events handled (sent + received) in a sliding 1 s window —
    /// feeds the Iperf probe's interference model.
    pub(crate) event_meter: Vec<BytesWindow>,
    /// Endpoints and rate of each started flood, so stopping one can also
    /// clear the hosts' NIC-level background observation.
    pub(crate) flow_meta: std::collections::HashMap<simnet::FlowId, (NodeId, NodeId, f64)>,
}

/// The link-layer lane an event travels in. Monitoring data is bulk —
/// it queues and can be tail-dropped at a bounded link queue. Heartbeats
/// and control frames ride the strict-priority lane: tiny, cap-exempt,
/// and never stuck behind a saturated data queue, so failure detection
/// and reconfiguration stay live under overload.
pub(crate) fn class_of(ev: &Event) -> TrafficClass {
    match ev.kind {
        // Digests are data, not liveness: they queue and shed with the
        // bulk lane — a lost digest is superseded by the next one.
        EventKind::Monitoring | EventKind::Digest => TrafficClass::Bulk,
        EventKind::Control | EventKind::Heartbeat => TrafficClass::Priority,
    }
}

impl ClusterWorld {
    /// Cluster size.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// The `(monitoring, control)` channels node `i` lives on — its
    /// rack's pair.
    pub fn chans_of(&self, i: usize) -> (ChannelId, ChannelId) {
        self.rack_chans[self.placement.rack_of(NodeId(i))]
    }

    /// Subscribe `node` to exactly the channels its placement assigns:
    /// its rack's monitoring + control pair, plus the spine digest
    /// channel when it is its rack's aggregator. Rejoin and revival must
    /// restore precisely this set — hard-coding the two flat channels
    /// here is what broke rejoin on hierarchical topologies.
    pub(crate) fn subscribe_node(&mut self, node: NodeId) {
        let (mon, ctl) = self.chans_of(node.0);
        self.dir.subscribe(mon, node);
        self.dir.subscribe(ctl, node);
        if let Some(dg) = self.digest_chan {
            if self.placement.is_aggregator(node) {
                self.dir.subscribe(dg, node);
            }
        }
    }

    /// Remove `node` from exactly the channels [`ClusterWorld::subscribe_node`]
    /// put it on — the eviction mirror of the rejoin path.
    pub(crate) fn unsubscribe_node(&mut self, node: NodeId) {
        let (mon, ctl) = self.chans_of(node.0);
        self.dir.unsubscribe(mon, node);
        self.dir.unsubscribe(ctl, node);
        if let Some(dg) = self.digest_chan {
            if self.placement.is_aggregator(node) {
                self.dir.unsubscribe(dg, node);
            }
        }
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Node id by hostname.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.hosts.iter().position(|h| h.name == name).map(NodeId)
    }

    /// Events per second (sent + received) a node handled recently.
    pub fn event_rate(&mut self, node: NodeId, now: SimTime) -> f64 {
        self.event_meter[node.0].bytes(now) as f64 / self.event_meter[node.0].window().as_secs_f64()
    }

    /// Charge CPU time to a node's d-mon kernel thread. Charges drain
    /// serially: the service task is runnable while work is pending, so
    /// compute workloads (linpack) lose exactly the charged CPU time.
    pub fn charge_cpu(&mut self, sim: &mut ClusterSched, node: NodeId, cost: SimDur) {
        if cost.is_zero() {
            return;
        }
        let i = node.0;
        self.svc_pending[i].push_back(cost);
        if !self.svc_busy[i] {
            self.svc_drain(sim, i);
        }
    }

    fn svc_drain(&mut self, sim: &mut ClusterSched, i: usize) {
        let now = sim.now();
        let task = self.svc_tasks[i];
        let Some(cost) = self.svc_pending[i].pop_front() else {
            if self.svc_busy[i] {
                self.svc_busy[i] = false;
                self.hosts[i].cpu.set_state(now, task, TaskState::Sleeping);
            }
            return;
        };
        let host = &mut self.hosts[i];
        host.cpu.advance(now);
        if !self.svc_busy[i] {
            self.svc_busy[i] = true;
            host.cpu.set_state(now, task, TaskState::Runnable);
        }
        let wall = SimDur::from_secs_f64(cost.as_secs_f64() / self.hosts[i].cpu.share());
        sim.schedule_msg_in(wall, ClusterEvent::SvcDone { i });
    }

    /// Send an event over the network and schedule its delivery. In the
    /// central-concentrator topology, leaf-to-leaf hops detour via the
    /// hub, which relays them onward at delivery time.
    pub fn transmit(&mut self, sim: &mut ClusterSched, mut hop: Hop, ev: Event, bytes: usize) {
        if let Topology::Central(hub) = self.dir.topology() {
            if hop.from != hub && hop.to != hub {
                hop = Hop {
                    from: hop.from,
                    to: hub,
                };
            }
        }
        if !self.alive[hop.from.0] {
            return;
        }
        let now = sim.now();
        self.event_meter[hop.from.0].record(now, 1);
        self.hosts[hop.from.0].on_net_bytes(bytes as u64);
        let delivery: Delivery = self
            .net
            .send_class(now, hop.from, hop.to, bytes, class_of(&ev));
        if let Some(dir) = delivery.dropped {
            // An uplink tail-drop happened in the sender's own kernel —
            // locally observable, so the publisher's d-mon chokes the
            // stream instead of burning more credits on a dead queue.
            // Downlink drops happen inside the switch; no one learns of
            // them here (the subscriber infers the gap later).
            if dir == simnet::DropDir::Uplink && ev.kind == EventKind::Monitoring {
                if let (true, Some(sub)) = (hop.from == ev.sender, ev.target) {
                    self.dmons[hop.from.0].on_wire_drop(sub);
                }
            }
            return;
        }
        let sent_at = now;
        let queued = delivery.queued;
        sim.schedule_msg_at(
            delivery.deliver_at,
            ClusterEvent::Deliver {
                hop,
                ev,
                bytes,
                sent_at,
                queued,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        sim: &mut ClusterSched,
        hop: Hop,
        ev: Event,
        bytes: usize,
        sent_at: SimTime,
        queued: SimDur,
    ) {
        let now = sim.now();
        let to = hop.to;
        if !self.alive[to.0] {
            self.fault.note_crash_drop();
            return; // delivered into a dead NIC: lost
        }
        if self.fault.should_drop(hop.from, to).is_some() {
            return; // destroyed on the wire: partition or injected loss
        }
        let one_way = now.since(sent_at);
        self.event_meter[to.0].record(now, 1);
        self.hosts[to.0].on_net_bytes(bytes as u64);

        // Central-concentrator transit: a hub receiving an event addressed
        // elsewhere relays it onward instead of consuming it.
        if let Topology::Central(hub) = self.dir.topology() {
            if to == hub {
                if let Some(target) = ev.target {
                    if target != hub {
                        let relay_cost = self.calib.receive_cost(bytes)
                            + self.calib.submit_cost(bytes)
                            + self.calib.kernel_path_recv
                            + self.calib.kernel_path_send;
                        self.charge_cpu(sim, hub, relay_cost);
                        // Relay directly (not via transmit) so the final
                        // delivery keeps the original send time and the
                        // latency sampler sees true end-to-end latency.
                        self.event_meter[hub.0].record(now, 1);
                        let relay_hop = Hop {
                            from: hub,
                            to: target,
                        };
                        let delivery = self.net.send_class(now, hub, target, bytes, class_of(&ev));
                        if delivery.dropped.is_some() {
                            return; // relay leg tail-dropped
                        }
                        let relay_queued = delivery.queued;
                        sim.schedule_msg_at(
                            delivery.deliver_at,
                            ClusterEvent::Deliver {
                                hop: relay_hop,
                                ev,
                                bytes,
                                sent_at,
                                queued: relay_queued,
                            },
                        );
                        return;
                    }
                }
            }
        }

        // Kernel connection tracking on the receiving host.
        let conn = ConnId {
            local: to,
            remote: ev.sender,
            proto: simnet::conn::Proto::Tcp,
            tag: ev.channel,
        };
        self.hosts[to.0].conns.open(conn, now);
        self.hosts[to.0]
            .conns
            .record_delivery(conn, now, bytes as u64, one_way);
        // Heavy queueing means the transport retransmitted: NET MON's
        // per-connection counters should show congestion.
        if queued > self.calib.rto {
            self.hosts[to.0].conns.record_retransmission(conn);
        }

        match ev.kind {
            EventKind::Monitoring => {
                self.mon_delivered += 1;
                self.mon_latency_us.add(one_way.as_micros_f64());
                let handler = {
                    // Disjoint field borrows: calib is read-only next to the
                    // mutable dmon/host splits, so no clone is needed.
                    let calib = &self.calib;
                    let (dmon, host) = Self::dmon_host(&mut self.dmons, &mut self.hosts, to.0);
                    dmon.on_event(host, &ev, bytes, now, calib)
                };
                self.charge_cpu(sim, to, handler + self.calib.kernel_path_recv);

                // Central-concentrator topology: the hub relays.
                if let Topology::Central(hub) = self.dir.topology() {
                    if to == hub {
                        if let Some(origin) = ev.as_monitoring().map(|m| m.origin) {
                            if origin != hub {
                                let chan = ChannelId(ev.channel);
                                let hops = self.dir.plan_forward(chan, origin);
                                for fwd in hops {
                                    let relay_cost =
                                        self.calib.submit_cost(bytes) + self.calib.kernel_path_send;
                                    self.charge_cpu(sim, hub, relay_cost);
                                    self.transmit(sim, fwd, ev.clone(), bytes);
                                }
                            }
                        }
                    }
                }
                ev.recycle();
            }
            EventKind::Heartbeat => {
                let handler = self.dmons[to.0].on_heartbeat(&ev, now, &self.calib);
                self.charge_cpu(sim, to, handler + self.calib.heartbeat_path_recv);
            }
            EventKind::Digest => {
                let handler = {
                    let calib = &self.calib;
                    let (dmon, host) = Self::dmon_host(&mut self.dmons, &mut self.hosts, to.0);
                    dmon.on_digest(host, &ev, bytes, now, calib)
                };
                self.charge_cpu(sim, to, handler + self.calib.kernel_path_recv);
            }
            EventKind::Control => {
                self.ctl_delivered += 1;
                if let Some(msg) = ev.as_control() {
                    let outcome = self.dmons[to.0].on_control(ev.sender, msg, &self.calib);
                    self.charge_cpu(sim, to, outcome.cpu + self.calib.kernel_path_recv);
                    if let Some(reply) = outcome.reply {
                        // E.g. a filter rejection travelling back to the
                        // subscriber that tried to deploy it.
                        let rev =
                            self.dmons[to.0].make_control_event(self.ctl_chan, ev.sender, reply);
                        let bytes = wire::encoded_size(&rev);
                        let send_cost = self.calib.submit_cost(bytes) + self.calib.kernel_path_send;
                        self.charge_cpu(sim, to, send_cost);
                        let hop = Hop {
                            from: to,
                            to: ev.sender,
                        };
                        self.transmit(sim, hop, rev, bytes);
                    }
                }
            }
        }
    }

    fn dmon_host<'a>(
        dmons: &'a mut [DMon],
        hosts: &'a mut [Host],
        i: usize,
    ) -> (&'a mut DMon, &'a mut Host) {
        (&mut dmons[i], &mut hosts[i])
    }

    /// Crash a node: it stops polling, sending, and receiving. Other
    /// nodes' d-mons keep running — with peer-to-peer channels the rest of
    /// the cluster keeps exchanging monitoring data; with a central
    /// collector, losing the hub silences everyone (the paper's fault-
    /// tolerance argument).
    pub fn kill_node(&mut self, node: NodeId) {
        let i = node.0;
        if !self.alive[i] {
            return;
        }
        self.alive[i] = false;
        // Invalidate the node's poll series so the periodic closure stops
        // at its next tick instead of no-op-firing forever.
        self.poll_token[i] += 1;
        // In-flight kernel-thread work dies with the node.
        self.svc_pending[i].clear();
    }

    /// Bring a crashed node back: it rejoins the channel registry, bumps
    /// its d-mon epoch (so peers see a restart, not a gap), and restarts
    /// its poll series one period from now. No-op on live nodes.
    pub fn revive_node(&mut self, sim: &mut ClusterSched, node: NodeId) {
        let i = node.0;
        if self.alive[i] {
            return;
        }
        self.alive[i] = true;
        // Proc writes queued before the crash died with it.
        let _ = self.hosts[i].proc.drain_writes();
        self.dmons[i].on_revive();
        // Registry re-bootstrap: the revived node re-announces itself on
        // its rack's channels (plus the digest channel when it is the
        // rack aggregator).
        self.subscribe_node(node);
        self.evicted[i] = false;
        self.notify_rejoin(node, sim.now());
        self.poll_token[i] += 1;
        let first = sim.now() + self.poll_period;
        Self::arm_poll(sim, i, self.poll_token[i], first);
    }

    /// Schedule a node's poll series: one typed `Poll` message; each
    /// firing re-arms the next (see [`HandleMsg::handle`]). The series
    /// self-cancels when the node's generation token moves on (crash or
    /// re-revive).
    fn arm_poll(sim: &mut ClusterSched, i: usize, token: u64, first: SimTime) {
        sim.schedule_msg_at(first, ClusterEvent::Poll { i, token });
    }

    /// Apply one fault action right now. Crash/revive route through the
    /// node lifecycle; network faults mutate [`ClusterWorld::fault`].
    pub fn apply_fault(&mut self, sim: &mut ClusterSched, action: &simnet::FaultAction) {
        match *action {
            simnet::FaultAction::Crash(node) => self.kill_node(node),
            simnet::FaultAction::Revive(node) => self.revive_node(sim, node),
            ref other => self.fault.apply(&mut self.net, other),
        }
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.0]
    }

    /// Run one d-mon polling iteration for node `i`. No-op on dead nodes.
    pub fn poll_node(&mut self, sim: &mut ClusterSched, i: usize) {
        if !self.alive[i] {
            return;
        }
        let now = sim.now();
        let (mon, ctl) = self.chans_of(i);
        let mut outcome = {
            let dir = &self.dir;
            let calib = &self.calib;
            // Split borrows: dmons[i], hosts[i], dir and calib are
            // distinct fields.
            let dmon = &mut self.dmons[i];
            let host = &mut self.hosts[i];
            dmon.poll(host, dir, mon, ctl, now, calib)
        };
        self.charge_cpu(sim, NodeId(i), outcome.cpu_cost);
        for (hop, ev, bytes) in outcome.sends.drain(..) {
            self.transmit(sim, hop, ev, bytes);
        }
        self.dmons[i].recycle_sends(outcome.sends);
        // Failure-detector verdicts become directory evictions: the dead
        // peer stops being a subscriber, so every publisher's read-set
        // logic stops sampling, filtering, and transmitting for it. The
        // eviction removes exactly what the peer's placement subscribed.
        for &peer in &outcome.dead_peers {
            self.unsubscribe_node(peer);
            self.evicted[peer.0] = true;
        }
        // A node evicted during a partition notices it is no longer a
        // member once it can poll again and re-registers — recovery is
        // symmetric even when both sides declared each other dead.
        if outcome.rejoin && self.evicted[i] {
            self.subscribe_node(NodeId(i));
            self.evicted[i] = false;
            self.notify_rejoin(NodeId(i), now);
        }
        // The aggregation tier: after the regular poll, a rack aggregator
        // folds its members' latest samples into one bounded digest and
        // republishes it on the spine digest channel.
        if let Some(dg) = self.digest_chan {
            let node = NodeId(i);
            if self.placement.is_aggregator(node) {
                let rack = self.placement.rack_of(node);
                let members = self.placement.rack(rack).range();
                let planned = {
                    let dir = &self.dir;
                    let calib = &self.calib;
                    self.dmons[i].poll_digest(
                        dir,
                        dg,
                        rack as u32,
                        members,
                        &outcome.dead_peers,
                        calib,
                    )
                };
                if let Some((sends, cpu)) = planned {
                    self.charge_cpu(sim, node, cpu);
                    for (hop, ev, bytes) in sends {
                        self.transmit(sim, hop, ev, bytes);
                    }
                }
            }
        }
    }

    /// Propagate a channel-membership change: every live member's d-mon
    /// hears that `node` re-registered and lets its failure detector
    /// downgrade a Dead verdict accordingly.
    fn notify_rejoin(&mut self, node: NodeId, now: SimTime) {
        for (j, dmon) in self.dmons.iter_mut().enumerate() {
            if j != node.0 && self.alive[j] {
                dmon.on_peer_rejoin(node, now);
            }
        }
    }
}

/// The cluster simulation: world + event loop + convenience API.
///
/// By default events run on the serial closure-based scheduler. With
/// [`ClusterSim::set_threads`] the same world runs on the sharded
/// parallel engine ([`crate::pcluster`]), bit-identical to the serial
/// run.
pub struct ClusterSim {
    sim: ClusterSched,
    world: ClusterWorld,
    poll_period: SimDur,
    stagger: SimDur,
    started: bool,
    threads: usize,
    driver: Option<crate::pcluster::ParallelDriver>,
}

impl ClusterSim {
    /// Build a cluster from a configuration. Channels are opened and (by
    /// default) every node subscribes to both.
    // detlint: replay-only — setup-time bootstrap, before any shard window
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.names.len();
        assert!(n > 0, "cluster needs at least one node");
        assert_eq!(cfg.host_cfgs.len(), n, "one host config per node");
        let placement = cfg.topo.resolve(n);
        let net = if placement.is_star() {
            Network::new(n, cfg.link)
        } else {
            Network::hierarchical(&placement, cfg.link, cfg.switch_link)
        };
        let mut dir = Directory::new(cfg.topology);
        // The star opens exactly the two legacy channels — same names,
        // same insertion order as before the hierarchy existed, so every
        // single-rack fingerprint is unchanged. A hierarchy opens one
        // monitoring + control pair per rack plus the spine digest
        // channel.
        let (rack_chans, digest_chan) = if placement.is_star() {
            let mon = dir.open("dproc-monitoring");
            let ctl = dir.open("dproc-control");
            (vec![(mon, ctl)], None)
        } else {
            let chans: Vec<(ChannelId, ChannelId)> = (0..placement.n_racks())
                .map(|k| {
                    let mon = dir.open(&format!("dproc-monitoring-rack{k}"));
                    let ctl = dir.open(&format!("dproc-control-rack{k}"));
                    (mon, ctl)
                })
                .collect();
            let dg = dir.open("dproc-digest");
            (chans, Some(dg))
        };
        let (mon_chan, ctl_chan) = rack_chans[0];
        let shared_names = std::sync::Arc::new(cfg.names.clone());
        let mut hosts = Vec::with_capacity(n);
        let mut dmons = Vec::with_capacity(n);
        let mut svc_tasks = Vec::with_capacity(n);
        for i in 0..n {
            let mut host = Host::new(cfg.names[i].clone(), NodeId(i), &cfg.host_cfgs[i]);
            host.link_capacity_bps = cfg.link.bandwidth_bps;
            let svc = host.cpu.spawn_service(SimTime::ZERO, "d-mon");
            svc_tasks.push(svc);
            hosts.push(host);
            let mut dmon = DMon::new_shared(
                NodeId(i),
                shared_names.clone(),
                standard_modules(),
                cfg.poll_period,
            );
            dmon.set_event_pad(cfg.event_pad);
            if let (Some(stale), Some(dead)) = (cfg.stale_after, cfg.dead_after) {
                dmon.set_failure_bounds(stale, dead);
            }
            dmons.push(dmon);
            if cfg.auto_subscribe {
                let (mon, ctl) = rack_chans[placement.rack_of(NodeId(i))];
                dir.subscribe(mon, NodeId(i));
                dir.subscribe(ctl, NodeId(i));
                if let Some(dg) = digest_chan {
                    if placement.is_aggregator(NodeId(i)) {
                        dir.subscribe(dg, NodeId(i));
                    }
                }
            }
        }
        let world = ClusterWorld {
            net,
            flows: FlowTable::new(),
            hosts,
            dmons,
            linpacks: (0..n).map(|_| Linpack::new()).collect(),
            dir,
            mon_chan,
            ctl_chan,
            placement,
            rack_chans,
            digest_chan,
            calib: cfg.calib.clone(),
            mon_latency_us: simcore::stats::Sampler::new(),
            mon_delivered: 0,
            ctl_delivered: 0,
            svc_tasks,
            svc_pending: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            svc_busy: vec![false; n],
            alive: vec![true; n],
            fault: simnet::FaultState::new(0),
            poll_token: vec![0; n],
            evicted: vec![false; n],
            poll_period: cfg.poll_period,
            event_meter: (0..n)
                .map(|_| BytesWindow::new(SimDur::from_secs(1)))
                .collect(),
            flow_meta: std::collections::HashMap::new(),
        };
        ClusterSim {
            sim: Sim::new(),
            world,
            poll_period: cfg.poll_period,
            stagger: cfg.stagger,
            started: false,
            threads: 1,
            driver: None,
        }
    }

    /// Run the simulation on `threads` worker shards (1 = the serial
    /// scheduler, the default). Must be called before [`ClusterSim::start`].
    /// The parallel run is bit-identical to the serial one; shard count is
    /// clamped to the node count.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(!self.started, "set_threads must precede start()");
        assert!(threads > 0, "threads must be at least 1");
        self.threads = threads;
        self.driver = if threads > 1 {
            Some(crate::pcluster::ParallelDriver::new(
                &self.world.placement,
                threads,
                self.world.net.lookahead(),
            ))
        } else {
            None
        };
    }

    /// Configured worker thread count (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of worker shards when parallel, else 1.
    pub fn shards(&self) -> usize {
        self.driver
            .as_ref()
            .map_or(1, super::pcluster::ParallelDriver::shards)
    }

    /// Parallel engine counters (`None` on the serial driver).
    pub fn parallel_stats(&self) -> Option<simcore::pdes::EngineStats> {
        self.driver
            .as_ref()
            .map(super::pcluster::ParallelDriver::stats)
    }

    /// Schedule the periodic d-mon polls. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.world.len();
        for i in 0..n {
            let first = SimTime::ZERO + self.poll_period + self.stagger * (i as u64);
            if let Some(driver) = self.driver.as_mut() {
                driver.schedule_poll(i, self.world.poll_token[i], first);
            } else {
                ClusterWorld::arm_poll(&mut self.sim, i, self.world.poll_token[i], first);
            }
        }
    }

    /// Schedule an injected-fault timeline. Crash and revive actions run
    /// through the node lifecycle (poll series, registry, epoch); the
    /// rest mutate the network fault state in place. The plan's seed
    /// reseeds the loss RNG so a given plan is deterministic.
    pub fn apply_fault_plan(&mut self, plan: &simnet::FaultPlan) {
        self.world.fault.reseed(plan.seed());
        if let Some(driver) = self.driver.as_mut() {
            driver.schedule_fault_plan(plan.actions());
            return;
        }
        for (t, action) in plan.actions() {
            self.sim
                .schedule_at(t, move |w: &mut ClusterWorld, sim: &mut ClusterSched| {
                    w.apply_fault(sim, &action);
                });
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.driver
            .as_ref()
            .map_or_else(|| self.sim.now(), super::pcluster::ParallelDriver::now)
    }

    /// Run the event loop until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        if let Some(mut driver) = self.driver.take() {
            let world = std::mem::replace(&mut self.world, Self::placeholder_world());
            self.world = driver.run_until(world, t);
            self.driver = Some(driver);
            return;
        }
        self.sim.run_until(&mut self.world, t);
    }

    /// Run the event loop for `d` from now.
    pub fn run_for(&mut self, d: SimDur) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// An empty stand-in world occupying `self.world` while the parallel
    /// engine owns the real one.
    fn placeholder_world() -> ClusterWorld {
        let mut dir = Directory::new(Topology::PeerToPeer);
        let mon_chan = dir.open("dproc-monitoring");
        let ctl_chan = dir.open("dproc-control");
        ClusterWorld {
            net: Network::new(0, LinkSpec::fast_ethernet()),
            flows: FlowTable::new(),
            hosts: Vec::new(),
            dmons: Vec::new(),
            linpacks: Vec::new(),
            dir,
            mon_chan,
            ctl_chan,
            placement: Placement::star(0),
            rack_chans: vec![(mon_chan, ctl_chan)],
            digest_chan: None,
            calib: Calib::default(),
            mon_latency_us: simcore::stats::Sampler::new(),
            mon_delivered: 0,
            ctl_delivered: 0,
            svc_tasks: Vec::new(),
            svc_pending: Vec::new(),
            svc_busy: Vec::new(),
            alive: Vec::new(),
            fault: simnet::FaultState::new(0),
            poll_token: Vec::new(),
            evicted: Vec::new(),
            poll_period: SimDur::from_secs(1),
            event_meter: Vec::new(),
            flow_meta: std::collections::HashMap::new(),
        }
    }

    /// Immutable world access.
    pub fn world(&self) -> &ClusterWorld {
        &self.world
    }

    /// Mutable world access (between runs).
    pub fn world_mut(&mut self) -> &mut ClusterWorld {
        &mut self.world
    }

    /// Both world and scheduler, for app layers that transmit directly.
    /// Serial driver only.
    pub fn parts(&mut self) -> (&mut ClusterWorld, &mut ClusterSched) {
        assert!(
            self.driver.is_none(),
            "ClusterSim::parts requires the serial driver (threads=1)"
        );
        (&mut self.world, &mut self.sim)
    }

    /// Schedule an arbitrary action at time `t`. Serial driver only —
    /// ad-hoc closures cannot be logged and replayed by the parallel
    /// engine.
    pub fn at(
        &mut self,
        t: SimTime,
        f: impl FnOnce(&mut ClusterWorld, &mut ClusterSched) + 'static,
    ) {
        assert!(
            self.driver.is_none(),
            "ClusterSim::at requires the serial driver (threads=1)"
        );
        self.sim.schedule_at(t, f);
    }

    /// Write into a `/proc/cluster/<target>/control` file on `node` — the
    /// application-facing customization path. Creates the file if the
    /// target has not been seen yet.
    pub fn write_control(&mut self, node: NodeId, target_name: &str, text: &str) {
        let path = format!("cluster/{target_name}/control");
        let host = &mut self.world.hosts[node.0];
        if !host.proc.exists(&path) {
            host.proc.set(&path, "").expect("control path");
        }
        host.proc.write(&path, text).expect("control write");
    }

    /// Start `threads` linpack threads on a node.
    pub fn start_linpack(&mut self, node: NodeId, threads: usize) {
        let now = self.sim.now();
        let host = &mut self.world.hosts[node.0];
        self.world.linpacks[node.0].start_threads(&mut host.cpu, now, threads);
    }

    /// Begin a linpack measurement interval on a node.
    pub fn mark_linpack(&mut self, node: NodeId) {
        let now = self.sim.now();
        let host = &mut self.world.hosts[node.0];
        self.world.linpacks[node.0].mark(&mut host.cpu, now);
    }

    /// Mflops since the last mark on a node.
    pub fn linpack_mflops(&mut self, node: NodeId) -> f64 {
        let now = self.sim.now();
        let host = &mut self.world.hosts[node.0];
        self.world.linpacks[node.0].mflops_since_mark(&mut host.cpu, now)
    }

    /// Start an Iperf-style UDP flood between two nodes. Both endpoints'
    /// NIC counters observe the traffic (NET MON's available-bandwidth
    /// estimate reflects it).
    pub fn start_iperf(&mut self, from: NodeId, to: NodeId, bps: f64) -> simnet::FlowId {
        let id = self.world.flows.start(&mut self.world.net, from, to, bps);
        self.world.hosts[from.0].observed_background_bps += bps;
        self.world.hosts[to.0].observed_background_bps += bps;
        self.world.flow_meta.insert(id, (from, to, bps));
        id
    }

    /// Stop a flood; clears the endpoints' NIC observations. Idempotent.
    pub fn stop_iperf(&mut self, id: simnet::FlowId) {
        self.world.flows.stop(&mut self.world.net, id);
        if let Some((from, to, bps)) = self.world.flow_meta.remove(&id) {
            let f = &mut self.world.hosts[from.0].observed_background_bps;
            *f = (*f - bps).max(0.0);
            let t = &mut self.world.hosts[to.0].observed_background_bps;
            *t = (*t - bps).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_node_cluster_builds_figure1_tree() {
        let mut sim = ClusterSim::new(ClusterConfig::named(&["alan", "maui", "etna"]));
        sim.start();
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        // Every node sees every other node's metrics under /proc/cluster.
        for host_idx in 0..3 {
            for name in ["alan", "maui", "etna"] {
                assert!(
                    w.hosts[host_idx]
                        .proc
                        .exists(&format!("cluster/{name}/cpu")),
                    "host {host_idx} missing cluster/{name}/cpu"
                );
            }
        }
        assert!(w.mon_delivered > 0);
    }

    #[test]
    fn hierarchical_racks_scope_channels_and_flow_digests() {
        let mut sim = ClusterSim::new(ClusterConfig::new(6).racks(3));
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let w = sim.world();
        assert_eq!(w.placement.n_racks(), 2);
        assert_eq!(w.rack_chans.len(), 2);
        assert!(w.digest_chan.is_some());
        // Rack-scoped monitoring: members see their rack-mates' full
        // metric trees but nothing from other racks.
        assert!(w.hosts[1].proc.exists("cluster/node2/cpu"));
        assert!(!w.hosts[1].proc.exists("cluster/node4/cpu"));
        // Aggregators exchange bounded digests across the spine and
        // surface them as /proc rack summaries.
        let d0 = w.dmons[0].rack_digest(1).expect("rack 1 digest at node 0");
        assert_eq!(d0.members, 3);
        assert_eq!(d0.origin, NodeId(3));
        assert!(w.dmons[3].rack_digest(0).is_some());
        assert!(w.hosts[0].proc.exists("cluster/rack1/cpu"));
        assert!(w.hosts[3].proc.exists("cluster/rack0/cpu"));
        assert!(w.dmons[0].stats.digests_sent > 0);
        assert!(w.dmons[0].stats.digest_staleness_s.len() > 0);
        // Non-aggregators stay off the spine entirely.
        assert_eq!(w.dmons[1].stats.digests_received, 0);
        assert!(!w.hosts[1].proc.exists("cluster/rack1/cpu"));
    }

    #[test]
    fn star_has_no_aggregation_tier() {
        let mut sim = ClusterSim::new(ClusterConfig::new(3));
        sim.start();
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        assert!(w.digest_chan.is_none());
        assert_eq!(w.rack_chans.len(), 1);
        assert!(w.dmons.iter().all(|d| d.stats.digests_sent == 0));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = ClusterSim::new(ClusterConfig::new(4));
            sim.start();
            sim.run_until(SimTime::from_secs(10));
            (
                sim.world().mon_delivered,
                sim.world().mon_latency_us.mean(),
                sim.world().dmons[0].stats.events_sent,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn monitoring_traffic_scales_with_nodes() {
        let delivered = |n: usize| {
            let mut sim = ClusterSim::new(ClusterConfig::new(n));
            sim.start();
            sim.run_until(SimTime::from_secs(10));
            sim.world().mon_delivered
        };
        let d2 = delivered(2);
        let d8 = delivered(8);
        // n*(n-1) scaling: 8 nodes produce ~28x the pairs of 2 nodes.
        assert!(d8 > d2 * 20, "d2={d2} d8={d8}");
    }

    #[test]
    fn control_write_reaches_remote_dmon() {
        let mut sim = ClusterSim::new(ClusterConfig::new(3));
        sim.start();
        sim.run_until(SimTime::from_secs(2));
        // node1 asks node0 for a 2s period on all metrics.
        sim.write_control(NodeId(1), "node0", "period * 2");
        sim.run_until(SimTime::from_secs(8));
        let w = sim.world();
        let p = w.dmons[0].policy_for(NodeId(1)).expect("policy installed");
        assert_eq!(p.rule_count("LOADAVG"), 1);
    }

    #[test]
    fn filter_deployment_over_control_channel() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        sim.start();
        sim.run_until(SimTime::from_secs(2));
        sim.write_control(
            NodeId(1),
            "node0",
            "filter { if (input[LOADAVG].value > 100.0) { output[0] = input[LOADAVG]; } }",
        );
        sim.run_until(SimTime::from_secs(4));
        assert!(sim.world().dmons[0].has_filter(NodeId(1)));
        // The filter blocks everything (load never > 100): node1 stops
        // receiving fresh values from node0.
        let before = sim.world().dmons[1].stats.events_received;
        sim.run_until(SimTime::from_secs(14));
        let after = sim.world().dmons[1].stats.events_received;
        assert_eq!(before, after, "filter suppressed all events");
    }

    #[test]
    fn filter_rejection_travels_back_to_subscriber() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        sim.start();
        sim.run_until(SimTime::from_secs(2));
        sim.write_control(NodeId(1), "node0", "filter { while (1) { } }");
        sim.run_until(SimTime::from_secs(6));
        // The publisher refused the filter and never installed it...
        assert!(!sim.world().dmons[0].has_filter(NodeId(1)));
        assert_eq!(sim.world().dmons[0].stats.filters_rejected, 1);
        // ...and the subscriber learned why, over the control channel.
        let reason = sim.world().dmons[1]
            .filter_rejection(NodeId(0))
            .expect("rejection reply delivered");
        assert!(reason.contains("unbounded"), "reason: {reason}");
    }

    #[test]
    fn linpack_feels_monitoring_load() {
        // One node, no monitoring traffic: full speed.
        let mut quiet =
            ClusterSim::new(ClusterConfig::new(1).host_cfg(0, HostConfig::uniprocessor()));
        quiet.start();
        quiet.start_linpack(NodeId(0), 1);
        quiet.mark_linpack(NodeId(0));
        quiet.run_until(SimTime::from_secs(30));
        let mflops_quiet = quiet.linpack_mflops(NodeId(0));

        // Eight nodes: node 0 handles 7 incoming + 7 outgoing events/s.
        let mut busy =
            ClusterSim::new(ClusterConfig::new(8).host_cfg(0, HostConfig::uniprocessor()));
        busy.start();
        busy.start_linpack(NodeId(0), 1);
        busy.mark_linpack(NodeId(0));
        busy.run_until(SimTime::from_secs(30));
        let mflops_busy = busy.linpack_mflops(NodeId(0));

        assert!(
            mflops_busy < mflops_quiet * 0.99,
            "monitoring should perturb: {mflops_quiet} -> {mflops_busy}"
        );
        assert!(
            mflops_busy > mflops_quiet * 0.90,
            "but only slightly: {mflops_quiet} -> {mflops_busy}"
        );
    }

    #[test]
    fn central_topology_relays_through_hub() {
        let cfg = ClusterConfig::new(4).topology(Topology::Central(NodeId(0)));
        let mut sim = ClusterSim::new(cfg);
        sim.start();
        sim.run_until(SimTime::from_secs(5));
        let w = sim.world();
        // Non-hub nodes still end up with each other's data.
        assert!(w.hosts[1].proc.exists("cluster/node2/cpu"));
        assert!(w.hosts[2].proc.exists("cluster/node3/cpu"));
        // The hub's links carry far more traffic than a leaf's (its own
        // submissions plus one relay per leaf-to-leaf pair).
        let hub_msgs = w.net.uplink(NodeId(0)).messages() + w.net.downlink(NodeId(0)).messages();
        let leaf_msgs = w.net.uplink(NodeId(1)).messages() + w.net.downlink(NodeId(1)).messages();
        assert!(
            hub_msgs > leaf_msgs * 2,
            "hub {hub_msgs} vs leaf {leaf_msgs}"
        );
    }

    #[test]
    fn iperf_flood_perturbs_monitoring_latency() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        sim.start();
        sim.run_until(SimTime::from_secs(10));
        let lat_quiet = sim.world().mon_latency_us.mean();

        let mut sim2 = ClusterSim::new(ClusterConfig::new(2));
        sim2.start();
        sim2.start_iperf(NodeId(0), NodeId(1), 90e6);
        sim2.run_until(SimTime::from_secs(10));
        let lat_flooded = sim2.world().mon_latency_us.mean();
        assert!(
            lat_flooded > lat_quiet * 2.0,
            "flood should inflate latency: {lat_quiet} vs {lat_flooded}"
        );
    }

    #[test]
    fn remote_value_fast_path_matches_proc() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        sim.start();
        // Put some load on node1 so its LOADAVG is nonzero.
        sim.start_linpack(NodeId(1), 2);
        sim.run_until(SimTime::from_secs(120));
        let w = sim.world();
        let (v, _) = w.dmons[0].remote_value(NodeId(1), "LOADAVG").unwrap();
        assert!(v > 1.5, "node0 sees node1's load: {v}");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use simnet::conn::Proto;

    #[test]
    fn congested_monitoring_shows_retransmissions() {
        // Saturate node1's downlink; monitoring events queue past the RTO
        // and the connection stats record retransmissions, which NET MON's
        // detail text surfaces.
        let mut sim = ClusterSim::new(ClusterConfig::new(2).event_pad(500_000));
        sim.start();
        sim.start_iperf(NodeId(0), NodeId(1), 99e6);
        sim.run_until(SimTime::from_secs(30));
        let w = sim.world_mut();
        let conn = ConnId {
            local: NodeId(1),
            remote: NodeId(0),
            proto: Proto::Tcp,
            tag: w.mon_chan.0,
        };
        let retx = w.hosts[1]
            .conns
            .get(conn)
            .map(|s| s.retransmissions())
            .unwrap_or(0);
        assert!(retx > 0, "queueing past the RTO counts retransmissions");
        // And the /proc detail carries it to remote observers.
        let now = sim.now();
        let w = sim.world_mut();
        let sample = crate::modules::NetMon::default().collect_for_test(&mut w.hosts[1], now);
        assert!(sample.contains("retx"), "{sample}");
    }

    #[test]
    fn uncongested_monitoring_has_no_retransmissions() {
        let mut sim = ClusterSim::new(ClusterConfig::new(2));
        sim.start();
        sim.run_until(SimTime::from_secs(30));
        let w = sim.world();
        let conn = ConnId {
            local: NodeId(1),
            remote: NodeId(0),
            proto: Proto::Tcp,
            tag: w.mon_chan.0,
        };
        assert_eq!(w.hosts[1].conns.get(conn).unwrap().retransmissions(), 0);
    }
}
