//! The monitoring modules.
//!
//! Each module registers with d-mon and is polled through a callback at
//! every iteration — exactly the paper's `register_service(callback)`
//! design. A module produces one headline metric value (what travels in
//! monitoring events and what E-code filters see) plus a detail string
//! (what appears in the remote `/proc/cluster/<node>/<file>` entry).
//!
//! The five modules of the paper:
//!
//! | module   | `/proc` file | E-code constant | value                          |
//! |----------|--------------|-----------------|--------------------------------|
//! | CPU MON  | `cpu`        | `LOADAVG`       | run-queue average over window  |
//! | MEM MON  | `mem`        | `FREEMEM`       | free memory in bytes           |
//! | DISK MON | `disk`       | `DISKUSAGE`     | sectors moved in window        |
//! | NET MON  | `net`        | `NET_AVAIL`     | available bandwidth, bps       |
//! | PMC      | `pmc`        | `CACHE_MISS`    | cumulative cache misses        |
//!
//! [`PowerMon`] (`power` / `BATTERY`) is the run-time-deployable sixth
//! module for mobile hosts.

use simcore::fastfmt;
use simcore::{SimDur, SimTime};
use simos::pmc::PmcEvent;
use simos::Host;

/// A monitoring module registered with d-mon. `Send` so a node's d-mon
/// (modules included) can live on a worker shard of the parallel scheduler.
pub trait MonitorModule: Send {
    /// `/proc/cluster/<node>/<file_name>` leaf name.
    fn file_name(&self) -> &'static str;
    /// Name of the metric constant in E-code filter environments.
    fn metric_name(&self) -> &'static str;
    /// The d-mon poll callback: append the `/proc` detail text to
    /// `detail` (handed in cleared, reused across polls so steady-state
    /// collection allocates nothing) and return the headline value that
    /// travels on the channel and that filters compare.
    fn collect(&mut self, host: &mut Host, now: SimTime, detail: &mut String) -> f64;
    /// Change the module's averaging window, when it has one (the paper's
    /// CPU MON takes an application-specified period). Default: ignored.
    fn set_window(&mut self, _window: SimDur) {}
}

/// CPU MON: average run-queue length over an application-specified window
/// (default 1 minute, like `/proc/loadavg`'s shortest).
#[derive(Debug)]
pub struct CpuMon {
    window: SimDur,
}

impl CpuMon {
    /// Default 60 s window.
    pub fn new() -> Self {
        CpuMon {
            window: SimDur::from_secs(60),
        }
    }

    /// With an explicit window.
    pub fn with_window(window: SimDur) -> Self {
        CpuMon { window }
    }
}

impl Default for CpuMon {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitorModule for CpuMon {
    fn file_name(&self) -> &'static str {
        "cpu"
    }
    fn metric_name(&self) -> &'static str {
        "LOADAVG"
    }
    fn collect(&mut self, host: &mut Host, now: SimTime, detail: &mut String) -> f64 {
        host.cpu.advance(now);
        let la = host.cpu.loadavg(now, self.window);
        // Piecewise assembly with the exact-output fast formatters;
        // equivalent to
        // `"loadavg {:.2} window_s {} runnable {} cpus {}"` via `format!`.
        detail.push_str("loadavg ");
        fastfmt::push_f64_fixed(detail, la, 2);
        detail.push_str(" window_s ");
        fastfmt::push_u64(detail, self.window.as_secs());
        detail.push_str(" runnable ");
        fastfmt::push_u64(detail, host.cpu.runnable() as u64);
        detail.push_str(" cpus ");
        fastfmt::push_u64(detail, host.cpu.n_cpus() as u64);
        la
    }
    fn set_window(&mut self, window: SimDur) {
        if !window.is_zero() {
            self.window = window;
        }
    }
}

/// MEM MON: free memory via `nr_free_pages`.
#[derive(Debug, Default)]
pub struct MemMon;

impl MonitorModule for MemMon {
    fn file_name(&self) -> &'static str {
        "mem"
    }
    fn metric_name(&self) -> &'static str {
        "FREEMEM"
    }
    fn collect(&mut self, host: &mut Host, _now: SimTime, detail: &mut String) -> f64 {
        let free = host.mem.free_bytes();
        // Equivalent to
        // `"free_bytes {} free_pages {} total_pages {}"` via `format!`.
        detail.push_str("free_bytes ");
        fastfmt::push_u64(detail, free);
        detail.push_str(" free_pages ");
        fastfmt::push_u64(detail, host.mem.nr_free_pages());
        detail.push_str(" total_pages ");
        fastfmt::push_u64(detail, host.mem.total_pages());
        free as f64
    }
}

/// DISK MON: sectors read+written over its window (default 1 s).
#[derive(Debug)]
pub struct DiskMon;

impl MonitorModule for DiskMon {
    fn file_name(&self) -> &'static str {
        "disk"
    }
    fn metric_name(&self) -> &'static str {
        "DISKUSAGE"
    }
    fn collect(&mut self, host: &mut Host, now: SimTime, detail: &mut String) -> f64 {
        let sr = host.disk.sectors_read_rate(now);
        let sw = host.disk.sectors_written_rate(now);
        // Equivalent to `"sectors_window {} reads {} writes {} sectors_read
        // {} sectors_written {}"` via `format!`.
        detail.push_str("sectors_window ");
        fastfmt::push_u64(detail, sr + sw);
        detail.push_str(" reads ");
        fastfmt::push_u64(detail, host.disk.reads());
        detail.push_str(" writes ");
        fastfmt::push_u64(detail, host.disk.writes());
        detail.push_str(" sectors_read ");
        fastfmt::push_u64(detail, host.disk.sectors_read());
        detail.push_str(" sectors_written ");
        fastfmt::push_u64(detail, host.disk.sectors_written());
        (sr + sw) as f64
    }
}

/// NET MON: available network bandwidth (bps), estimated from interface
/// counters (line rate minus background minus tracked-connection
/// throughput), plus per-connection detail (RTT, retransmissions, losses).
/// The headline value is what the SmartPointer server consumes to size a
/// client's stream.
#[derive(Debug, Default)]
pub struct NetMon {
    /// Reused per-connection line buffers: formatting the connection table
    /// every poll is the single hottest formatting site in the pipeline,
    /// so lines are assembled with the exact-output fast formatters into
    /// pooled `String`s instead of fresh `format!` allocations.
    line_pool: Vec<String>,
}

impl MonitorModule for NetMon {
    fn file_name(&self) -> &'static str {
        "net"
    }
    fn metric_name(&self) -> &'static str {
        "NET_AVAIL"
    }
    fn collect(&mut self, host: &mut Host, now: SimTime, detail: &mut String) -> f64 {
        let avail = host.available_bps(now);
        let total = host.conns.total_used_bps(now);
        // Each line is byte-identical to the old
        // `"conn {}->{} tag {} rtt_us {} retx {} lost {}"` formatting
        // (NodeId displays as `n<index>`).
        let mut used = 0;
        // detlint: allow(unordered-iter) ConnTrack::iter walks its sorted index
        for (id, st) in host.conns.iter() {
            if self.line_pool.len() == used {
                self.line_pool.push(String::with_capacity(48));
            }
            let s = &mut self.line_pool[used];
            used += 1;
            s.clear();
            s.push_str("conn n");
            fastfmt::push_u64(s, id.local.0 as u64);
            s.push_str("->n");
            fastfmt::push_u64(s, id.remote.0 as u64);
            s.push_str(" tag ");
            fastfmt::push_u64(s, id.tag as u64);
            s.push_str(" rtt_us ");
            fastfmt::push_u64(s, st.rtt().map_or(0, simcore::SimDur::as_micros));
            s.push_str(" retx ");
            fastfmt::push_u64(s, st.retransmissions());
            s.push_str(" lost ");
            fastfmt::push_u64(s, st.losses());
        }
        // Sorting the pool slice keeps the listing deterministic (the
        // connection table iterates in hash order); buffer ownership just
        // moves within the pool.
        self.line_pool[..used].sort_unstable();
        detail.reserve(28 + used * 48);
        detail.push_str("avail_bps ");
        fastfmt::push_f64_fixed(detail, avail, 0);
        detail.push_str(" used_bps ");
        fastfmt::push_f64_fixed(detail, total, 0);
        detail.push('\n');
        for (i, line) in self.line_pool[..used].iter().enumerate() {
            if i > 0 {
                detail.push('\n');
            }
            detail.push_str(line);
        }
        avail
    }
}

/// PMC: cumulative cache-miss counter.
#[derive(Debug, Default)]
pub struct PmcMon;

impl MonitorModule for PmcMon {
    fn file_name(&self) -> &'static str {
        "pmc"
    }
    fn metric_name(&self) -> &'static str {
        "CACHE_MISS"
    }
    fn collect(&mut self, host: &mut Host, _now: SimTime, detail: &mut String) -> f64 {
        let misses = host.pmc.read(PmcEvent::CacheMisses);
        // Equivalent to
        // `"cache_misses {} instructions {} cycles {}"` via `format!`.
        detail.push_str("cache_misses ");
        fastfmt::push_u64(detail, misses);
        detail.push_str(" instructions ");
        fastfmt::push_u64(detail, host.pmc.read(PmcEvent::Instructions));
        detail.push_str(" cycles ");
        fastfmt::push_u64(detail, host.pmc.read(PmcEvent::Cycles));
        misses as f64
    }
}

/// POWER MON: remaining battery fraction — the paper's example of a
/// monitoring capability "available in the remote kernel but not directly
/// supported in dproc", deployable at run time on mobile hosts
/// ([`crate::DMon::register_module`]). Reports 1.0 on mains-powered hosts.
#[derive(Debug, Default)]
pub struct PowerMon;

impl MonitorModule for PowerMon {
    fn file_name(&self) -> &'static str {
        "power"
    }
    fn metric_name(&self) -> &'static str {
        "BATTERY"
    }
    fn collect(&mut self, host: &mut Host, now: SimTime, detail: &mut String) -> f64 {
        use std::fmt::Write;
        host.advance(now);
        match &host.battery {
            Some(b) => {
                let _ = write!(
                    detail,
                    "battery_fraction {:.4} level_j {:.1} empty {}",
                    b.fraction(),
                    b.level_j(),
                    b.is_empty()
                );
                b.fraction()
            }
            None => {
                detail.push_str("mains_powered");
                1.0
            }
        }
    }
}

impl NetMon {
    /// Test helper: collect and return just the detail text.
    #[doc(hidden)]
    pub fn collect_for_test(&mut self, host: &mut Host, now: SimTime) -> String {
        let mut detail = String::new();
        self.collect(host, now, &mut detail);
        detail
    }
}

/// The paper's full module set, in E-code environment order.
pub fn standard_modules() -> Vec<Box<dyn MonitorModule>> {
    vec![
        Box::new(CpuMon::new()),
        Box::new(MemMon),
        Box::new(DiskMon),
        Box::new(NetMon::default()),
        Box::new(PmcMon),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;
    use simos::host::HostConfig;

    fn host() -> Host {
        Host::new("t", NodeId(0), &HostConfig::testbed())
    }

    /// Collect into a throwaway buffer, returning `(value, detail)`.
    fn collect(m: &mut dyn MonitorModule, h: &mut Host, now: SimTime) -> (f64, String) {
        let mut detail = String::new();
        let value = m.collect(h, now, &mut detail);
        (value, detail)
    }

    #[test]
    fn standard_set_has_five_modules() {
        let mods = standard_modules();
        assert_eq!(mods.len(), 5);
        let names: Vec<&str> = mods.iter().map(|m| m.file_name()).collect();
        assert_eq!(names, vec!["cpu", "mem", "disk", "net", "pmc"]);
        let metrics: Vec<&str> = mods.iter().map(|m| m.metric_name()).collect();
        assert_eq!(
            metrics,
            vec!["LOADAVG", "FREEMEM", "DISKUSAGE", "NET_AVAIL", "CACHE_MISS"]
        );
    }

    #[test]
    fn cpu_mon_windows() {
        let mut h = host();
        let mut m = CpuMon::new();
        let hog = h.cpu.spawn_compute(SimTime::ZERO, "hog");
        // after 60s of 1 runnable task, the 60s window reads 1.0
        let (value, _) = collect(&mut m, &mut h, SimTime::from_secs(60));
        assert!((value - 1.0).abs() < 1e-9, "{value}");
        // a 10s window at t=65 with the task killed at 60 reads 0.5
        h.cpu.kill(SimTime::from_secs(60), hog);
        m.set_window(SimDur::from_secs(10));
        let (value, _) = collect(&mut m, &mut h, SimTime::from_secs(65));
        assert!((value - 0.5).abs() < 1e-9, "{value}");
        // zero window ignored
        m.set_window(SimDur::ZERO);
        let _ = collect(&mut m, &mut h, SimTime::from_secs(65));
    }

    #[test]
    fn mem_mon_tracks_allocations() {
        let mut h = host();
        let mut m = MemMon;
        let (before, _) = collect(&mut m, &mut h, SimTime::ZERO);
        h.mem.alloc("x", 64 * 1024 * 1024);
        let (after, detail) = collect(&mut m, &mut h, SimTime::ZERO);
        assert_eq!(before - after, (64 * 1024 * 1024) as f64);
        assert!(detail.contains("free_pages"));
    }

    #[test]
    fn disk_mon_counts_window_sectors() {
        let mut h = host();
        let mut m = DiskMon;
        h.disk
            .submit(SimTime::ZERO, simos::disk::IoDir::Write, 512 * 20);
        h.disk
            .submit(SimTime::ZERO, simos::disk::IoDir::Read, 512 * 5);
        let (value, _) = collect(&mut m, &mut h, SimTime::from_millis(100));
        assert_eq!(value, 25.0);
        // window slides off
        let (value, _) = collect(&mut m, &mut h, SimTime::from_secs(5));
        assert_eq!(value, 0.0);
    }

    #[test]
    fn net_mon_reports_available_bandwidth_and_connections() {
        let mut h = host();
        let mut m = NetMon::default();
        let id = simnet::ConnId {
            local: NodeId(0),
            remote: NodeId(1),
            proto: simnet::conn::Proto::Tcp,
            tag: 7,
        };
        h.conns.open(id, SimTime::ZERO);
        h.conns
            .record_delivery(id, SimTime::ZERO, 125_000, SimDur::from_millis(2));
        let (value, detail) = collect(&mut m, &mut h, SimTime::from_millis(500));
        // 100 Mbps line rate - 1 Mbps connection throughput.
        assert!((value - 99e6).abs() < 1.0, "{value}");
        assert!(detail.contains("tag 7"));
        assert!(detail.contains("rtt_us 4000"));
        // An Iperf flood visible at the NIC shrinks the estimate.
        h.observed_background_bps = 80e6;
        let (value, _) = collect(&mut m, &mut h, SimTime::from_millis(500));
        assert!((value - 19e6).abs() < 1.0, "{value}");
    }

    #[test]
    fn pmc_mon_is_cumulative() {
        let mut h = host();
        let mut m = PmcMon;
        h.pmc.on_data_moved(3200);
        let (first, _) = collect(&mut m, &mut h, SimTime::ZERO);
        assert_eq!(first, 100.0);
        h.pmc.on_data_moved(3200);
        let (second, _) = collect(&mut m, &mut h, SimTime::ZERO);
        assert_eq!(second, 200.0);
    }
}
