//! Sharded parallel execution of the cluster simulation.
//!
//! This module mirrors every event handler in [`crate::cluster`] onto the
//! [`simcore::pdes`] engine: the cluster's nodes are partitioned
//! round-robin across worker shards, each node's entire kernel-side state
//! (host, d-mon, `/proc` tree, service queue, uplink) lives on its shard,
//! and the few pieces of genuinely global state — the channel directory,
//! the switch-side downlinks, the fault state, the cluster-wide samplers —
//! stay with the coordinator and are only touched through replayed effects
//! ([`PFx`]) in exact serial order.
//!
//! # The mirror contract
//!
//! For bit-identity with the serial run, each handler here must emit its
//! local children and global effects in *exactly* the program order the
//! corresponding `ClusterWorld` handler calls `Sim::schedule_*` and
//! mutates shared state. Every `schedule_*` call in the serial handler is
//! one `out.schedule_*` here (same position); every shared-state mutation
//! is one `out.fx(..)` (same position). The replay then assigns the same
//! sequence numbers and applies the same mutations in the same order, so
//! link reservations, RNG draws, sampler contents, and `/proc` text all
//! come out identical.
//!
//! # Why parallel windows are safe
//!
//! During a parallel window every shard reads the shared state through
//! `&PShared`. [`PCoord::plan`] guarantees no handler will need to mutate
//! it by going serial whenever:
//!
//! * a fault action falls inside the window (`alive`/links/partitions
//!   change),
//! * probabilistic loss or a partition is active (`should_drop` consumes
//!   RNG draws in delivery order),
//! * a revived node has not yet re-registered (its next poll writes the
//!   directory), or
//! * any live failure detector could reach a Dead verdict inside the
//!   window (an eviction writes the directory).
//!
//! Everything else a window can do — polls, module sampling, `/proc`
//! writes, filter runs, deliveries to live nodes, CPU accounting — only
//! touches the executing node's shard state plus read-only shared state.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use simcore::pdes::{
    Coordinator, Emit, Engine, EngineStats, Sched, ShardWorld, SharedView, WindowMode,
};
use simcore::stats::Sampler;
use simcore::{SimDur, SimTime};
use simnet::link::{BytesWindow, DirLink, LinkSpec};
use simnet::traffic::FlowTable;
use simnet::{ConnId, FaultAction, FaultState, Network, NodeId, Placement, SplitNet, TrafficClass};
use simos::cpu::TaskState;
use simos::host::Host;
use simos::workload::Linpack;
use simos::TaskId;

use kecho::{wire, ChannelId, Directory, Event, EventKind, Hop, Topology};

use crate::calib::Calib;
use crate::cluster::{class_of, ClusterEvent, ClusterWorld};
use crate::dmon::DMon;

/// Global effects, applied by the coordinator in exact serial order.
pub(crate) enum PFx {
    /// Downlink half of `Network::send`: reserve the receiver's downlink,
    /// account the bytes, and schedule the delivery on the receiver's
    /// shard. The uplink half already ran on the sender's shard.
    WireSend {
        hop: Hop,
        ev: Event,
        bytes: usize,
        /// Timestamp for the latency sampler (the *original* send time
        /// when a concentrator hub relays).
        sent_at: SimTime,
        /// When this wire transfer was initiated (uplink reservation time).
        send_now: SimTime,
        up_start: SimTime,
        up_finish: SimTime,
        head_at_switch: SimTime,
    },
    /// A monitoring event reached its subscriber.
    MonDelivered { latency_us: f64 },
    /// A control event reached its target.
    CtlDelivered,
    /// A delivery hit a crashed node's NIC.
    CrashDrop,
    /// A failure detector evicted `peer` from its placement's channel set.
    Evict { peer: NodeId },
    /// An evicted node re-registered on its placement's channel set.
    Rejoin { node: NodeId },
    /// Apply the `k`-th action of the fault timeline.
    FaultAction { k: usize },
}

/// One coordinator-side link of a replayed wire path — the hops after the
/// sender's uplink (which runs on the sender's shard).
#[derive(Clone, Copy)]
enum RestLink {
    /// Rack switch → spine (cross-rack only).
    RackUp(usize),
    /// Spine → destination rack switch (cross-rack only).
    SpineDown(usize),
    /// Switch → receiver NIC.
    NodeDown(usize),
}

/// One node's shard-resident state: everything the serial `ClusterWorld`
/// keeps per node, plus the node's uplink (only its own sends touch it).
pub(crate) struct PNode {
    id: NodeId,
    host: Host,
    dmon: DMon,
    linpack: Linpack,
    uplink: DirLink,
    svc_task: TaskId,
    svc_pending: VecDeque<SimDur>,
    svc_busy: bool,
    poll_token: u64,
    event_meter: BytesWindow,
}

/// One worker shard's world: a subset of the nodes.
pub(crate) struct PShard {
    nodes: Vec<PNode>,
    /// Global node id → index in `nodes` (usize::MAX for other shards).
    local: Vec<usize>,
    /// Deltas for the network's lifetime counters; commutative, folded
    /// into the shared totals at reassembly.
    net_deliveries: u64,
    net_payload: u64,
}

/// Coordinator-owned state: the directory, downlinks, fault state, and
/// cluster-wide counters, only written through [`PFx`] replay.
pub(crate) struct PShared {
    spec: LinkSpec,
    downs: Vec<DirLink>,
    /// Node → rack map (all zeros for the star).
    rack_of: Vec<usize>,
    /// Rack-switch → spine links, coordinator-owned like the downlinks:
    /// inter-switch reservations happen in serial replay order.
    switch_ups: Vec<DirLink>,
    switch_downs: Vec<DirLink>,
    switch_spec: LinkSpec,
    net_deliveries: u64,
    net_payload: u64,
    flows: FlowTable,
    flow_meta: std::collections::HashMap<simnet::FlowId, (NodeId, NodeId, f64)>,
    dir: Directory,
    mon_chan: ChannelId,
    ctl_chan: ChannelId,
    /// The resolved topology: which rack each node lives in and who
    /// aggregates it.
    placement: Placement,
    /// Per-rack `(monitoring, control)` channel pairs.
    rack_chans: Vec<(ChannelId, ChannelId)>,
    /// The spine digest channel (hierarchical topologies only).
    digest_chan: Option<ChannelId>,
    calib: Calib,
    mon_latency_us: Sampler,
    mon_delivered: u64,
    ctl_delivered: u64,
    alive: Vec<bool>,
    evicted: Vec<bool>,
    fault: FaultState,
    poll_period: SimDur,
    /// The scheduled fault timeline, indexed by `ClusterEvent::Fault::k`.
    fault_actions: Vec<(SimTime, FaultAction)>,
    /// Node → shard assignment.
    shard_of: Vec<u32>,
}

impl PShared {
    /// Mirror of `ClusterWorld::chans_of`.
    fn chans_of(&self, i: usize) -> (ChannelId, ChannelId) {
        self.rack_chans[self.placement.rack_of(NodeId(i))]
    }

    /// Mirror of `ClusterWorld::subscribe_node`.
    fn subscribe_node(&mut self, node: NodeId) {
        let (mon, ctl) = self.chans_of(node.0);
        self.dir.subscribe(mon, node);
        self.dir.subscribe(ctl, node);
        if let Some(dg) = self.digest_chan {
            if self.placement.is_aggregator(node) {
                self.dir.subscribe(dg, node);
            }
        }
    }

    /// Mirror of `ClusterWorld::unsubscribe_node`.
    fn unsubscribe_node(&mut self, node: NodeId) {
        let (mon, ctl) = self.chans_of(node.0);
        self.dir.unsubscribe(mon, node);
        self.dir.unsubscribe(ctl, node);
        if let Some(dg) = self.digest_chan {
            if self.placement.is_aggregator(node) {
                self.dir.unsubscribe(dg, node);
            }
        }
    }
}

impl PShard {
    /// Mirror of `ClusterWorld::charge_cpu` + `svc_drain` (the immediate
    /// drain a fresh charge triggers on an idle service thread).
    fn charge_cpu(
        &mut self,
        l: usize,
        now: SimTime,
        cost: SimDur,
        out: &mut Emit<'_, ClusterEvent, PFx>,
    ) {
        if cost.is_zero() {
            return;
        }
        self.nodes[l].svc_pending.push_back(cost);
        if !self.nodes[l].svc_busy {
            self.svc_drain(l, now, out);
        }
    }

    /// Mirror of `ClusterWorld::svc_drain`.
    fn svc_drain(&mut self, l: usize, now: SimTime, out: &mut Emit<'_, ClusterEvent, PFx>) {
        let n = &mut self.nodes[l];
        let task = n.svc_task;
        let Some(cost) = n.svc_pending.pop_front() else {
            if n.svc_busy {
                n.svc_busy = false;
                n.host.cpu.set_state(now, task, TaskState::Sleeping);
            }
            return;
        };
        n.host.cpu.advance(now);
        if !n.svc_busy {
            n.svc_busy = true;
            n.host.cpu.set_state(now, task, TaskState::Runnable);
        }
        let wall = SimDur::from_secs_f64(cost.as_secs_f64() / n.host.cpu.share());
        out.schedule_in(wall, ClusterEvent::SvcDone { i: n.id.0 });
    }

    /// Mirror of `ClusterWorld::transmit`. The sender must live on this
    /// shard.
    fn transmit(
        &mut self,
        now: SimTime,
        mut hop: Hop,
        ev: Event,
        bytes: usize,
        out: &mut Emit<'_, ClusterEvent, PFx>,
        sh: &PShared,
    ) {
        if let Topology::Central(hub) = sh.dir.topology() {
            if hop.from != hub && hop.to != hub {
                hop = Hop {
                    from: hop.from,
                    to: hub,
                };
            }
        }
        if !sh.alive[hop.from.0] {
            return;
        }
        let l = self.local[hop.from.0];
        self.nodes[l].event_meter.record(now, 1);
        self.nodes[l].host.on_net_bytes(bytes as u64);
        self.send_message(now, hop, ev, bytes, now, out, sh);
    }

    /// The network half of a send: the uplink math runs here on the
    /// sender's shard (identical arithmetic to `Network::send`); the
    /// downlink half travels as [`PFx::WireSend`] so the coordinator can
    /// reserve the receiver's downlink in exact serial order.
    #[allow(clippy::too_many_arguments)]
    fn send_message(
        &mut self,
        now: SimTime,
        hop: Hop,
        ev: Event,
        bytes: usize,
        sent_at: SimTime,
        out: &mut Emit<'_, ClusterEvent, PFx>,
        sh: &PShared,
    ) {
        self.net_deliveries += 1;
        self.net_payload += bytes as u64;
        if hop.from == hop.to {
            // In-kernel loopback, same constant as `Network::send`.
            let copy = SimDur::from_nanos(200 + (bytes as u64) / 10);
            out.schedule_at(
                now + copy,
                ClusterEvent::Deliver {
                    hop,
                    ev,
                    bytes,
                    sent_at,
                    queued: SimDur::ZERO,
                },
            );
            return;
        }
        let class = class_of(&ev);
        let wire_len = sh.spec.wire_bytes(bytes) as u64;
        let first_pkt = bytes.min(sh.spec.mtu_payload);
        let from_local = self.local[hop.from.0];
        let up = &mut self.nodes[from_local].uplink;
        if class == TrafficClass::Bulk && !up.admit(now, wire_len) {
            // Uplink tail-drop: the counters above already ran (serial
            // bumps them unconditionally at the top of `send_class`), but
            // no wire effect is emitted — the message never leaves. The
            // sender's d-mon lives on this shard, so the choke mirrors
            // serial `transmit` exactly.
            if ev.kind == EventKind::Monitoring && hop.from == ev.sender {
                if let Some(sub) = ev.target {
                    self.nodes[from_local].dmon.on_wire_drop(sub);
                }
            }
            return;
        }
        let t_up = up.tx_time_now(bytes);
        let t_up_first = up.tx_time_now(first_pkt);
        let (up_start, up_finish) = match class {
            TrafficClass::Bulk => up.reserve(now, t_up),
            TrafficClass::Priority => (now, now + t_up),
        };
        up.account(now, bytes);
        if class == TrafficClass::Bulk {
            up.occupy(up_finish, wire_len);
        }
        let head_at_switch = up_start + t_up_first + sh.spec.latency;
        out.fx(PFx::WireSend {
            hop,
            ev,
            bytes,
            sent_at,
            send_now: now,
            up_start,
            up_finish,
            head_at_switch,
        });
    }

    /// Mirror of `ClusterWorld::deliver`. The receiver lives on this shard.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        now: SimTime,
        hop: Hop,
        ev: Event,
        bytes: usize,
        sent_at: SimTime,
        queued: SimDur,
        out: &mut Emit<'_, ClusterEvent, PFx>,
        shared: &mut SharedView<'_, PShared>,
    ) {
        let to = hop.to;
        if !shared.get().alive[to.0] {
            out.fx(PFx::CrashDrop);
            return;
        }
        if let Some(sh) = shared.get_mut() {
            // Serial window: the drop check may consume RNG draws and bump
            // counters — run it in exact delivery order, like the serial
            // driver does.
            if sh.fault.should_drop(hop.from, to).is_some() {
                return;
            }
        } else {
            // Parallel window: the planner guarantees a quiet fault state,
            // under which `should_drop` is pure and returns None.
            debug_assert!(
                shared.get().fault.loss_prob() == 0.0 && shared.get().fault.partitions().is_empty(),
                "parallel window with active loss/partition"
            );
        }
        let sh = shared.get();
        let one_way = now.since(sent_at);
        let l = self.local[to.0];
        self.nodes[l].event_meter.record(now, 1);
        self.nodes[l].host.on_net_bytes(bytes as u64);

        // Central-concentrator transit relay (addressed event passing
        // through the hub).
        if let Topology::Central(hub) = sh.dir.topology() {
            if to == hub {
                if let Some(target) = ev.target {
                    if target != hub {
                        let relay_cost = sh.calib.receive_cost(bytes)
                            + sh.calib.submit_cost(bytes)
                            + sh.calib.kernel_path_recv
                            + sh.calib.kernel_path_send;
                        self.charge_cpu(l, now, relay_cost, out);
                        self.nodes[l].event_meter.record(now, 1);
                        let relay_hop = Hop {
                            from: hub,
                            to: target,
                        };
                        // Keeps the original `sent_at` so the sampler sees
                        // true end-to-end latency.
                        self.send_message(now, relay_hop, ev, bytes, sent_at, out, sh);
                        return;
                    }
                }
            }
        }

        let conn = ConnId {
            local: to,
            remote: ev.sender,
            proto: simnet::conn::Proto::Tcp,
            tag: ev.channel,
        };
        {
            let host = &mut self.nodes[l].host;
            host.conns.open(conn, now);
            host.conns.record_delivery(conn, now, bytes as u64, one_way);
            if queued > sh.calib.rto {
                host.conns.record_retransmission(conn);
            }
        }

        match ev.kind {
            EventKind::Monitoring => {
                out.fx(PFx::MonDelivered {
                    latency_us: one_way.as_micros_f64(),
                });
                let handler = {
                    let n = &mut self.nodes[l];
                    n.dmon.on_event(&mut n.host, &ev, bytes, now, &sh.calib)
                };
                self.charge_cpu(l, now, handler + sh.calib.kernel_path_recv, out);

                if let Topology::Central(hub) = sh.dir.topology() {
                    if to == hub {
                        if let Some(origin) = ev.as_monitoring().map(|m| m.origin) {
                            if origin != hub {
                                let chan = ChannelId(ev.channel);
                                let hops = sh.dir.plan_forward(chan, origin);
                                for fwd in hops {
                                    let relay_cost =
                                        sh.calib.submit_cost(bytes) + sh.calib.kernel_path_send;
                                    self.charge_cpu(l, now, relay_cost, out);
                                    self.transmit(now, fwd, ev.clone(), bytes, out, sh);
                                }
                            }
                        }
                    }
                }
                ev.recycle();
            }
            EventKind::Heartbeat => {
                let handler = self.nodes[l].dmon.on_heartbeat(&ev, now, &sh.calib);
                self.charge_cpu(l, now, handler + sh.calib.heartbeat_path_recv, out);
            }
            EventKind::Digest => {
                let handler = {
                    let n = &mut self.nodes[l];
                    n.dmon.on_digest(&mut n.host, &ev, bytes, now, &sh.calib)
                };
                self.charge_cpu(l, now, handler + sh.calib.kernel_path_recv, out);
            }
            EventKind::Control => {
                out.fx(PFx::CtlDelivered);
                if let Some(msg) = ev.as_control() {
                    let outcome = self.nodes[l].dmon.on_control(ev.sender, msg, &sh.calib);
                    self.charge_cpu(l, now, outcome.cpu + sh.calib.kernel_path_recv, out);
                    if let Some(reply) = outcome.reply {
                        let rev =
                            self.nodes[l]
                                .dmon
                                .make_control_event(sh.ctl_chan, ev.sender, reply);
                        let rbytes = wire::encoded_size(&rev);
                        let send_cost = sh.calib.submit_cost(rbytes) + sh.calib.kernel_path_send;
                        self.charge_cpu(l, now, send_cost, out);
                        let rhop = Hop {
                            from: to,
                            to: ev.sender,
                        };
                        self.transmit(now, rhop, rev, rbytes, out, sh);
                    }
                }
            }
        }
    }

    /// Mirror of the poll closure in `ClusterWorld::arm_poll` +
    /// `poll_node`: token check, poll, then the periodic re-arm (the
    /// serial `schedule_periodic` wrapper re-arms *after* the handler).
    fn poll(
        &mut self,
        i: usize,
        token: u64,
        now: SimTime,
        out: &mut Emit<'_, ClusterEvent, PFx>,
        shared: &SharedView<'_, PShared>,
    ) {
        let l = self.local[i];
        if self.nodes[l].poll_token != token {
            return;
        }
        let sh = shared.get();
        if sh.alive[i] {
            let (mon, ctl) = sh.chans_of(i);
            let mut outcome = {
                let n = &mut self.nodes[l];
                n.dmon.poll(&mut n.host, &sh.dir, mon, ctl, now, &sh.calib)
            };
            self.charge_cpu(l, now, outcome.cpu_cost, out);
            for (hop, ev, bytes) in outcome.sends.drain(..) {
                self.transmit(now, hop, ev, bytes, out, sh);
            }
            self.nodes[l].dmon.recycle_sends(outcome.sends);
            for &peer in &outcome.dead_peers {
                out.fx(PFx::Evict { peer });
            }
            if outcome.rejoin && sh.evicted[i] {
                // The re-subscription is deferred to replay; the only
                // later directory read in this handler excludes the
                // polling node anyway (a digest never targets its sender).
                out.fx(PFx::Rejoin { node: NodeId(i) });
            }
            // Aggregation tier, mirroring the serial digest block. The
            // serial engine evicted `dead_peers` from the directory just
            // above; here that write is still pending replay, so the
            // skip list hides them from the subscriber iteration.
            if let Some(dg) = sh.digest_chan {
                let node = NodeId(i);
                if sh.placement.is_aggregator(node) {
                    let rack = sh.placement.rack_of(node);
                    let members = sh.placement.rack(rack).range();
                    let planned = self.nodes[l].dmon.poll_digest(
                        &sh.dir,
                        dg,
                        rack as u32,
                        members,
                        &outcome.dead_peers,
                        &sh.calib,
                    );
                    if let Some((sends, cpu)) = planned {
                        self.charge_cpu(l, now, cpu, out);
                        for (hop, ev, bytes) in sends {
                            self.transmit(now, hop, ev, bytes, out, sh);
                        }
                    }
                }
            }
        }
        out.schedule_at(now + sh.poll_period, ClusterEvent::Poll { i, token });
    }
}

impl ShardWorld for PShard {
    type Ev = ClusterEvent;
    type Fx = PFx;
    type Shared = PShared;

    // detlint: shard-entry
    fn execute(
        &mut self,
        now: SimTime,
        ev: ClusterEvent,
        out: &mut Emit<'_, ClusterEvent, PFx>,
        shared: &mut SharedView<'_, PShared>,
    ) {
        match ev {
            ClusterEvent::Poll { i, token } => self.poll(i, token, now, out, shared),
            ClusterEvent::SvcDone { i } => {
                let l = self.local[i];
                self.svc_drain(l, now, out);
            }
            ClusterEvent::Deliver {
                hop,
                ev,
                bytes,
                sent_at,
                queued,
            } => self.deliver(now, hop, ev, bytes, sent_at, queued, out, shared),
            ClusterEvent::Fault { k } => out.fx(PFx::FaultAction { k }),
        }
    }
}

/// The coordinator: hazard planning + effect application.
pub(crate) struct PCoord {
    /// `(time, index)` of fault actions not yet applied, for the
    /// imminent-fault hazard check.
    fault_pending: BTreeSet<(SimTime, usize)>,
}

impl PCoord {
    fn new() -> Self {
        PCoord {
            fault_pending: BTreeSet::new(),
        }
    }
}

impl Coordinator<PShard> for PCoord {
    fn plan(
        &mut self,
        shared: &PShared,
        worlds: &[&PShard],
        _t0: SimTime,
        bound: SimTime,
    ) -> WindowMode {
        // H-fault: a fault action inside the window flips alive bits,
        // partitions, loss, or link capacities mid-window.
        if let Some(&(t, _)) = self.fault_pending.first() {
            if t <= bound {
                return WindowMode::Serial;
            }
        }
        // H-loss: active loss consumes RNG draws in delivery order; an
        // active partition bumps drop counters in delivery order.
        if shared.fault.loss_prob() > 0.0 || !shared.fault.partitions().is_empty() {
            return WindowMode::Serial;
        }
        // H-rejoin: a revived-but-unregistered node's next poll writes
        // the directory.
        if shared
            .alive
            .iter()
            .zip(&shared.evicted)
            .any(|(&a, &e)| a && e)
        {
            return WindowMode::Serial;
        }
        // H-evict: a live failure detector could reach a Dead verdict (a
        // directory eviction) at a poll inside the window. `last_heard`
        // only moves later during a window, so this is conservative.
        for w in worlds {
            for n in &w.nodes {
                if shared.alive[n.id.0] {
                    if let Some(d) = n.dmon.next_dead_deadline() {
                        if d <= bound {
                            return WindowMode::Serial;
                        }
                    }
                }
            }
        }
        WindowMode::Parallel
    }

    // detlint: replay-only
    fn apply(
        &mut self,
        now: SimTime,
        fx: PFx,
        shared: &mut PShared,
        worlds: &mut [&mut PShard],
        sched: &mut Sched<'_, '_, ClusterEvent>,
    ) {
        match fx {
            PFx::WireSend {
                hop,
                ev,
                bytes,
                sent_at,
                send_now,
                up_start,
                up_finish,
                head_at_switch,
            } => {
                // The remaining hops of `Network::send_class`, identical
                // per-link arithmetic. The sender's uplink already ran on
                // its shard; WireSend replays in exact serial order, so
                // every coordinator-owned queue (admit/occupy) evolves
                // identically. Intra-rack (and star) paths have one hop
                // left — the receiver's downlink; cross-rack paths thread
                // rack uplink → spine downlink → receiver downlink first.
                let class = class_of(&ev);
                let wire_len = shared.spec.wire_bytes(bytes) as u64;
                let first_pkt = bytes.min(shared.spec.mtu_payload);
                let (r_from, r_to) = (shared.rack_of[hop.from.0], shared.rack_of[hop.to.0]);
                let node_lat = shared.spec.latency;
                let sw_lat = shared.switch_spec.latency;
                let mut rest = [(RestLink::NodeDown(hop.to.0), node_lat); 3];
                let hops = if r_from == r_to {
                    1
                } else {
                    rest[0] = (RestLink::RackUp(r_from), sw_lat);
                    rest[1] = (RestLink::SpineDown(r_to), sw_lat);
                    rest[2] = (RestLink::NodeDown(hop.to.0), node_lat);
                    3
                };
                // Seed the loop with the state after the uplink hop: the
                // serial loop left `head = up_start + t_first + latency`
                // (== `head_at_switch`) and `tail = up_finish + latency`.
                let mut queued = up_start - send_now;
                let mut head = head_at_switch;
                let mut tail = up_finish + node_lat;
                for &(sel, latency) in &rest[..hops] {
                    let link = match sel {
                        RestLink::RackUp(r) => &mut shared.switch_ups[r],
                        RestLink::SpineDown(r) => &mut shared.switch_downs[r],
                        RestLink::NodeDown(i) => &mut shared.downs[i],
                    };
                    if class == TrafficClass::Bulk && !link.admit(send_now, wire_len) {
                        // Tail-drop past the uplink: earlier hops already
                        // reserved (as in serial); nothing arrives.
                        return;
                    }
                    let t_all = link.tx_time_now(bytes);
                    let t_first = link.tx_time_now(first_pkt);
                    let tail_constraint = tail + t_first;
                    let (start, finish) = match class {
                        TrafficClass::Bulk => {
                            let (start, finish0) = link.reserve(head, t_all);
                            let finish = finish0.max(tail_constraint);
                            link.extend_busy(finish);
                            (start, finish)
                        }
                        TrafficClass::Priority => (head, (head + t_all).max(tail_constraint)),
                    };
                    link.account(send_now, bytes);
                    if class == TrafficClass::Bulk {
                        link.occupy(finish, wire_len);
                    }
                    queued += start - head;
                    head = start + t_first + latency;
                    tail = finish + latency;
                }
                let deliver_at = tail;
                sched.schedule(
                    shared.shard_of[hop.to.0] as usize,
                    deliver_at,
                    ClusterEvent::Deliver {
                        hop,
                        ev,
                        bytes,
                        sent_at,
                        queued,
                    },
                );
            }
            PFx::MonDelivered { latency_us } => {
                shared.mon_delivered += 1;
                shared.mon_latency_us.add(latency_us);
            }
            PFx::CtlDelivered => shared.ctl_delivered += 1,
            PFx::CrashDrop => shared.fault.note_crash_drop(),
            PFx::Evict { peer } => {
                shared.unsubscribe_node(peer);
                shared.evicted[peer.0] = true;
            }
            PFx::Rejoin { node } => {
                shared.subscribe_node(node);
                shared.evicted[node.0] = false;
                notify_rejoin(worlds, &shared.alive, node, now);
            }
            PFx::FaultAction { k } => {
                let (t, action) = shared.fault_actions[k].clone();
                self.fault_pending.remove(&(t, k));
                match action {
                    FaultAction::Crash(node) => {
                        // Mirror of `ClusterWorld::kill_node`.
                        if !shared.alive[node.0] {
                            return;
                        }
                        shared.alive[node.0] = false;
                        let n = node_mut(worlds, &shared.shard_of, node);
                        n.poll_token += 1;
                        n.svc_pending.clear();
                    }
                    FaultAction::Revive(node) => {
                        // Mirror of `ClusterWorld::revive_node`.
                        if shared.alive[node.0] {
                            return;
                        }
                        shared.alive[node.0] = true;
                        {
                            let n = node_mut(worlds, &shared.shard_of, node);
                            let _ = n.host.proc.drain_writes();
                            n.dmon.on_revive();
                        }
                        shared.subscribe_node(node);
                        shared.evicted[node.0] = false;
                        notify_rejoin(worlds, &shared.alive, node, now);
                        let token = {
                            let n = node_mut(worlds, &shared.shard_of, node);
                            n.poll_token += 1;
                            n.poll_token
                        };
                        sched.schedule(
                            shared.shard_of[node.0] as usize,
                            now + shared.poll_period,
                            ClusterEvent::Poll { i: node.0, token },
                        );
                    }
                    ref other => {
                        // Network-level faults; for Degrade/HealLink the
                        // node's uplink lives on its shard, the downlink
                        // here.
                        let links = match *other {
                            FaultAction::Degrade(node, _) | FaultAction::HealLink(node) => {
                                let up = &mut node_mut(worlds, &shared.shard_of, node).uplink;
                                Some((up, &mut shared.downs[node.0]))
                            }
                            _ => None,
                        };
                        shared.fault.apply_links(other, links);
                    }
                }
            }
        }
    }
}

/// Mirror of `ClusterWorld::notify_rejoin` across the shard worlds.
fn notify_rejoin(worlds: &mut [&mut PShard], alive: &[bool], node: NodeId, now: SimTime) {
    for w in worlds.iter_mut() {
        for n in &mut w.nodes {
            if n.id != node && alive[n.id.0] {
                n.dmon.on_peer_rejoin(node, now);
            }
        }
    }
}

fn node_mut<'a>(worlds: &'a mut [&mut PShard], shard_of: &[u32], node: NodeId) -> &'a mut PNode {
    let w = &mut worlds[shard_of[node.0] as usize];
    let l = w.local[node.0];
    &mut w.nodes[l]
}

/// Tear a `ClusterWorld` into shard worlds + coordinator state.
fn decompose(
    world: ClusterWorld,
    shards: usize,
    shard_of: &[u32],
    fault_actions: Vec<(SimTime, FaultAction)>,
) -> (Vec<PShard>, PShared) {
    let ClusterWorld {
        net,
        flows,
        hosts,
        dmons,
        linpacks,
        dir,
        mon_chan,
        ctl_chan,
        placement,
        rack_chans,
        digest_chan,
        calib,
        mon_latency_us,
        mon_delivered,
        ctl_delivered,
        svc_tasks,
        svc_pending,
        svc_busy,
        alive,
        fault,
        poll_token,
        evicted,
        poll_period,
        event_meter,
        flow_meta,
    } = world;
    let n = hosts.len();
    let SplitNet {
        spec,
        ups,
        downs,
        rack_of,
        switch_ups,
        switch_downs,
        switch_spec,
        deliveries,
        payload_bytes,
    } = net.split_links();

    let mut out: Vec<PShard> = (0..shards)
        .map(|_| PShard {
            nodes: Vec::new(),
            local: vec![usize::MAX; n],
            net_deliveries: 0,
            net_payload: 0,
        })
        .collect();
    let mut hosts = hosts.into_iter();
    let mut dmons = dmons.into_iter();
    let mut linpacks = linpacks.into_iter();
    let mut ups = ups.into_iter();
    let mut svc_tasks = svc_tasks.into_iter();
    let mut svc_pending = svc_pending.into_iter();
    let mut svc_busy = svc_busy.into_iter();
    let mut poll_token = poll_token.into_iter();
    let mut event_meter = event_meter.into_iter();
    for (i, &s) in shard_of.iter().enumerate().take(n) {
        let shard = &mut out[s as usize];
        shard.local[i] = shard.nodes.len();
        shard.nodes.push(PNode {
            id: NodeId(i),
            host: hosts.next().expect("host"),
            dmon: dmons.next().expect("dmon"),
            linpack: linpacks.next().expect("linpack"),
            uplink: ups.next().expect("uplink"),
            svc_task: svc_tasks.next().expect("svc task"),
            svc_pending: svc_pending.next().expect("svc queue"),
            svc_busy: svc_busy.next().expect("svc busy"),
            poll_token: poll_token.next().expect("poll token"),
            event_meter: event_meter.next().expect("event meter"),
        });
    }

    let shared = PShared {
        spec,
        downs,
        rack_of,
        switch_ups,
        switch_downs,
        switch_spec,
        net_deliveries: deliveries,
        net_payload: payload_bytes,
        flows,
        flow_meta,
        dir,
        mon_chan,
        ctl_chan,
        placement,
        rack_chans,
        digest_chan,
        calib,
        mon_latency_us,
        mon_delivered,
        ctl_delivered,
        alive,
        evicted,
        fault,
        poll_period,
        fault_actions,
        shard_of: shard_of.to_vec(),
    };
    (out, shared)
}

/// Reassemble the `ClusterWorld` (inverse of [`decompose`]).
fn reassemble(shards: Vec<PShard>, shared: PShared) -> ClusterWorld {
    let n = shared.alive.len();
    let mut hosts: Vec<Option<Host>> = (0..n).map(|_| None).collect();
    let mut dmons: Vec<Option<DMon>> = (0..n).map(|_| None).collect();
    let mut linpacks: Vec<Option<Linpack>> = (0..n).map(|_| None).collect();
    let mut ups: Vec<Option<DirLink>> = (0..n).map(|_| None).collect();
    let mut svc_tasks: Vec<TaskId> = Vec::new();
    let mut svc_task_slots: Vec<Option<TaskId>> = (0..n).map(|_| None).collect();
    let mut svc_pending: Vec<Option<VecDeque<SimDur>>> = (0..n).map(|_| None).collect();
    let mut svc_busy = vec![false; n];
    let mut poll_token = vec![0u64; n];
    let mut event_meter: Vec<Option<BytesWindow>> = (0..n).map(|_| None).collect();
    let mut net_deliveries = shared.net_deliveries;
    let mut net_payload = shared.net_payload;
    for shard in shards {
        net_deliveries += shard.net_deliveries;
        net_payload += shard.net_payload;
        for node in shard.nodes {
            let i = node.id.0;
            hosts[i] = Some(node.host);
            dmons[i] = Some(node.dmon);
            linpacks[i] = Some(node.linpack);
            ups[i] = Some(node.uplink);
            svc_task_slots[i] = Some(node.svc_task);
            svc_pending[i] = Some(node.svc_pending);
            svc_busy[i] = node.svc_busy;
            poll_token[i] = node.poll_token;
            event_meter[i] = Some(node.event_meter);
        }
    }
    svc_tasks.extend(svc_task_slots.into_iter().map(|t| t.expect("svc task")));
    let net = Network::from_split(SplitNet {
        spec: shared.spec,
        ups: ups.into_iter().map(|u| u.expect("uplink")).collect(),
        downs: shared.downs,
        rack_of: shared.rack_of,
        switch_ups: shared.switch_ups,
        switch_downs: shared.switch_downs,
        switch_spec: shared.switch_spec,
        deliveries: net_deliveries,
        payload_bytes: net_payload,
    });
    ClusterWorld {
        net,
        flows: shared.flows,
        hosts: hosts.into_iter().map(|h| h.expect("host")).collect(),
        dmons: dmons.into_iter().map(|d| d.expect("dmon")).collect(),
        linpacks: linpacks.into_iter().map(|l| l.expect("linpack")).collect(),
        dir: shared.dir,
        mon_chan: shared.mon_chan,
        ctl_chan: shared.ctl_chan,
        placement: shared.placement,
        rack_chans: shared.rack_chans,
        digest_chan: shared.digest_chan,
        calib: shared.calib,
        mon_latency_us: shared.mon_latency_us,
        mon_delivered: shared.mon_delivered,
        ctl_delivered: shared.ctl_delivered,
        svc_tasks,
        svc_pending: svc_pending
            .into_iter()
            .map(|q| q.expect("svc queue"))
            .collect(),
        svc_busy,
        alive: shared.alive,
        fault: shared.fault,
        poll_token,
        evicted: shared.evicted,
        poll_period: shared.poll_period,
        event_meter: event_meter
            .into_iter()
            .map(|m| m.expect("event meter"))
            .collect(),
        flow_meta: shared.flow_meta,
    }
}

/// The parallel driver owned by `ClusterSim` when `threads > 1`: the pdes
/// engine plus the node→shard map and the coordinator.
pub(crate) struct ParallelDriver {
    engine: Engine<PShard>,
    coord: PCoord,
    shard_of: Vec<u32>,
    fault_actions: Vec<(SimTime, FaultAction)>,
}

impl ParallelDriver {
    /// Build a driver for the placement's nodes over `threads` shards
    /// (clamped to the node count), with the network's link lookahead.
    /// Star placements partition round-robin; hierarchical placements
    /// assign whole racks to shards, so rack-local pub-sub traffic stays
    /// shard-local and only spine digests cross shard boundaries.
    pub(crate) fn new(placement: &Placement, threads: usize, lookahead: SimDur) -> Self {
        let n_nodes = placement.len();
        let shards = threads.min(n_nodes).max(1);
        let shard_of = if placement.is_star() {
            (0..n_nodes).map(|i| (i % shards) as u32).collect()
        } else {
            (0..n_nodes)
                .map(|i| (placement.rack_of(NodeId(i)) % shards) as u32)
                .collect()
        };
        ParallelDriver {
            engine: Engine::new(shards, lookahead),
            coord: PCoord::new(),
            shard_of,
            fault_actions: Vec::new(),
        }
    }

    /// Number of shards.
    pub(crate) fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Current engine time.
    pub(crate) fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Engine counters (windows, executed events).
    pub(crate) fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Seed one node's poll series (mirrors the serial `start()` loop —
    /// one sequence number per node, in node order).
    pub(crate) fn schedule_poll(&mut self, i: usize, token: u64, at: SimTime) {
        self.engine.schedule(
            self.shard_of[i] as usize,
            at,
            ClusterEvent::Poll { i, token },
        );
    }

    /// Append a fault timeline (mirrors `apply_fault_plan` — one sequence
    /// number per action, in plan order).
    pub(crate) fn schedule_fault_plan(&mut self, actions: Vec<(SimTime, FaultAction)>) {
        for (t, action) in actions {
            let k = self.fault_actions.len();
            self.fault_actions.push((t, action));
            self.coord.fault_pending.insert((t, k));
            self.engine.schedule(0, t, ClusterEvent::Fault { k });
        }
    }

    /// Run the cluster to `until` on the worker shards and hand the
    /// reassembled world back.
    pub(crate) fn run_until(&mut self, world: ClusterWorld, until: SimTime) -> ClusterWorld {
        let (worlds, mut shared) = decompose(
            world,
            self.engine.shards(),
            &self.shard_of,
            self.fault_actions.clone(),
        );
        let worlds = self
            .engine
            .run_until(worlds, &mut shared, &mut self.coord, until);
        reassemble(worlds, shared)
    }
}
