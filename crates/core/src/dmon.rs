//! d-mon: the distributed-monitor kernel module.
//!
//! One d-mon runs per node (Figure 2). Every polling period it retrieves
//! samples from the registered monitoring modules via their callbacks,
//! decides per subscriber — by parameter rules or a deployed E-code
//! filter — which metrics to ship, and submits events on the monitoring
//! channel. Incoming monitoring events populate the local
//! `/proc/cluster/<node>/...` tree; incoming control events reconfigure
//! the stream the sending subscriber receives (parameters, dynamic filter
//! compilation and deployment).
//!
//! d-mon itself is pure: [`DMon::poll`] returns the planned events plus
//! the CPU cost to charge; the cluster glue executes sends and schedules
//! deliveries.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use ecode::{
    compile_filter, CompiledFilter, EnvSpec, Filter, FilterOutput, MemoClass, MetricRecord,
    MetricSet, RuntimeError,
};
use kecho::{
    ChannelId, ControlMsg, CreditWindow, DigestPayload, DigestRecord, Directory, Event,
    HeartbeatPayload, Hop, MonRecord, MonitoringPayload, Observation, ParamSpec, StreamTracker,
    GRANT_THRESHOLD, OUTBOX_CAP,
};
use simcore::fastfmt;
use simcore::stats::Sampler;
use simcore::{SimDur, SimTime};
use simnet::NodeId;
use simos::{Host, ProcHandle};

use crate::calib::Calib;
use crate::control::parse_control;
use crate::modules::MonitorModule;
use crate::params::{PolicySet, Rule, RuleCtx};

/// Counters and samplers a d-mon keeps about itself — the numbers behind
/// Figures 6–8.
#[derive(Debug, Default)]
pub struct DmonStats {
    /// Completed polling iterations.
    pub iterations: u64,
    /// Monitoring events submitted.
    pub events_sent: u64,
    /// Monitoring payload bytes submitted.
    pub bytes_sent: u64,
    /// Monitoring events received.
    pub events_received: u64,
    /// Monitoring payload bytes received.
    pub bytes_received: u64,
    /// Control messages handled.
    pub control_handled: u64,
    /// Filter deployments that failed to compile.
    pub filter_errors: u64,
    /// Filter deployments that compiled but were refused by the static
    /// verifier (unbounded or over-budget worst-case cost).
    pub filters_rejected: u64,
    /// Admitted deployments the register compiler specialized into a
    /// closure (the stack-VM interpreter stays available as the
    /// differential oracle).
    pub filters_compiled: u64,
    /// Admitted deployments that stayed on the stack-VM interpreter
    /// because the register lowering declined the chunk.
    pub interp_fallbacks: u64,
    /// Module samplings skipped because no subscriber's stream could
    /// consume the metric (read-set-driven sampling).
    pub modules_skipped: u64,
    /// Filter evaluations that bypassed the shared memo because the
    /// effect pass could not prove the filter memo-safe (it reads or
    /// writes per-subscriber `last_value_sent` state), so it ran once
    /// per subscriber.
    pub memo_bypassed: u64,
    /// Malformed control-file writes.
    pub control_errors: u64,
    /// Heartbeats submitted (to subscribers whose stream had no data).
    pub heartbeats_sent: u64,
    /// Heartbeats received.
    pub heartbeats_received: u64,
    /// Sequence numbers proven lost across all incoming streams.
    pub gaps_detected: u64,
    /// Failure-detector checks that found a peer silent past its expected
    /// cadence (ticks once per poll per overdue peer).
    pub heartbeats_missed: u64,
    /// Fresh → Stale transitions observed by the failure detector.
    pub nodes_suspected: u64,
    /// Stale → Dead transitions (the peer is then evicted from the
    /// registry by the glue).
    pub nodes_evicted: u64,
    /// Recoveries: a Dead peer spoke again, or a publisher restarted with
    /// a new epoch; counted when this node replays its customizations.
    pub resyncs: u64,
    /// Monitoring events shed (oldest-first) from a stalled subscriber's
    /// bounded outbox, plus events discarded when their subscriber was
    /// evicted as Dead. Shed events never consumed a `stream_seq`, so they
    /// create no gap on the subscriber side — the counter here is the only
    /// record of them.
    pub events_shed: u64,
    /// Polls during which at least one event stayed parked because a
    /// subscriber's credit window was empty (one tick per stalled
    /// subscriber per poll).
    pub credits_stalled: u64,
    /// Degradation-ladder level changes, in either direction.
    pub ladder_transitions: u64,
    /// Rack digests submitted (aggregators only).
    pub digests_sent: u64,
    /// Rack digests received on the spine digest channel.
    pub digests_received: u64,
    /// Per-metric summary records carried by those digests (a digest
    /// folds one record per metric that had at least one sample). Pure
    /// sim output — the bench exact-gates it to pin the aggregation
    /// tier's payload shape.
    pub digest_records: u64,
    /// Digest freshness at arrival: seconds between the newest sample a
    /// digest folded and the moment it landed here. The hierarchy's
    /// staleness cost — what the aggregation tier trades for rack-local
    /// monitoring traffic.
    pub digest_staleness_s: Sampler,
    /// Per-iteration event-submission CPU cost in microseconds (what the
    /// paper measures with rdtsc for Figs. 6–7).
    pub submit_cost_us: Sampler,
    /// Per-iteration event-receiving CPU cost in microseconds (Fig. 8).
    pub receive_cost_us: Sampler,
    /// Receive cost accumulated since the last poll closed the iteration.
    pending_receive: SimDur,
    /// Submit cost accumulated within the current iteration.
    pending_submit: SimDur,
}

/// What one polling iteration wants the glue to do.
#[derive(Debug)]
pub struct PollOutcome {
    /// Events to transmit: `(hop, event, payload_bytes)`.
    pub sends: Vec<(Hop, Event, usize)>,
    /// Total CPU time to charge to this host for the iteration (module
    /// collection + policy/filter evaluation + submission handlers +
    /// kernel network path).
    pub cpu_cost: SimDur,
    /// Peers the failure detector newly declared Dead this iteration. The
    /// glue evicts them from the shared registry so every publisher stops
    /// sampling/filtering/transmitting for them.
    pub dead_peers: Vec<NodeId>,
    /// This node found itself missing from the monitoring channel (a peer
    /// evicted it while it was unreachable). The glue re-registers it —
    /// the paper's registry re-bootstrap.
    pub rejoin: bool,
}

/// What handling one control message wants the glue to do.
#[derive(Debug)]
pub struct ControlOutcome {
    /// CPU cost of the handler (compilation is expensive; parameter
    /// updates are cheap).
    pub cpu: SimDur,
    /// A message to send back to the originator — e.g.
    /// [`ControlMsg::FilterRejected`] when a deployment fails the static
    /// verifier.
    pub reply: Option<ControlMsg>,
}

impl ControlOutcome {
    fn cost(cpu: SimDur) -> Self {
        ControlOutcome { cpu, reply: None }
    }
}

/// Health of a remote peer as judged by the local failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Heard from within the staleness bound.
    Fresh,
    /// Silent past the staleness bound — its `/proc/cluster` view may no
    /// longer reflect reality.
    Stale,
    /// Silent past the death bound — treated as crashed and evicted from
    /// the registry until it speaks again.
    Dead,
}

impl PeerHealth {
    fn label(self) -> &'static str {
        match self {
            PeerHealth::Fresh => "fresh",
            PeerHealth::Stale => "stale",
            PeerHealth::Dead => "dead",
        }
    }
}

/// What the failure detector remembers about one remote peer.
#[derive(Debug, Clone, Copy)]
struct PeerRecord {
    last_heard: SimTime,
    health: PeerHealth,
    epoch: u32,
}

/// One memoized filter evaluation within the current poll, keyed by the
/// dense filter id assigned at admission (identical sources share an
/// id, distinct sources never do — so a hit is a u32 compare, with no
/// hashing on the poll path). How a hit is keyed further depends on
/// what the filter's effect certificate proved:
///
/// * `MemoClass::Shared` (`snapshot == false`): the output is provably
///   independent of per-subscriber state, so the filter id alone keys
///   the entry — no input clone, no snapshot compare.
/// * `MemoClass::SnapshotKeyed` (`snapshot == true`): emitted records
///   copy per-subscriber `last_value_sent`, so a hit additionally
///   requires full input-snapshot equality.
///
/// `MemoClass::Bypass` filters never reach this table.
struct FilterMemo {
    id: u32,
    /// True when a hit must also compare the input snapshot.
    snapshot: bool,
    /// The input snapshot for snapshot-keyed entries; empty for
    /// id-only entries.
    inputs: Vec<MetricRecord>,
    /// Accepted records (a span in the per-poll [`kecho::RecordArena`])
    /// + executed instructions, or `None` for a VM fault. Storing a span
    /// instead of an owned vector is what makes fan-out batched: the
    /// run's records are materialized once into the arena, and every
    /// subscriber sharing the hit gathers the span into its own pooled
    /// payload buffer — one encode, N enqueues, zero clones.
    result: Option<(kecho::RecordSpan, u64)>,
}

/// A filter admitted at deploy time, with everything the per-poll path
/// needs pre-resolved at admission: the dense memo id, the specialized
/// closure (when the register compiler accepted the chunk), and the
/// memo class already folded with the fingerprint-collision
/// quarantine. The poll path never re-hashes source text or re-reads
/// the certificate.
struct DeployedFilter {
    filter: Filter,
    /// Dense per-node filter id — the memo key. Assigned per distinct
    /// source at admission.
    id: u32,
    /// Specialized register closure; `None` ⇒ interpreter fallback.
    compiled: Option<CompiledFilter>,
    /// Effect-certificate memo class, demoted to `Bypass` at deploy
    /// time when the source's fingerprint is collision-tainted.
    memo_class: MemoClass,
}

impl DeployedFilter {
    /// One evaluation: the compiled closure when available, the stack
    /// VM otherwise. The two are bit-identical — outputs, budget
    /// exhaustion, and runtime faults — pinned by the
    /// `compiled_differential` proptests in the `ecode` crate.
    fn run(&self, inputs: &[MetricRecord]) -> Result<FilterOutput, RuntimeError> {
        match &self.compiled {
            Some(c) => c.run(inputs),
            None => self.filter.run(inputs),
        }
    }
}

/// FNV-1a over a filter's source — a cheap, deterministic fingerprint
/// used only at deploy time. Distinct deployed sources with colliding
/// fingerprints are quarantined in [`DMon::fp_tainted`], which demotes
/// the deployment's memo class to `Bypass` at admission; the per-poll
/// memo itself keys on dense filter ids (one per distinct source), so
/// a clash costs VM runs, never wrong data — and costs nothing on the
/// poll path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Data-plane stretch multiplier per degradation-ladder level: at level
/// `L` a node builds data events only every `LADDER_STRETCH[L]`-th poll.
/// Heartbeats and control traffic are never stretched.
const LADDER_STRETCH: [u64; 5] = [1, 2, 2, 4, 4];

/// Highest ladder level (summary-only digest).
const LADDER_TOP: u8 = 4;

/// Consecutive stalled polls before the ladder steps down one level.
const LADDER_DOWN_AFTER: u32 = 3;

/// Consecutive clear polls (and drained outboxes) before the ladder
/// steps back up one level — the hysteresis that stops a borderline load
/// from flapping the level every poll.
const LADDER_UP_AFTER: u32 = 5;

/// Relative-change gate applied to records at ladder level 2 and above:
/// a sample within this fraction of the last value sent is coarsened
/// away.
const LADDER_DELTA_GATE: f64 = 0.10;

/// Longest a stream stays parked after consecutive uplink tail-drops
/// (in polls). Kept at the failure detector's default dead bound so even
/// the deepest backoff re-probes within one detection window — heartbeats
/// keep flowing every `heartbeat_every` during a park, so liveness never
/// depends on the retry.
const CHOKE_PARK_CAP: u32 = 8;

/// A monitoring payload parked in a subscriber's outbox while credits
/// are stalled. Entries carry no `stream_seq` — the slot is allocated at
/// the actual send — so shedding an entry leaves no hole in the stream.
#[derive(Clone)]
struct OutboxEntry {
    records: Vec<MonRecord>,
    ext_names: Vec<(u32, String, String)>,
}

/// The d-mon module of one node.
pub struct DMon {
    node: NodeId,
    /// Hostname per NodeId index — the `/proc/cluster/<name>` directory
    /// names. Shared across every d-mon in the cluster (at 4096 nodes a
    /// per-node clone of the name table would dwarf the monitor state).
    cluster_names: Arc<Vec<String>>,
    modules: Vec<Box<dyn MonitorModule>>,
    env: EnvSpec,
    poll_period: SimDur,
    /// Extra payload bytes per event (models larger event bodies; Fig. 7
    /// uses ~5 KB).
    event_pad: u32,
    policies: HashMap<NodeId, PolicySet>,
    filters: HashMap<NodeId, DeployedFilter>,
    /// Dense filter id per distinct deployed source (deploy-time only).
    /// Identical sources share an id so the per-poll memo can share
    /// their runs; ids survive removals and restarts — they only need
    /// to be dense enough to stay cheap, not compact.
    filter_ids: HashMap<String, u32>,
    /// Next dense filter id to hand out.
    next_filter_id: u32,
    /// Last value actually sent, per subscriber (outer index = node id,
    /// inner index = metric id). Bounded by construction; a Dead
    /// subscriber's row is reaped.
    last_sent: Vec<Vec<Option<(f64, SimTime)>>>,
    /// Last value received from remote publishers, indexed
    /// `[origin][metric_id]` — the fast-path store applications read
    /// alongside `/proc`. Rows grow to each origin's highest metric id.
    remote_values: Vec<Vec<Option<(f64, SimTime)>>>,
    /// Learned schema extensions: metric/file names for foreign ids beyond
    /// the standard module set, per origin. Ordered so name lookups scan
    /// an origin's range deterministically.
    remote_ext: BTreeMap<(NodeId, u32), (String, String)>,
    /// Number of modules present at construction (the cluster-wide
    /// standard set); ids beyond this need schema info on the wire.
    base_modules: usize,
    /// Why a remote publisher last refused this node's filter, keyed by
    /// publisher (populated by incoming [`ControlMsg::FilterRejected`]).
    rejections: HashMap<NodeId, String>,
    seq: u64,
    /// This node's incarnation; bumped by [`DMon::on_revive`] so peers can
    /// tell a restart from a gap.
    epoch: u32,
    /// Next `stream_seq` per subscriber stream (data and heartbeats share
    /// the numbering). Indexed by node id; kept across a subscriber's
    /// death so a heal without a restart shows no spurious stream reset.
    stream_seq: Vec<u32>,
    /// Continuity tracker per incoming stream, indexed by origin.
    trackers: Vec<StreamTracker>,
    /// Failure-detector state per remote peer, indexed by node id so
    /// iteration (eviction, status files) is deterministic.
    peers: Vec<Option<PeerRecord>>,
    /// Silence bound for Fresh → Stale.
    stale_after: SimDur,
    /// Silence bound for Stale → Dead.
    dead_after: SimDur,
    /// Minimum silence on a subscriber stream before a heartbeat rides it.
    /// Kept under `stale_after` so a fully-filtered publisher stays Fresh,
    /// but well above the polling period so heartbeats stay cheap.
    heartbeat_every: SimDur,
    /// Last submission (data or heartbeat) per subscriber stream, indexed
    /// by node id. Reaped when the subscriber is evicted as Dead.
    stream_last_send: Vec<Option<SimTime>>,
    /// Customizations this node deployed on remote publishers, replayed on
    /// resync when a publisher restarts (its volatile policy/filter state
    /// died with it).
    deployed_ctl: HashMap<NodeId, Vec<ControlMsg>>,
    /// Peers that recovered since the last poll and need re-deployment.
    pending_resync: Vec<NodeId>,
    /// Events (data + heartbeats) submitted per subscriber, indexed by
    /// node id. A lifetime counter (observable via [`DMon::sent_to`]), so
    /// it is flat and bounded rather than reaped.
    sent_per_sub: Vec<u64>,
    /// Interned `/proc` handles for this node's own metric files, by
    /// module index; resolved on first write, O(1) afterwards.
    own_file_handles: Vec<Option<ProcHandle>>,
    /// Interned handle for `cluster/<own>/control`.
    own_ctl_handle: Option<ProcHandle>,
    /// Interned handles for `cluster/<peer>/status`, by peer index.
    status_handles: Vec<Option<ProcHandle>>,
    /// Interned handles for `cluster/<origin>/<file>`, indexed
    /// `[origin][metric_id]` — the receive path's hottest writes.
    remote_file_handles: Vec<Vec<Option<ProcHandle>>>,
    /// Origins whose `cluster/<origin>/control` file already exists.
    remote_ctl_ready: Vec<bool>,
    /// Wire schema blocks for run-time-registered modules, rebuilt when
    /// the module set changes instead of per subscriber per poll.
    ext_schema: Vec<(u32, String, String)>,
    /// Scratch filter-input vector, reused across subscribers and polls.
    filter_inputs: Vec<MetricRecord>,
    /// Scratch per-module sample vector, reused across polls.
    sample_buf: Vec<Option<f64>>,
    /// Scratch detail string rotated through the own-metric `/proc`
    /// slots via `swap_handle`, so module collection reuses the slots'
    /// own capacity instead of allocating.
    detail_buf: String,
    /// Scratch needed-modules mask, reused across polls.
    needed_buf: Vec<bool>,
    /// Scratch credit-grant list, reused across polls.
    grant_buf: Vec<(NodeId, u32)>,
    /// Spare `PollOutcome::sends` vector, returned by the glue via
    /// [`DMon::recycle_sends`] after transmitting so the steady-state
    /// poll allocates no fresh send list.
    send_buf: Vec<(Hop, Event, usize)>,
    /// Per-poll filter memo table (cleared at the top of every poll).
    memo: Vec<FilterMemo>,
    /// SoA arena backing the memo entries' record spans, cleared with
    /// the memo. Filter outputs are materialized here once per distinct
    /// run; per-subscriber payloads gather spans out of it.
    record_arena: kecho::RecordArena,
    /// Source text per deployed-filter fingerprint, kept to detect FNV
    /// collisions between *distinct* sources at deploy time. Bounded by
    /// the number of distinct filter sources ever deployed here.
    fp_sources: BTreeMap<u64, String>,
    /// Fingerprints two distinct sources have hashed to. The memo skips
    /// these permanently — correctness must not hinge on a 64-bit hash.
    fp_tainted: BTreeSet<u64>,
    /// Publisher-side credit window per subscriber stream, indexed by
    /// node id. Reset when the subscriber is evicted or this node
    /// restarts.
    credit: Vec<CreditWindow>,
    /// Bounded per-subscriber outbox of payloads awaiting credits,
    /// indexed by node id; overflow sheds oldest-first.
    outbox: Vec<VecDeque<OutboxEntry>>,
    /// Subscriber-side grant accounting: data events absorbed from each
    /// publisher since the last credit grant, indexed by node id.
    ungranted: Vec<u32>,
    /// Loss repayments owed to each publisher: credits minted when a
    /// stream gap proved its frames destroyed (they spent the publisher's
    /// credits but consumed no receive capacity here). Flushed every poll
    /// as a standalone priority-lane `Credit` frame — repayments exist
    /// precisely while the bulk path is dropping, where a piggybacked
    /// grant would die with its carrier.
    repay: Vec<u32>,
    /// Sender-side cumulative counter (mod 256, never resting on 0) of
    /// credits piggybacked onto data events toward each subscriber. The
    /// wire carries the counter, not the increment, so a grant whose
    /// carrier tail-dropped is re-delivered by the next surviving frame.
    grant_cum: Vec<u8>,
    /// Receiver-side cursor: the last piggybacked counter value accepted
    /// from each publisher; the wrapping difference on arrival is the
    /// fresh grant.
    grant_seen: Vec<u8>,
    /// Whether any data event arrived from each publisher since this
    /// node's previous poll. A publisher that owes us nothing goes quiet
    /// naturally; one that went quiet while we still hold sub-threshold
    /// grant debt is credit-starved — the poll flushes the remainder.
    data_since_poll: Vec<bool>,
    /// Remaining polls each subscriber stream stays parked after a
    /// tail-drop at this node's own uplink queue, indexed by subscriber
    /// id. A parked stream holds data without burning credits (the local
    /// NIC said the queue is full — spending more right now is pointless)
    /// and falls through to the heartbeat path. The park always expires —
    /// the next data send re-probes the path — so no external frame is
    /// ever needed to reopen the stream; an early credit grant reopens it
    /// sooner.
    choke_park: Vec<u32>,
    /// Consecutive uplink tail-drops toward each subscriber — the binary
    /// exponential backoff run (parks of 1, 2, 4, then
    /// [`CHOKE_PARK_CAP`] polls). Sustained overload therefore converges
    /// to long parked stretches, which is exactly the consecutive-stall
    /// signal the degradation ladder keys on; a credit grant resets the
    /// run.
    choke_run: Vec<u8>,
    /// Whether this node's own uplink queue tail-dropped any frame since
    /// the previous poll. A local qdisc drop is the most direct overload
    /// evidence a node has — credit stalls can lag it by many polls when
    /// grant trickle keeps the window half-open — so the degradation
    /// ladder counts a drop-marred poll as stalled.
    wire_dropped_since_poll: bool,
    /// Degradation-ladder level (0 = full fidelity .. [`LADDER_TOP`]).
    ladder: u8,
    /// Consecutive polls with a credit-stalled subscriber.
    stall_run: u32,
    /// Consecutive polls with no stalled subscriber.
    clear_run: u32,
    /// Interned handle for `cluster/<own>/overload`.
    overload_handle: Option<ProcHandle>,
    /// This node's own latest sample per metric id, kept so an
    /// aggregator's digest folds its own host alongside its rack peers'
    /// remote views.
    own_latest: Vec<Option<(f64, SimTime)>>,
    /// Latest digest received per rack (spine subscribers only) — the
    /// observability surface behind the shell's `racks` command.
    rack_digests: BTreeMap<u32, DigestPayload>,
    /// Self-observability.
    pub stats: DmonStats,
}

impl DMon {
    /// Create the d-mon for `node`. `cluster_names[i]` names `NodeId(i)`.
    pub fn new(
        node: NodeId,
        cluster_names: Vec<String>,
        modules: Vec<Box<dyn MonitorModule>>,
        poll_period: SimDur,
    ) -> Self {
        Self::new_shared(node, Arc::new(cluster_names), modules, poll_period)
    }

    /// Create the d-mon for `node` with a shared name table. The cluster
    /// glue hands every d-mon the same `Arc`, so a 4096-node run holds
    /// one name table, not 4096 copies.
    pub fn new_shared(
        node: NodeId,
        cluster_names: Arc<Vec<String>>,
        modules: Vec<Box<dyn MonitorModule>>,
        poll_period: SimDur,
    ) -> Self {
        assert!(!poll_period.is_zero(), "zero poll period");
        let env = EnvSpec::new(modules.iter().map(|m| m.metric_name().to_string()));
        let base_modules = modules.len();
        let n = cluster_names.len();
        DMon {
            node,
            cluster_names,
            modules,
            env,
            poll_period,
            event_pad: 0,
            policies: HashMap::new(),
            filters: HashMap::new(),
            filter_ids: HashMap::new(),
            next_filter_id: 0,
            last_sent: vec![Vec::new(); n],
            remote_values: vec![Vec::new(); n],
            remote_ext: BTreeMap::new(),
            base_modules,
            rejections: HashMap::new(),
            seq: 0,
            epoch: 0,
            stream_seq: vec![0; n],
            trackers: vec![StreamTracker::default(); n],
            peers: vec![None; n],
            stale_after: poll_period.mul_f64(3.0),
            dead_after: poll_period.mul_f64(8.0),
            heartbeat_every: poll_period.mul_f64(2.0),
            stream_last_send: vec![None; n],
            deployed_ctl: HashMap::new(),
            pending_resync: Vec::new(),
            sent_per_sub: vec![0; n],
            own_file_handles: vec![None; base_modules],
            own_ctl_handle: None,
            status_handles: vec![None; n],
            remote_file_handles: vec![Vec::new(); n],
            remote_ctl_ready: vec![false; n],
            ext_schema: Vec::new(),
            filter_inputs: Vec::new(),
            sample_buf: Vec::new(),
            detail_buf: String::new(),
            needed_buf: Vec::new(),
            grant_buf: Vec::new(),
            send_buf: Vec::new(),
            memo: Vec::new(),
            record_arena: kecho::RecordArena::new(),
            fp_sources: BTreeMap::new(),
            fp_tainted: BTreeSet::new(),
            credit: vec![CreditWindow::new(); n],
            outbox: vec![VecDeque::new(); n],
            ungranted: vec![0; n],
            repay: vec![0; n],
            grant_cum: vec![0; n],
            grant_seen: vec![0; n],
            data_since_poll: vec![false; n],
            choke_park: vec![0; n],
            choke_run: vec![0; n],
            wire_dropped_since_poll: false,
            ladder: 0,
            stall_run: 0,
            clear_run: 0,
            overload_handle: None,
            own_latest: vec![None; base_modules],
            rack_digests: BTreeMap::new(),
            stats: DmonStats::default(),
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The polling period.
    pub fn poll_period(&self) -> SimDur {
        self.poll_period
    }

    /// The filter environment (metric constants) of this publisher.
    pub fn env(&self) -> &EnvSpec {
        &self.env
    }

    /// Set the extra payload size per event.
    pub fn set_event_pad(&mut self, pad: u32) {
        self.event_pad = pad;
    }

    /// Register a monitoring module at run time — the paper's
    /// extensibility: "new monitoring functionality can be added
    /// dynamically ... without the need to recompile or restart the
    /// running dproc mechanisms". The metric environment grows
    /// append-only, so filters compiled against the old environment keep
    /// their indices.
    pub fn register_module(&mut self, module: Box<dyn MonitorModule>) {
        assert!(
            self.env.index_of(module.metric_name()).is_none(),
            "metric `{}` already registered",
            module.metric_name()
        );
        let mut names: Vec<String> = self.env.names().map(str::to_string).collect();
        names.push(module.metric_name().to_string());
        self.modules.push(module);
        self.env = EnvSpec::new(names);
        // Filters were compiled against the shorter environment; they stay
        // valid (indices are stable) but cannot see the new metric until
        // redeployed. Recompile in place so subscribers pick it up.
        // detlint: allow(unordered-iter) sorted before use on the next line
        let mut sources: Vec<(NodeId, String)> = self
            .filters
            .iter()
            .map(|(&sub, f)| (sub, f.filter.source().to_string()))
            .collect();
        sources.sort_by_key(|&(sub, _)| sub);
        for (sub, source) in sources {
            if let Ok(f) = Filter::compile(&source, &self.env) {
                self.install_filter(sub, f);
            }
        }
        self.own_file_handles.resize(self.modules.len(), None);
        self.own_latest.resize(self.modules.len(), None);
        // Wire schema blocks for every run-time-registered module, built
        // once here instead of per subscriber per poll.
        self.ext_schema = self.modules[self.base_modules..]
            .iter()
            .enumerate()
            .map(|(k, m)| {
                (
                    (self.base_modules + k) as u32,
                    m.metric_name().to_string(),
                    m.file_name().to_string(),
                )
            })
            .collect();
    }

    /// Number of registered monitoring modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Hostname of a node id.
    pub fn name_of(&self, node: NodeId) -> &str {
        &self.cluster_names[node.0]
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.cluster_names
            .iter()
            .position(|n| n == name)
            .map(NodeId)
    }

    /// Last value received from `origin` for the metric named `metric` —
    /// the programmatic fast path next to the `/proc` text interface.
    pub fn remote_value(&self, origin: NodeId, metric: &str) -> Option<(f64, SimTime)> {
        if let Some(idx) = self.env.index_of(metric) {
            return self.remote_value_at(origin, idx as u32);
        }
        // A metric this node has no module for: resolve through the
        // schema the origin shipped with its events. The map is ordered
        // by (origin, id), so this scans exactly the origin's ids in
        // ascending order.
        let (&(_, idx), _) = self
            .remote_ext
            .range((origin, 0)..=(origin, u32::MAX))
            .find(|(_, (name, _))| name == metric)?;
        self.remote_value_at(origin, idx)
    }

    fn remote_value_at(&self, origin: NodeId, idx: u32) -> Option<(f64, SimTime)> {
        *self.remote_values.get(origin.0)?.get(idx as usize)?
    }

    /// The policy a subscriber currently has configured here.
    pub fn policy_for(&self, subscriber: NodeId) -> Option<&PolicySet> {
        self.policies.get(&subscriber)
    }

    /// Whether a subscriber has a filter deployed here.
    pub fn has_filter(&self, subscriber: NodeId) -> bool {
        self.filters.contains_key(&subscriber)
    }

    /// The deployed filter of a subscriber, certificate included.
    pub fn filter_for(&self, subscriber: NodeId) -> Option<&Filter> {
        self.filters.get(&subscriber).map(|df| &df.filter)
    }

    /// Whether a subscriber's deployed filter runs as a specialized
    /// register closure (vs the stack-VM interpreter fallback).
    pub fn filter_is_compiled(&self, subscriber: NodeId) -> bool {
        self.filters
            .get(&subscriber)
            .is_some_and(|df| df.compiled.is_some())
    }

    /// Why `publisher` last refused this node's filter deployment, if it
    /// did (cleared by a subsequent successful deployment).
    pub fn filter_rejection(&self, publisher: NodeId) -> Option<&str> {
        self.rejections.get(&publisher).map(String::as_str)
    }

    /// Configure the failure detector's silence bounds. Defaults are
    /// 3× / 8× the polling period.
    pub fn set_failure_bounds(&mut self, stale_after: SimDur, dead_after: SimDur) {
        assert!(
            !stale_after.is_zero() && stale_after < dead_after,
            "need 0 < stale_after < dead_after"
        );
        self.stale_after = stale_after;
        self.dead_after = dead_after;
        // Heartbeats must outpace the stale bound, whatever it is.
        self.heartbeat_every = self
            .poll_period
            .mul_f64(2.0)
            .min(stale_after.mul_f64(2.0 / 3.0));
    }

    /// The failure detector's `(stale_after, dead_after)` silence bounds.
    pub fn failure_bounds(&self) -> (SimDur, SimDur) {
        (self.stale_after, self.dead_after)
    }

    /// Health of a remote peer; `None` until first contact.
    pub fn peer_health(&self, peer: NodeId) -> Option<PeerHealth> {
        self.peers.get(peer.0)?.map(|r| r.health)
    }

    /// When a remote peer was last heard from; `None` until first contact.
    pub fn peer_last_heard(&self, peer: NodeId) -> Option<SimTime> {
        self.peers.get(peer.0)?.map(|r| r.last_heard)
    }

    /// Earliest future instant at which a currently-tracked peer could be
    /// declared `Dead` by a poll: `last_heard + dead_after`, minimized over
    /// peers not already dead. `None` when no verdict is pending. Used by
    /// the parallel scheduler to decide whether a time window could contain
    /// an eviction (a shared-registry mutation).
    pub fn next_dead_deadline(&self) -> Option<SimTime> {
        self.peers
            .iter()
            .flatten()
            .filter(|r| r.health != PeerHealth::Dead)
            .map(|r| r.last_heard + self.dead_after)
            .min()
    }

    /// This node's incarnation number.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Events (data + heartbeats) this publisher has submitted to one
    /// subscriber over its lifetime.
    pub fn sent_to(&self, subscriber: NodeId) -> u64 {
        self.sent_per_sub.get(subscriber.0).copied().unwrap_or(0)
    }

    /// Number of customization messages queued for replay to `target` if
    /// it restarts (bounded by compaction in [`DMon::record_deployment`]).
    pub fn deployed_ctl_len(&self, target: NodeId) -> usize {
        self.deployed_ctl.get(&target).map_or(0, Vec::len)
    }

    /// Length of the last-sent row held for `subscriber` — zero once a
    /// Dead eviction reaps it, non-zero again after publication resumes.
    pub fn last_sent_len(&self, subscriber: NodeId) -> usize {
        self.last_sent.get(subscriber.0).map_or(0, Vec::len)
    }

    /// Current degradation-ladder level (0 = full fidelity, 4 =
    /// summary-only digest).
    pub fn ladder_level(&self) -> u8 {
        self.ladder
    }

    /// Events parked for `sub` awaiting credits.
    pub fn outbox_len(&self, sub: NodeId) -> usize {
        self.outbox.get(sub.0).map_or(0, VecDeque::len)
    }

    /// Credits currently available toward `sub`.
    pub fn credits_for(&self, sub: NodeId) -> u32 {
        self.credit.get(sub.0).map_or(0, CreditWindow::available)
    }

    /// The full credit window toward `sub` (granted/consumed counters
    /// included), for observability surfaces.
    pub fn credit_window(&self, sub: NodeId) -> Option<&CreditWindow> {
        self.credit.get(sub.0)
    }

    /// The kernel's own uplink queue tail-dropped a data frame bound for
    /// `sub`. Unlike in-network loss, this IS locally observable (a real
    /// qdisc reports the drop), so react immediately: choke the stream
    /// for the next poll — sending again into the same full queue would
    /// burn another credit — and erase the stream-send timestamp so that
    /// poll emits a heartbeat on the priority lane instead. The subscriber
    /// keeps its liveness proof and sees the gap the dropped frame left;
    /// the poll after that re-probes the path (under sustained overload
    /// each retry's drop re-chokes, halving the burn rate).
    pub fn on_wire_drop(&mut self, sub: NodeId) {
        let Some(run) = self.choke_run.get_mut(sub.0) else {
            return;
        };
        *run = run.saturating_add(1);
        self.choke_park[sub.0] = (1u32 << u32::from(*run - 1).min(3)).min(CHOKE_PARK_CAP);
        self.wire_dropped_since_poll = true;
        if let Some(t) = self.stream_last_send.get_mut(sub.0) {
            *t = None;
        }
    }

    /// Whether the stream toward `sub` is currently parked by a local
    /// uplink tail-drop backoff.
    pub fn choked_toward(&self, sub: NodeId) -> bool {
        self.choke_park.get(sub.0).is_some_and(|&p| p > 0)
    }

    /// A credit grant from `peer` is fresh evidence the path toward it
    /// works: reopen a parked stream and reset its drop backoff.
    fn unchoke(&mut self, peer: NodeId) {
        if let Some(p) = self.choke_park.get_mut(peer.0) {
            *p = 0;
        }
        if let Some(r) = self.choke_run.get_mut(peer.0) {
            *r = 0;
        }
    }

    /// Read access to the stream tracker observing `peer`'s stream
    /// (tests, probes).
    pub fn stream_tracker(&self, peer: NodeId) -> Option<&StreamTracker> {
        self.trackers.get(peer.0)
    }

    /// Crash-stop restart: volatile state (deployed policies/filters,
    /// remote views, stream positions, detector state) is lost; the
    /// incarnation is bumped so peers recognize the restart. Lifetime
    /// stats survive — they model the observer, not the kernel.
    pub fn on_revive(&mut self) {
        self.epoch += 1;
        self.policies.clear();
        self.filters.clear();
        self.last_sent.iter_mut().for_each(Vec::clear);
        self.remote_values.iter_mut().for_each(Vec::clear);
        self.remote_ext.clear();
        self.rejections.clear();
        self.stream_seq.fill(0);
        self.stream_last_send.fill(None);
        self.trackers.fill_with(StreamTracker::default);
        self.peers.fill(None);
        self.deployed_ctl.clear();
        self.pending_resync.clear();
        self.sent_per_sub.fill(0);
        // Flow-control and overload state is volatile too: windows reopen
        // full, parked payloads died with the kernel, the ladder restarts
        // at full fidelity.
        self.credit
            .iter_mut()
            .for_each(|w| *w = CreditWindow::new());
        self.outbox.iter_mut().for_each(VecDeque::clear);
        self.ungranted.fill(0);
        self.repay.fill(0);
        self.grant_cum.fill(0);
        self.grant_seen.fill(0);
        self.data_since_poll.fill(false);
        self.choke_park.fill(0);
        self.choke_run.fill(0);
        self.wire_dropped_since_poll = false;
        self.ladder = 0;
        self.stall_run = 0;
        self.clear_run = 0;
        self.own_latest.fill(None);
        self.rack_digests.clear();
        // Interned /proc handles survive: the host (and its proc tree)
        // persists across a crash-restart in this model, so the paths they
        // name are still the right files. Stale remote schema mappings do
        // not: ext name→id bindings were learned from peers and are
        // relearned, so their cached handles go too.
        self.remote_file_handles.iter_mut().for_each(Vec::clear);
    }

    /// Fold a liveness proof from `origin` into the detector + trackers.
    /// Returns the stream observation so callers can react to gaps.
    fn note_alive(
        &mut self,
        origin: NodeId,
        epoch: u32,
        stream_seq: u32,
        now: SimTime,
    ) -> Observation {
        if origin == self.node {
            return Observation::default();
        }
        let obs = self.trackers[origin.0].observe(epoch, stream_seq);
        self.stats.gaps_detected += obs.lost;
        // A proven-lost frame spent one of the publisher's credits but
        // consumed none of our receive capacity: repay it, so the window
        // bounds in-flight plus not-yet-revealed loss instead of deflating
        // permanently. Wire loss still throttles the stream for exactly
        // the reveal lag — a loss is only repaid once a later arrival or
        // heartbeat proves the gap — which is the backpressure the choke
        // and ladder key on. Once the path heals, the repayments walk the
        // window back to full strength; absorbed-data grants alone are
        // one-for-one and would leave a post-overload stream limping on a
        // deflated window forever.
        self.repay[origin.0] =
            self.repay[origin.0].saturating_add(u32::try_from(obs.lost).unwrap_or(u32::MAX));
        if obs.healed {
            // A straggler disproved an earlier loss accusation (see
            // `Observation::healed`); keep the counter exact — and take
            // back the credit the false accusation minted (the arrival
            // itself earns the ordinary absorbed-data credit in
            // `on_event`).
            self.stats.gaps_detected = self.stats.gaps_detected.saturating_sub(1);
            self.repay[origin.0] = self.repay[origin.0].saturating_sub(1);
        }
        let rec = self.peers[origin.0].get_or_insert(PeerRecord {
            last_heard: now,
            health: PeerHealth::Fresh,
            epoch,
        });
        let recovered = rec.health == PeerHealth::Dead || obs.restarted;
        rec.last_heard = now;
        rec.health = PeerHealth::Fresh;
        rec.epoch = epoch;
        if recovered && !self.pending_resync.contains(&origin) {
            self.pending_resync.push(origin);
        }
        obs
    }

    /// The channel registry announced that `peer` (re-)subscribed. A
    /// membership event proves the process is reachable even though
    /// nothing has arrived on its stream yet, so a Dead verdict is
    /// downgraded to Stale: publication toward the peer resumes, and its
    /// own stream re-proves freshness from there. Without this, two nodes
    /// that evicted each other during a partition would skip each other as
    /// subscribers forever — neither ever sending the event that would
    /// prove the other alive.
    pub fn on_peer_rejoin(&mut self, peer: NodeId, now: SimTime) {
        if peer == self.node {
            return;
        }
        if let Some(rec) = self.peers.get_mut(peer.0).and_then(Option::as_mut) {
            if rec.health == PeerHealth::Dead {
                rec.health = PeerHealth::Stale;
                rec.last_heard = now;
            }
        }
    }

    /// Advance the failure detector to `now`: age every tracked peer,
    /// refresh `/proc/cluster/<peer>/status`, and return peers newly
    /// declared Dead.
    fn check_peers(&mut self, host: &mut Host, now: SimTime) -> Vec<NodeId> {
        let mut dead = Vec::new();
        let stats = &mut self.stats;
        let status_handles = &mut self.status_handles;
        let cluster_names = &self.cluster_names;
        let (stale_after, dead_after) = (self.stale_after, self.dead_after);
        for (idx, slot) in self.peers.iter_mut().enumerate() {
            let Some(rec) = slot.as_mut() else { continue };
            let age = now.since(rec.last_heard);
            if rec.health != PeerHealth::Dead {
                if age >= dead_after {
                    rec.health = PeerHealth::Dead;
                    stats.nodes_evicted += 1;
                    dead.push(NodeId(idx));
                } else if age >= stale_after {
                    if rec.health == PeerHealth::Fresh {
                        stats.nodes_suspected += 1;
                    }
                    rec.health = PeerHealth::Stale;
                }
                // Past the stale bound at least one heartbeat interval
                // has gone unanswered; count one miss per silent check.
                if age >= stale_after {
                    stats.heartbeats_missed += 1;
                }
            }
            let h = match status_handles[idx] {
                Some(h) => h,
                None => {
                    let name = &cluster_names[idx];
                    let h = host
                        .proc
                        .intern(&format!("cluster/{name}/status"))
                        .expect("status path");
                    status_handles[idx] = Some(h);
                    h
                }
            };
            // Piecewise assembly with the exact-output fast formatters;
            // equivalent to
            // `"{} last_update {:.3} age {:.3} epoch {}"` via `format!`.
            let buf = host.proc.handle_buf(h);
            buf.clear();
            buf.push_str(rec.health.label());
            buf.push_str(" last_update ");
            fastfmt::push_f64_fixed3(buf, rec.last_heard.as_secs_f64());
            buf.push_str(" age ");
            fastfmt::push_f64_fixed3(buf, age.as_secs_f64());
            buf.push_str(" epoch ");
            fastfmt::push_u64(buf, rec.epoch as u64);
        }
        dead
    }

    /// Build a targeted control event from this node (allocates the next
    /// sequence number).
    pub fn make_control_event(
        &mut self,
        ctl_chan: ChannelId,
        target: NodeId,
        msg: ControlMsg,
    ) -> Event {
        self.seq += 1;
        Event::control(ctl_chan.0, self.seq, self.node, target, msg)
    }

    /// Hand back a drained [`PollOutcome::sends`] vector for reuse. The
    /// glue calls this after transmitting so the steady-state poll path
    /// never allocates a fresh send list.
    pub fn recycle_sends(&mut self, mut sends: Vec<(Hop, Event, usize)>) {
        sends.clear();
        self.send_buf = sends;
    }

    /// One polling iteration at `now`: collect, decide, build events.
    /// Also drains pending `/proc` control-file writes on this host into
    /// outgoing control events (that is how applications reach remote
    /// d-mons).
    pub fn poll(
        &mut self,
        host: &mut Host,
        dir: &Directory,
        mon_chan: ChannelId,
        ctl_chan: ChannelId,
        now: SimTime,
        calib: &Calib,
    ) -> PollOutcome {
        let mut cpu = SimDur::ZERO;
        // Recycled by the glue via `recycle_sends` once transmitted, so
        // the steady state reuses one send list per d-mon.
        let mut sends: Vec<(Hop, Event, usize)> = std::mem::take(&mut self.send_buf);
        sends.clear();
        self.memo.clear();
        self.record_arena.clear();

        // 1. Collect one sample per module some subscriber can actually
        // consume (certified filter read sets prove the rest unread) and
        // refresh local /proc views. The detail text is moved — not
        // copied — into the interned /proc slot.
        let needed = self.needed_modules(dir, mon_chan);
        let mut samples: Vec<Option<f64>> = std::mem::take(&mut self.sample_buf);
        samples.clear();
        for (i, (module, &need)) in self.modules.iter_mut().zip(&needed).enumerate() {
            if !need {
                self.stats.modules_skipped += 1;
                samples.push(None);
                continue;
            }
            let mut detail = std::mem::take(&mut self.detail_buf);
            detail.clear();
            let value = module.collect(host, now, &mut detail);
            cpu += calib.collect_per_module;
            let h = match self.own_file_handles[i] {
                Some(h) => h,
                None => {
                    let own = &self.cluster_names[self.node.0];
                    let h = host
                        .proc
                        .intern(&format!("cluster/{own}/{}", module.file_name()))
                        .expect("own cluster path");
                    self.own_file_handles[i] = Some(h);
                    h
                }
            };
            // Swap the assembled text into the /proc slot and keep the
            // displaced buffer for the next module — no copy, no alloc.
            self.detail_buf = host.proc.swap_handle(h, detail);
            if let Some(slot) = self.own_latest.get_mut(i) {
                *slot = Some((value, now));
            }
            samples.push(Some(value));
        }
        self.needed_buf = needed;
        let ctl_h = match self.own_ctl_handle {
            Some(h) => h,
            None => {
                let own = &self.cluster_names[self.node.0];
                let h = host
                    .proc
                    .intern(&format!("cluster/{own}/control"))
                    .expect("own control path");
                self.own_ctl_handle = Some(h);
                h
            }
        };
        host.proc.handle_buf(ctl_h).clear();

        // 2. Age the failure detector: transitions, status files, and the
        // peers to evict from the registry this iteration. An evicted
        // subscriber's per-stream send state is reaped here — its stream
        // is over; a later recovery starts from a clean slate — while
        // lifetime counters (`sent_per_sub`) and the replay log
        // (`deployed_ctl`, bounded by compaction) deliberately survive.
        let dead_peers = self.check_peers(host, now);
        for &peer in &dead_peers {
            self.last_sent[peer.0] = Vec::new();
            self.stream_last_send[peer.0] = None;
            // Flow-control state dies with the stream: parked payloads
            // for a dead subscriber are shed, its window reopens full for
            // a possible recovery, grant accounting toward it resets.
            while let Some(e) = self.outbox[peer.0].pop_front() {
                kecho::put_record_buf(e.records);
                self.stats.events_shed += 1;
            }
            self.credit[peer.0] = CreditWindow::new();
            self.ungranted[peer.0] = 0;
            self.repay[peer.0] = 0;
            self.grant_cum[peer.0] = 0;
            self.grant_seen[peer.0] = 0;
            self.data_since_poll[peer.0] = false;
            self.choke_park[peer.0] = 0;
            self.choke_run[peer.0] = 0;
        }

        // 3. Per subscriber: parameters or filter decide what to send; a
        // stream with no data this round carries a heartbeat instead, so
        // silence-by-filter stays distinguishable from death. Peers this
        // detector already declared Dead get nothing — that is the point.
        //
        // Data events pass through the subscriber's credit window first:
        // a payload is parked in the bounded outbox and only leaves when
        // a credit is available (oldest-first; overflow sheds oldest).
        // Heartbeats never consume credits — a stalled stream still
        // proves this node alive.
        let stretch = LADDER_STRETCH[self.ladder as usize];
        let data_poll = self.stats.iterations.is_multiple_of(stretch);
        let mut stalled_any = false;
        for sub in dir.subscribers(mon_chan) {
            if sub == self.node || self.peer_health(sub) == Some(PeerHealth::Dead) {
                continue;
            }
            let mut records = if data_poll {
                self.select_records(sub, &samples, now, calib, &mut cpu)
            } else {
                // Stretched-away poll: the ladder trades update rate for
                // relief; liveness rides on heartbeats below.
                Vec::new()
            };
            // Ladder levels 2+ coarsen: only meaningfully-changed samples
            // survive. Levels 3+ shed low-priority modules entirely; the
            // top level keeps a single-metric digest.
            if self.ladder >= 2 {
                records.retain(|r| {
                    (r.value - r.last_value_sent).abs()
                        > LADDER_DELTA_GATE * r.last_value_sent.abs()
                });
            }
            if self.ladder >= 3 {
                let keep = if self.ladder >= LADDER_TOP { 1 } else { 2 };
                records.retain(|r| (r.metric_id as usize) < keep);
            }
            if !records.is_empty() {
                let row = &mut self.last_sent[sub.0];
                if row.len() < self.modules.len() {
                    row.resize(self.modules.len(), None);
                }
                for r in &records {
                    if let Some(slot) = row.get_mut(r.metric_id as usize) {
                        *slot = Some((r.value, now));
                    }
                }
                // Records for run-time-registered modules carry their
                // schema (metric + /proc file names) so any subscriber can
                // interpret them — ECho's typed events, in miniature. The
                // schema text lives in `ext_schema` (rebuilt on
                // registration); the common all-base-modules case stays
                // allocation-free.
                let ext_names: Vec<(u32, String, String)> = if self.ext_schema.is_empty() {
                    Vec::new()
                } else {
                    self.ext_schema
                        .iter()
                        .filter(|(id, _, _)| records.iter().any(|r| r.metric_id == *id))
                        .cloned()
                        .collect()
                };
                self.outbox[sub.0].push_back(OutboxEntry { records, ext_names });
                if self.outbox[sub.0].len() > OUTBOX_CAP {
                    let e = self.outbox[sub.0].pop_front().expect("outbox over cap");
                    kecho::put_record_buf(e.records);
                    self.stats.events_shed += 1;
                }
            }
            // Drain the outbox as far as credits allow. Sequence numbers
            // are stamped here, at the actual send, so parked or shed
            // payloads leave no hole in the stream.
            // A tail-drop park is evidence about the uplink queue, not a
            // standing verdict: it always expires (counting down here),
            // after which the stream re-probes the path, so no external
            // frame is ever required to reopen it. Holding the choke until
            // a grant arrived would deadlock now that grants piggyback on
            // reverse data — a peer with zero grant debt has no frame to
            // unchoke with.
            let choked = self.choke_park[sub.0] > 0;
            if choked {
                self.choke_park[sub.0] -= 1;
            }
            let mut sent_data = false;
            while !choked && !self.outbox[sub.0].is_empty() {
                if !self.credit[sub.0].try_consume() {
                    break;
                }
                let e = self.outbox[sub.0].pop_front().expect("checked non-empty");
                self.seq += 1;
                // Piggyback this node's grant debt for the reverse stream:
                // a subscriber that also publishes tops its peers up on
                // data it was sending anyway, so steady-state flow control
                // in a bidirectional mesh adds no standalone Credit frames
                // (which are charged per event by the NIC-interrupt
                // interference model the Iperf probe reproduces). The wire
                // byte is a *cumulative* counter, not the increment: if
                // this frame tail-drops, the next surviving frame's byte
                // re-delivers the grant, so a write-off here can never
                // strand credits. Streams whose own spend toward the peer
                // is going unacknowledged skip the attach — their bulk
                // frames are probably dying, so the debt is left for the
                // loss-immune priority-lane Credit frame instead.
                if !self.credit[sub.0].grant_overdue() {
                    let mut grant = self.ungranted[sub.0].min(u32::from(u8::MAX));
                    if grant > 0 && self.grant_cum[sub.0].wrapping_add(grant as u8) == 0 {
                        // The counter never rests on 0 (0 on the wire
                        // means "no grant info"): defer one credit so the
                        // cursor arithmetic stays unambiguous.
                        grant -= 1;
                    }
                    self.grant_cum[sub.0] = self.grant_cum[sub.0].wrapping_add(grant as u8);
                    self.ungranted[sub.0] -= grant;
                }
                let grant = u32::from(self.grant_cum[sub.0]);
                let mut ev = Event::monitoring(
                    mon_chan.0,
                    self.seq,
                    self.node,
                    MonitoringPayload {
                        origin: self.node,
                        epoch: self.epoch,
                        stream_seq: self.next_stream_seq(sub),
                        credit_grant: grant,
                        records: e.records,
                        pad_bytes: self.event_pad,
                        ext_names: e.ext_names,
                    },
                );
                // Streams are customized per subscriber, so every
                // monitoring event is addressed — the central-concentrator
                // topology needs the final destination to relay.
                ev.target = Some(sub);
                let bytes = kecho::wire::encoded_size(&ev);
                let handler = calib.submit_cost(bytes);
                cpu += handler + calib.kernel_path_send;
                self.stats.events_sent += 1;
                self.stats.bytes_sent += bytes as u64;
                self.stats.submit_cost_partial(handler);
                self.sent_per_sub[sub.0] += 1;
                self.stream_last_send[sub.0] = Some(now);
                sent_data = true;
                sends.push((
                    Hop {
                        from: self.node,
                        to: sub,
                    },
                    ev,
                    bytes,
                ));
            }
            if !self.outbox[sub.0].is_empty() {
                self.stats.credits_stalled += 1;
                stalled_any = true;
            }
            // A grant is overdue when the stream has spent well past the
            // grant threshold without hearing back — the subscriber has
            // stopped absorbing, which under bounded link queues means
            // the data frames are probably dying in the network. Data
            // sends normally substitute for heartbeats, but frames that
            // never arrive prove nothing: pair the stream with explicit
            // priority-lane heartbeats until a grant lands, so the
            // subscriber keeps its liveness proof (and its gap
            // accounting) however lossy the bulk lane is.
            let overdue = self.credit[sub.0].grant_overdue();
            if !sent_data || overdue {
                // Heartbeats are rate-limited to `heartbeat_every`, not
                // one per poll: a preformatted liveness packet only needs
                // to outpace the peer's stale bound, and Figs. 4/6 depend
                // on filtered streams staying nearly free. A
                // credit-stalled stream reaches here too — the subscriber
                // keeps hearing the publisher is alive even while it
                // cannot absorb data. An overdue stream skips the rate
                // limit: its own data sends reset the silence clock while
                // proving nothing.
                let silence = self.stream_last_send[sub.0].map_or(SimDur::MAX, |t| now.since(t));
                if !overdue && silence < self.heartbeat_every {
                    continue;
                }
                self.seq += 1;
                let ev = Event::heartbeat(
                    mon_chan.0,
                    self.seq,
                    self.node,
                    sub,
                    HeartbeatPayload {
                        origin: self.node,
                        epoch: self.epoch,
                        stream_seq: self.next_stream_seq(sub),
                    },
                );
                let bytes = kecho::wire::encoded_size(&ev);
                cpu += calib.heartbeat_cost + calib.heartbeat_path_send;
                self.stats.heartbeats_sent += 1;
                self.sent_per_sub[sub.0] += 1;
                self.stream_last_send[sub.0] = Some(now);
                sends.push((
                    Hop {
                        from: self.node,
                        to: sub,
                    },
                    ev,
                    bytes,
                ));
            }
        }

        // 3b. Subscriber side of flow control: top up publishers whose
        // data this node has absorbed since its last grant. Decided at
        // poll time (not per arrival), so grants are replay-safe and
        // batch to about one control frame per window half.
        let mut grants: Vec<(NodeId, u32)> = std::mem::take(&mut self.grant_buf);
        grants.clear();
        for idx in 0..self.ungranted.len() {
            // Batch absorbed-data grants behind the threshold — but flush
            // any remainder when the publisher's data stream has gone
            // quiet: a stalled publisher trickling below the threshold
            // would otherwise never be topped back up (credit deadlock
            // after wire loss).
            let pending = self.ungranted[idx];
            let quiet_debt = pending > 0 && !self.data_since_poll[idx];
            let absorbed = if pending >= GRANT_THRESHOLD || quiet_debt {
                pending
            } else {
                0
            };
            // Loss repayments ship immediately, never batched: they exist
            // precisely while the publisher's bulk frames are dying, when
            // a starved window is the bottleneck and a piggybacked grant
            // would die with its carrier. The standalone frame rides the
            // priority lane, so it is loss-immune.
            let credits = absorbed + self.repay[idx];
            if credits > 0 {
                grants.push((NodeId(idx), credits));
                self.ungranted[idx] -= absorbed;
                self.repay[idx] = 0;
            }
        }
        self.data_since_poll.fill(false);
        for (publisher, credits) in grants.drain(..) {
            self.seq += 1;
            let ev = Event::control(
                ctl_chan.0,
                self.seq,
                self.node,
                publisher,
                ControlMsg::Credit { credits },
            );
            let bytes = kecho::wire::encoded_size(&ev);
            cpu += calib.submit_cost(bytes) + calib.kernel_path_send;
            sends.push((
                Hop {
                    from: self.node,
                    to: publisher,
                },
                ev,
                bytes,
            ));
        }

        // 4. Resync recovered publishers: replay the customizations this
        // node had deployed on them (their volatile state died with them).
        for peer in std::mem::take(&mut self.pending_resync) {
            self.stats.resyncs += 1;
            for msg in self.deployed_ctl.get(&peer).cloned().unwrap_or_default() {
                self.seq += 1;
                let ev = Event::control(ctl_chan.0, self.seq, self.node, peer, msg);
                let bytes = kecho::wire::encoded_size(&ev);
                cpu += calib.submit_cost(bytes) + calib.kernel_path_send;
                sends.push((
                    Hop {
                        from: self.node,
                        to: peer,
                    },
                    ev,
                    bytes,
                ));
            }
        }

        // 5. Drain application control-file writes into control events.
        for (path, data) in host.proc.drain_writes() {
            match self.route_control_write(&path, &data, ctl_chan, calib) {
                Ok(Some((hop, ev))) => {
                    let bytes = kecho::wire::encoded_size(&ev);
                    cpu += calib.submit_cost(bytes) + calib.kernel_path_send;
                    sends.push((hop, ev, bytes));
                }
                Ok(None) => {} // applied locally
                Err(()) => self.stats.control_errors += 1,
            }
        }

        // 5b. Degradation ladder: sustained credit stalls step this node
        // down one level at a time (stretch the update period → coarsen
        // thresholds → drop low-priority modules → summary-only digest);
        // stepping back up needs a hysteresis run of clear polls AND fully
        // drained outboxes, so a borderline load cannot flap the level.
        let outboxes_empty = self.outbox.iter().all(VecDeque::is_empty);
        // A poll marred by a local uplink tail-drop counts as stalled even
        // if every outbox drained: the NIC is refusing this node's own
        // output, which is overload however healthy the credit windows
        // still look (grant trickle from delivered frames can hold them
        // half-open for many polls).
        let stalled_any = stalled_any || std::mem::take(&mut self.wire_dropped_since_poll);
        if stalled_any {
            self.stall_run += 1;
            self.clear_run = 0;
        } else {
            self.clear_run += 1;
            self.stall_run = 0;
        }
        if self.stall_run >= LADDER_DOWN_AFTER && self.ladder < LADDER_TOP {
            self.ladder += 1;
            self.stats.ladder_transitions += 1;
            self.stall_run = 0;
        }
        if self.clear_run >= LADDER_UP_AFTER && self.ladder > 0 && outboxes_empty {
            self.ladder -= 1;
            self.stats.ladder_transitions += 1;
            self.clear_run = 0;
        }
        let oh = match self.overload_handle {
            Some(h) => h,
            None => {
                let own = &self.cluster_names[self.node.0];
                let h = host
                    .proc
                    .intern(&format!("cluster/{own}/overload"))
                    .expect("own overload path");
                self.overload_handle = Some(h);
                h
            }
        };
        let buf = host.proc.handle_buf(oh);
        buf.clear();
        buf.push_str("level ");
        fastfmt::push_u64(buf, u64::from(self.ladder));
        buf.push_str(" events_shed ");
        fastfmt::push_u64(buf, self.stats.events_shed);
        buf.push_str(" credits_stalled ");
        fastfmt::push_u64(buf, self.stats.credits_stalled);
        buf.push_str(" ladder_transitions ");
        fastfmt::push_u64(buf, self.stats.ladder_transitions);

        // 6. Close the iteration's books.
        self.grant_buf = grants;
        self.sample_buf = samples;
        cpu += calib.receive_poll_cost;
        self.stats.iterations += 1;
        self.stats.close_iteration(calib.receive_poll_cost);
        PollOutcome {
            sends,
            cpu_cost: cpu,
            dead_peers,
            rejoin: !dir.is_subscribed(mon_chan, self.node),
        }
    }

    /// Allocate the next per-subscriber stream position.
    fn next_stream_seq(&mut self, sub: NodeId) -> u32 {
        let slot = &mut self.stream_seq[sub.0];
        let v = *slot;
        *slot = slot.wrapping_add(1);
        v
    }

    /// Which modules at least one remote subscriber's stream can consume.
    /// A subscriber with a certified filter consumes exactly the filter's
    /// read set; any other subscriber (parameter rules or defaults)
    /// receives every metric. With no remote subscribers everything is
    /// collected so local `/proc` views stay fresh.
    /// The caller returns the vector to `needed_buf` after use, so the
    /// steady-state poll builds the mask without allocating.
    fn needed_modules(&mut self, dir: &Directory, mon_chan: ChannelId) -> Vec<bool> {
        let n = self.modules.len();
        let mut needed = std::mem::take(&mut self.needed_buf);
        needed.clear();
        needed.resize(n, false);
        let mut any_remote = false;
        for sub in dir.subscribers(mon_chan) {
            if sub == self.node {
                continue;
            }
            any_remote = true;
            match self.filters.get(&sub).map(|f| &f.filter.cert().reads) {
                Some(MetricSet::Fixed(set)) => {
                    for &i in set {
                        if i < n {
                            needed[i] = true;
                        }
                    }
                }
                Some(MetricSet::All) | None => {
                    needed.fill(true);
                    return needed;
                }
            }
        }
        if !any_remote {
            needed.fill(true);
        }
        needed
    }

    /// Record a deployed filter source's fingerprint and report whether
    /// it is (now) collision-tainted. When two distinct sources ever
    /// hash to the same FNV-1a value on this node, the fingerprint is
    /// permanently tainted and deployments under it are demoted to
    /// `MemoClass::Bypass` at admission — sharing must rest on the
    /// effect certificate, never on a 64-bit hash being collision-free.
    /// This runs at deploy time only; the poll path keys the memo on
    /// dense filter ids and never hashes source text.
    fn note_filter_fingerprint(&mut self, source: &str) -> bool {
        let fp = fnv1a(source.as_bytes());
        match self.fp_sources.get(&fp) {
            None => {
                self.fp_sources.insert(fp, source.to_string());
            }
            Some(prev) if prev == source => {}
            Some(_) => {
                self.fp_tainted.insert(fp);
            }
        }
        self.fp_tainted.contains(&fp)
    }

    /// Dense per-node id for a filter source, assigned at admission.
    /// Identical sources share an id — that is what lets the per-poll
    /// memo share their runs on a u32 compare — while distinct sources
    /// never do, even under a fingerprint collision.
    fn filter_id_for(&mut self, source: &str) -> u32 {
        if let Some(&id) = self.filter_ids.get(source) {
            return id;
        }
        let id = self.next_filter_id;
        self.next_filter_id += 1;
        self.filter_ids.insert(source.to_string(), id);
        id
    }

    /// Install an admitted filter for `sub`: assign its dense id, fold
    /// the collision quarantine into its memo class, and specialize it
    /// into a register closure (interpreter fallback when the lowering
    /// declines the chunk). Everything the poll path needs is decided
    /// here, once.
    fn install_filter(&mut self, sub: NodeId, f: Filter) {
        let tainted = self.note_filter_fingerprint(f.source());
        let id = self.filter_id_for(f.source());
        let memo_class = if tainted {
            MemoClass::Bypass
        } else {
            f.cert().effects.memo
        };
        let compiled = compile_filter(&f);
        match compiled {
            Some(_) => self.stats.filters_compiled += 1,
            None => self.stats.interp_fallbacks += 1,
        }
        self.filters.insert(
            sub,
            DeployedFilter {
                filter: f,
                id,
                compiled,
                memo_class,
            },
        );
    }

    /// Decide which metric records to send to one subscriber.
    fn select_records(
        &mut self,
        sub: NodeId,
        samples: &[Option<f64>],
        now: SimTime,
        calib: &Calib,
        cpu: &mut SimDur,
    ) -> Vec<MonRecord> {
        if let Some(df) = self.filters.get(&sub) {
            // A deployed filter takes over the decision entirely. Skipped
            // slots get a zero placeholder: a module is only skipped when
            // every deployed filter's certificate proves it unread, so the
            // placeholder is unobservable.
            let mut inputs = std::mem::take(&mut self.filter_inputs);
            inputs.clear();
            let row = &self.last_sent[sub.0];
            for (i, s) in samples.iter().enumerate() {
                let last = row.get(i).and_then(|o| o.as_ref()).map_or(0.0, |&(v, _)| v);
                inputs.push(MetricRecord {
                    id: i as u32,
                    value: s.unwrap_or(0.0),
                    last_value_sent: last,
                    timestamp: now.as_secs_f64(),
                });
            }
            // The memo class (collision quarantine included) and the
            // dense memo id were folded at deploy time, so deciding how
            // this run may be shared with other subscribers within the
            // poll costs a field read. The modeled cost is still charged
            // per logical run — the figures measure what a kernel would
            // spend, not what the memo saves the simulator.
            // One encode: a run's accepted records are pushed into the
            // per-poll SoA arena exactly once; the span (Copy) is what
            // the memo stores and what every sharing subscriber gathers
            // from — the old per-hit record-vector clone is gone.
            let run_one =
                |arena: &mut kecho::RecordArena, out: Result<FilterOutput, RuntimeError>| match out
                {
                    Ok(out) => {
                        let mark = arena.mark();
                        for r in out.iter_accepted() {
                            arena.push(r.id, r.value, r.last_value_sent, r.timestamp);
                        }
                        let r = Some((arena.span_since(mark), out.instructions()));
                        out.recycle();
                        r
                    }
                    Err(_) => None,
                };
            let result = match df.memo_class {
                MemoClass::Bypass => {
                    // Per-subscriber state feeds the output: one run
                    // per subscriber, observable via `memo_bypassed`.
                    self.stats.memo_bypassed += 1;
                    run_one(&mut self.record_arena, df.run(&inputs))
                }
                MemoClass::Shared | MemoClass::SnapshotKeyed => {
                    let snapshot = df.memo_class == MemoClass::SnapshotKeyed;
                    let id = df.id;
                    let hit = self.memo.iter().position(|m| {
                        m.id == id && m.snapshot == snapshot && (!snapshot || m.inputs == inputs)
                    });
                    match hit {
                        Some(i) => self.memo[i].result,
                        None => {
                            let result = run_one(&mut self.record_arena, df.run(&inputs));
                            self.memo.push(FilterMemo {
                                id,
                                snapshot,
                                inputs: if snapshot { inputs.clone() } else { Vec::new() },
                                result,
                            });
                            result
                        }
                    }
                }
            };
            self.filter_inputs = inputs;
            match result {
                Some((span, instructions)) => {
                    *cpu += calib.ecode_instr * instructions;
                    // N enqueues: gather the span into a pooled payload
                    // buffer — a columnar copy, no allocation in steady
                    // state.
                    let mut records = kecho::take_record_buf();
                    self.record_arena.gather_into(span, &mut records);
                    records
                }
                None => {
                    // A faulting filter sends nothing (a kernel would also
                    // disable it; we keep it and count the fault — per
                    // subscriber, even when the run itself was memoized).
                    self.stats.filter_errors += 1;
                    Vec::new()
                }
            }
        } else {
            let policy = self.policies.get(&sub);
            let row = &self.last_sent[sub.0];
            // Recycled from delivered events (the delivery paths call
            // `Event::recycle`), so the steady state allocates nothing.
            let mut records = kecho::take_record_buf();
            records.reserve(samples.len());
            for (i, (sample, module)) in samples.iter().zip(&self.modules).enumerate() {
                // Policy-driven subscribers force every module to be
                // sampled; `None` only defends against future callers.
                let Some(value) = *sample else { continue };
                let (last_value, last_at) = row
                    .get(i)
                    .and_then(|o| o.as_ref())
                    .map_or((0.0, None), |&(v, t)| (v, Some(t)));
                let ctx = RuleCtx {
                    value,
                    last_sent_value: last_value,
                    last_sent_at: last_at,
                    now,
                };
                let admit = match policy {
                    Some(p) => {
                        *cpu +=
                            calib.policy_eval * (p.rule_count(module.metric_name()).max(1) as u64);
                        p.decide(module.metric_name(), &ctx)
                    }
                    None => {
                        *cpu += calib.policy_eval;
                        true
                    }
                };
                if admit {
                    records.push(MonRecord {
                        metric_id: i as u32,
                        value,
                        last_value_sent: last_value,
                        timestamp: now.as_secs_f64(),
                    });
                }
            }
            records
        }
    }

    /// Turn a `/proc` control-file write into a control event (or apply it
    /// locally when it targets this node).
    fn route_control_write(
        &mut self,
        path: &str,
        data: &str,
        ctl_chan: ChannelId,
        calib: &Calib,
    ) -> Result<Option<(Hop, Event)>, ()> {
        // Expected: cluster/<name>/control
        let parts: Vec<&str> = path.split('/').collect();
        let ["cluster", name, "control"] = parts[..] else {
            return Err(());
        };
        let target = self.node_by_name(name).ok_or(())?;
        let directive = parse_control(data).map_err(|_| ())?;
        let msg = if directive.additive {
            // The additive flag travels as a metric-name prefix.
            match directive.msg {
                ControlMsg::SetParam { metric, param } => ControlMsg::SetParam {
                    metric: format!("and:{metric}"),
                    param,
                },
                other => other,
            }
        } else {
            directive.msg
        };
        if target == self.node {
            let outcome = self.on_control(self.node, &msg, calib);
            if let Some(reply) = outcome.reply {
                // Self-directed control short-circuits the wire, so any
                // rejection reply is applied locally too.
                self.on_control(self.node, &reply, calib);
            }
            return Ok(None);
        }
        self.record_deployment(target, &msg);
        self.seq += 1;
        let ev = Event::control(ctl_chan.0, self.seq, self.node, target, msg);
        Ok(Some((
            Hop {
                from: self.node,
                to: target,
            },
            ev,
        )))
    }

    /// Remember a customization sent to `target` so it can be replayed in
    /// order if the target restarts. The log is compacted so it stays
    /// bounded under steady reconfiguration: a fresh `DeployFilter`
    /// supersedes the previous one (`RemoveFilter` supersedes both), and a
    /// non-additive `SetParam` for a metric supersedes every earlier rule
    /// for the same metric root — only `and:` rules stack, because that is
    /// their replay semantic.
    fn record_deployment(&mut self, target: NodeId, msg: &ControlMsg) {
        /// A rule's metric root: what a replacing `SetParam` or a `clear:`
        /// supersedes. `and:`/`clear:` prefixes are transparent; `window:`
        /// keys module state, not rules, so it roots separately.
        fn root(metric: &str) -> &str {
            metric
                .strip_prefix("and:")
                .or_else(|| metric.strip_prefix("clear:"))
                .unwrap_or(metric)
        }
        let log = self.deployed_ctl.entry(target).or_default();
        match msg {
            ControlMsg::SetParam { metric, .. } => {
                if metric.starts_with("and:") {
                    // Additive rules stack on the target; every one is
                    // needed to rebuild the composed rule set.
                    log.push(msg.clone());
                    return;
                }
                let slot = root(metric);
                log.retain(|m| match m {
                    ControlMsg::SetParam { metric: old, .. } => root(old) != slot,
                    _ => true,
                });
                // `clear:` is kept too (it replays as a cheap no-op on a
                // blank restart) because metric aliases — /proc file names
                // vs E-code constants — can hide a rule it must still undo.
                log.push(msg.clone());
            }
            ControlMsg::DeployFilter { .. } | ControlMsg::RemoveFilter => {
                log.retain(|m| {
                    !matches!(
                        m,
                        ControlMsg::DeployFilter { .. } | ControlMsg::RemoveFilter
                    )
                });
                if matches!(msg, ControlMsg::DeployFilter { .. }) {
                    log.push(msg.clone());
                }
            }
            ControlMsg::Announce
            | ControlMsg::FilterRejected { .. }
            | ControlMsg::Credit { .. } => {}
        }
    }

    /// Handle an incoming monitoring event: update the `/proc/cluster`
    /// tree and the fast-path store. Returns the d-mon handler CPU cost
    /// (kernel network-path cost is charged by the glue on top).
    pub fn on_event(
        &mut self,
        host: &mut Host,
        ev: &Event,
        bytes: usize,
        now: SimTime,
        calib: &Calib,
    ) -> SimDur {
        let Some(payload) = ev.as_monitoring() else {
            return SimDur::ZERO;
        };
        let origin = payload.origin;
        let obs = self.note_alive(origin, payload.epoch, payload.stream_seq, now);
        if origin != self.node {
            // Grant accounting: this arrival consumed one of the credits
            // we granted the publisher; the next poll tops it back up once
            // enough have accumulated.
            self.ungranted[origin.0] = self.ungranted[origin.0].saturating_add(1);
            self.data_since_poll[origin.0] = true;
            // The piggybacked-grant counter for our reverse stream. Only
            // stream-advancing arrivals move the cursor: a reordered
            // straggler carries an outdated counter whose wrapping delta
            // would read as a huge bogus grant. A restarted publisher
            // starts a fresh counter, so the cursor restarts with it.
            if obs.restarted {
                self.grant_seen[origin.0] = 0;
            }
            let cum = payload.credit_grant.min(u32::from(u8::MAX)) as u8;
            if cum != 0 && !obs.stale {
                let delta = cum.wrapping_sub(self.grant_seen[origin.0]);
                self.grant_seen[origin.0] = cum;
                if delta > 0 {
                    if let Some(w) = self.credit.get_mut(origin.0) {
                        w.grant(u32::from(delta));
                    }
                    self.unchoke(origin);
                }
            }
        }
        for (id, metric, file) in &payload.ext_names {
            let known = self
                .remote_ext
                .get(&(origin, *id))
                .is_some_and(|(m, f)| m == metric && f == file);
            if !known {
                // A changed file name (the origin restarted with another
                // module layout) invalidates the cached /proc handle.
                if let Some(slot) = self.remote_file_handles[origin.0].get_mut(*id as usize) {
                    *slot = None;
                }
                self.remote_ext
                    .insert((origin, *id), (metric.clone(), file.clone()));
            }
        }
        for r in &payload.records {
            let id = r.metric_id as usize;
            let values = &mut self.remote_values[origin.0];
            if values.len() <= id {
                values.resize(id + 1, None);
            }
            values[id] = Some((r.value, now));
            let file: &str = if id < self.base_modules {
                self.modules.get(id).map_or("extra", |m| m.file_name())
            } else {
                self.remote_ext
                    .get(&(origin, r.metric_id))
                    .map_or("extra", |(_, f)| f.as_str())
            };
            let handles = &mut self.remote_file_handles[origin.0];
            if handles.len() <= id {
                handles.resize(id + 1, None);
            }
            let h = match handles[id] {
                Some(h) => h,
                None => {
                    let origin_name = &self.cluster_names[origin.0];
                    let h = host
                        .proc
                        .intern(&format!("cluster/{origin_name}/{file}"))
                        .expect("cluster path");
                    handles[id] = Some(h);
                    h
                }
            };
            // Piecewise assembly with the exact-output fast formatters;
            // equivalent to `"{} {} ts {:.3}"` via `format!`.
            let buf = host.proc.handle_buf(h);
            buf.clear();
            buf.push_str(file);
            buf.push(' ');
            fastfmt::push_f64_display(buf, r.value);
            buf.push_str(" ts ");
            fastfmt::push_f64_fixed3(buf, r.timestamp);
        }
        // Make sure the control file for that node exists so applications
        // can customize it.
        if !self.remote_ctl_ready[origin.0] {
            let ctl = format!("cluster/{}/control", self.cluster_names[origin.0]);
            if !host.proc.exists(&ctl) {
                host.proc.set(&ctl, "").expect("control path");
            }
            self.remote_ctl_ready[origin.0] = true;
        }
        let handler = calib.receive_cost(bytes);
        self.stats.events_received += 1;
        self.stats.bytes_received += bytes as u64;
        self.stats.pending_receive += handler;
        handler
    }

    /// Handle an incoming heartbeat: pure liveness, no data. Returns the
    /// handler CPU cost. Heartbeats are deliberately cheap and stay out
    /// of the Fig. 8 receive-cost sampler — they are the failure
    /// detector's overhead, not monitoring work.
    pub fn on_heartbeat(&mut self, ev: &Event, now: SimTime, calib: &Calib) -> SimDur {
        let Some(hb) = ev.as_heartbeat() else {
            return SimDur::ZERO;
        };
        // Loss repayment happens inside `note_alive`: a heartbeat that
        // reveals a gap proves the publisher alive with its data dying on
        // the wire, and the repaid credits let it re-probe the path
        // without waiting a full round-trip of absorbed data.
        self.note_alive(hb.origin, hb.epoch, hb.stream_seq, now);
        self.stats.heartbeats_received += 1;
        calib.heartbeat_cost
    }

    /// Handle an incoming control event sent by subscriber `from`.
    /// Returns the CPU cost (compilation is expensive; parameter updates
    /// are cheap) plus an optional reply for the glue to send back.
    pub fn on_control(&mut self, from: NodeId, msg: &ControlMsg, calib: &Calib) -> ControlOutcome {
        self.stats.control_handled += 1;
        match msg {
            ControlMsg::SetParam { metric, param } => {
                if let Some(rest) = metric.strip_prefix("clear:") {
                    let name = self
                        .modules
                        .iter()
                        .find(|m| m.file_name() == rest)
                        .map_or_else(|| rest.to_string(), |m| m.metric_name().to_string());
                    self.policies.entry(from).or_default().clear_metric(&name);
                    return ControlOutcome::cost(calib.policy_eval);
                }
                if let Some(rest) = metric.strip_prefix("window:") {
                    let window = match param {
                        ParamSpec::Period { period_s } => SimDur::from_secs_f64(*period_s),
                        _ => SimDur::ZERO,
                    };
                    for m in &mut self.modules {
                        if m.file_name() == rest {
                            m.set_window(window);
                        }
                    }
                    return ControlOutcome::cost(calib.policy_eval);
                }
                let (metric, additive) = match metric.strip_prefix("and:") {
                    Some(rest) => (rest, true),
                    None => (metric.as_str(), false),
                };
                // Control files name metrics by their /proc file names
                // (`cpu`, `mem`, ...); policies are keyed by the E-code
                // metric constants (`LOADAVG`, ...). Accept either.
                let metric = self
                    .modules
                    .iter()
                    .find(|m| m.file_name() == metric)
                    .map_or_else(|| metric.to_string(), |m| m.metric_name().to_string());
                let metric = metric.as_str();
                let rule = Rule::from_spec(*param);
                let policy = self.policies.entry(from).or_default();
                if additive {
                    policy.add_rule(metric, rule);
                } else {
                    policy.set_rule(metric, rule);
                }
                ControlOutcome::cost(calib.policy_eval)
            }
            ControlMsg::DeployFilter { source } => {
                match Filter::compile(source, &self.env) {
                    Ok(f) => {
                        // Admission control: a filter only runs if the static
                        // verifier produced a finite worst-case instruction
                        // bound that fits the VM budget. A rejected filter is
                        // never installed (any previously deployed filter
                        // stays in force) and the subscriber is told why.
                        if let Some(reason) = f.admission_error() {
                            self.stats.filters_rejected += 1;
                            return ControlOutcome {
                                cpu: calib.filter_compile,
                                reply: Some(ControlMsg::FilterRejected { reason }),
                            };
                        }
                        self.install_filter(from, f);
                    }
                    Err(_) => {
                        self.stats.filter_errors += 1;
                    }
                }
                ControlOutcome::cost(calib.filter_compile)
            }
            ControlMsg::RemoveFilter => {
                self.filters.remove(&from);
                ControlOutcome::cost(calib.policy_eval)
            }
            ControlMsg::Announce => ControlOutcome::cost(SimDur::ZERO),
            ControlMsg::Credit { credits } => {
                // We are the publisher: the subscriber absorbed data and
                // reopens our window toward it. A grant is also fresh
                // evidence the path works, so a choked stream reopens.
                if let Some(w) = self.credit.get_mut(from.0) {
                    w.grant(*credits);
                }
                self.unchoke(from);
                ControlOutcome::cost(calib.policy_eval)
            }
            ControlMsg::FilterRejected { reason } => {
                // We are the subscriber: a publisher refused our filter.
                self.rejections.insert(from, reason.clone());
                ControlOutcome::cost(calib.policy_eval)
            }
        }
    }

    /// The aggregator tier's polling step: fold this rack's latest member
    /// samples (own host included) into one bounded per-metric digest and
    /// submit it to every digest-channel subscriber. Digests are
    /// summaries, not streams — they carry no `stream_seq`, consume no
    /// credits, and skip the outbox: a lost digest is simply superseded
    /// by the next one, so the whole credit/loss machinery would only add
    /// latency. Returns the planned sends plus the CPU cost to charge;
    /// `None` while no member has produced a sample yet.
    pub fn poll_digest(
        &mut self,
        dir: &Directory,
        digest_chan: ChannelId,
        rack: u32,
        members: std::ops::Range<usize>,
        skip: &[NodeId],
        calib: &Calib,
    ) -> Option<(Vec<(Hop, Event, usize)>, SimDur)> {
        let n_metrics = self.modules.len();
        // (min, max, sum, count, newest_ts) per metric id.
        let mut acc = vec![
            (
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0f64,
                0u32,
                f64::NEG_INFINITY
            );
            n_metrics
        ];
        let mut cpu = SimDur::ZERO;
        let mut member_count = 0u32;
        for m in members {
            let mut contributed = false;
            for (id, slot) in acc.iter_mut().enumerate() {
                let sample = if m == self.node.0 {
                    self.own_latest.get(id).copied().flatten()
                } else {
                    self.remote_values
                        .get(m)
                        .and_then(|row| row.get(id))
                        .copied()
                        .flatten()
                };
                let Some((value, ts)) = sample else { continue };
                contributed = true;
                slot.0 = slot.0.min(value);
                slot.1 = slot.1.max(value);
                slot.2 += value;
                slot.3 += 1;
                slot.4 = slot.4.max(ts.as_secs_f64());
            }
            if contributed {
                member_count += 1;
            }
            // The fold reads the same per-member state a policy check
            // would; charge it at the policy-evaluation rate.
            cpu += calib.policy_eval;
        }
        let records: Vec<DigestRecord> = acc
            .iter()
            .enumerate()
            .filter(|(_, a)| a.3 > 0)
            .map(|(id, a)| DigestRecord {
                metric_id: id as u32,
                min: a.0,
                max: a.1,
                mean: a.2 / f64::from(a.3),
                count: a.3,
                newest_ts: a.4,
            })
            .collect();
        if records.is_empty() {
            return None;
        }
        let payload = DigestPayload {
            rack,
            origin: self.node,
            members: member_count,
            records,
        };
        let mut sends = Vec::new();
        for sub in dir.subscribers(digest_chan) {
            // `skip` carries peers this same polling step just evicted:
            // the serial engine has already removed them from the
            // directory (the skip is a no-op there), while the parallel
            // mirror defers the directory write to effect replay — the
            // skip makes both read the same effective subscriber set.
            if sub == self.node || skip.contains(&sub) {
                continue;
            }
            self.seq += 1;
            let mut ev = Event::digest(digest_chan.0, self.seq, self.node, payload.clone());
            // Digest consumers are enumerated per send (like monitoring
            // streams), so the central-concentrator topology can relay.
            ev.target = Some(sub);
            let bytes = kecho::wire::encoded_size(&ev);
            cpu += calib.submit_cost(bytes) + calib.kernel_path_send;
            self.stats.digests_sent += 1;
            sends.push((
                Hop {
                    from: self.node,
                    to: sub,
                },
                ev,
                bytes,
            ));
        }
        if sends.is_empty() {
            return None;
        }
        Some((sends, cpu))
    }

    /// Handle an incoming rack digest: record freshness, refresh the
    /// `/proc/cluster/rack<k>/...` summary files, and keep the latest
    /// payload per rack for observability surfaces. Returns the handler
    /// CPU cost. Digests stay out of the Fig. 8 receive-cost sampler —
    /// like heartbeats, they are infrastructure overhead, not the
    /// monitoring workload the figure measures.
    pub fn on_digest(
        &mut self,
        host: &mut Host,
        ev: &Event,
        bytes: usize,
        now: SimTime,
        calib: &Calib,
    ) -> SimDur {
        let Some(payload) = ev.as_digest() else {
            return SimDur::ZERO;
        };
        self.stats.digests_received += 1;
        self.stats.digest_records += payload.records.len() as u64;
        let newest = payload
            .records
            .iter()
            .map(|r| r.newest_ts)
            .fold(f64::NEG_INFINITY, f64::max);
        if newest.is_finite() {
            self.stats
                .digest_staleness_s
                .add((now.as_secs_f64() - newest).max(0.0));
        }
        for r in &payload.records {
            let file = self
                .modules
                .get(r.metric_id as usize)
                .map_or("extra", |m| m.file_name());
            let path = format!("cluster/rack{}/{file}", payload.rack);
            let mut text = String::new();
            text.push_str("min ");
            fastfmt::push_f64_display(&mut text, r.min);
            text.push_str(" max ");
            fastfmt::push_f64_display(&mut text, r.max);
            text.push_str(" mean ");
            fastfmt::push_f64_display(&mut text, r.mean);
            text.push_str(" count ");
            fastfmt::push_u64(&mut text, u64::from(r.count));
            text.push_str(" ts ");
            fastfmt::push_f64_fixed3(&mut text, r.newest_ts);
            host.proc.set(&path, &text).expect("rack digest path");
        }
        self.rack_digests.insert(payload.rack, payload.clone());
        calib.receive_cost(bytes)
    }

    /// The latest digest received for `rack`, if any.
    pub fn rack_digest(&self, rack: u32) -> Option<&DigestPayload> {
        self.rack_digests.get(&rack)
    }

    /// Iterate the latest digest per rack, in rack order.
    pub fn rack_digests(&self) -> impl Iterator<Item = (u32, &DigestPayload)> {
        self.rack_digests.iter().map(|(&k, v)| (k, v))
    }
}

impl DmonStats {
    /// Zero all counters and samplers — used by the harness to discard a
    /// warm-up window before measuring.
    pub fn reset(&mut self) {
        *self = DmonStats::default();
    }

    fn submit_cost_partial(&mut self, cost: SimDur) {
        // Submission samples accumulate within the iteration; the sampler
        // takes the per-iteration total at close.
        self.pending_submit += cost;
    }

    fn close_iteration(&mut self, poll_floor: SimDur) {
        let submit = std::mem::take(&mut self.pending_submit);
        self.submit_cost_us.add(submit.as_micros_f64());
        let recv = std::mem::take(&mut self.pending_receive) + poll_floor;
        self.receive_cost_us.add(recv.as_micros_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::standard_modules;
    use simos::host::HostConfig;

    fn names() -> Vec<String> {
        vec!["alan".into(), "maui".into(), "etna".into()]
    }

    fn setup() -> (DMon, Host, Directory, ChannelId, ChannelId, Calib) {
        let node = NodeId(0);
        let dmon = DMon::new(node, names(), standard_modules(), SimDur::from_secs(1));
        let host = Host::new("alan", node, &HostConfig::testbed());
        let mut dir = Directory::default();
        let mon = dir.open("dproc-monitoring");
        let ctl = dir.open("dproc-control");
        for n in 0..3 {
            dir.subscribe(mon, NodeId(n));
            dir.subscribe(ctl, NodeId(n));
        }
        (dmon, host, dir, mon, ctl, Calib::default())
    }

    #[test]
    fn poll_sends_to_all_other_subscribers() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(out.sends.len(), 2, "two remote subscribers");
        for (hop, ev, bytes) in &out.sends {
            assert_eq!(hop.from, NodeId(0));
            assert_ne!(hop.to, NodeId(0));
            let m = ev.as_monitoring().unwrap();
            assert_eq!(m.records.len(), 5, "all five metrics by default");
            assert!(*bytes > 50);
        }
        assert!(out.cpu_cost > SimDur::ZERO);
        assert_eq!(dmon.stats.events_sent, 2);
        assert_eq!(dmon.stats.iterations, 1);
    }

    #[test]
    fn poll_updates_own_proc_tree() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert!(host
            .proc
            .read("cluster/alan/cpu")
            .unwrap()
            .contains("loadavg"));
        assert!(host.proc.exists("cluster/alan/control"));
        assert!(host
            .proc
            .read("cluster/alan/mem")
            .unwrap()
            .contains("free_bytes"));
    }

    #[test]
    fn policy_gates_metrics_per_subscriber() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Subscriber 1 wants load only above 100 (never true here);
        // subscriber 2 keeps defaults.
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::Above { bound: 1e18 },
            },
            &calib,
        );
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        let data: Vec<_> = out
            .sends
            .iter()
            .filter(|(_, ev, _)| ev.as_monitoring().is_some())
            .collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].0.to, NodeId(2));
        // The gated subscriber still hears a liveness beacon.
        let hb: Vec<_> = out
            .sends
            .iter()
            .filter(|(_, ev, _)| ev.as_heartbeat().is_some())
            .collect();
        assert_eq!(hb.len(), 1);
        assert_eq!(hb[0].0.to, NodeId(1));
        assert_eq!(dmon.stats.heartbeats_sent, 1);
    }

    #[test]
    fn period_parameter_halves_send_rate() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::Period { period_s: 2.0 },
            },
            &calib,
        );
        dmon.on_control(
            NodeId(2),
            &ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::Period { period_s: 2.0 },
            },
            &calib,
        );
        let mut sent = 0;
        for s in 1..=10 {
            let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(s), &calib);
            sent += out
                .sends
                .iter()
                .filter(|(_, ev, _)| ev.as_monitoring().is_some())
                .count();
        }
        // 10 polls at 1 Hz, 2 s period, 2 subscribers => ~10 data events.
        assert!((8..=12).contains(&sent), "sent {sent}");
        // Data every 2 s never opens a heartbeat-worthy silence window:
        // the cadence itself proves liveness, so heartbeats cost nothing.
        assert_eq!(dmon.stats.heartbeats_sent, 0);
    }

    #[test]
    fn deployed_filter_controls_stream() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Filter for subscriber 1: only send LOADAVG when > 2 (never here).
        dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: "{ if (input[LOADAVG].value > 2.0) { output[0] = input[LOADAVG]; } }"
                    .into(),
            },
            &calib,
        );
        assert!(dmon.has_filter(NodeId(1)));
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        let data = |out: &PollOutcome| {
            out.sends
                .iter()
                .filter(|(_, ev, _)| ev.as_monitoring().is_some())
                .count()
        };
        assert_eq!(data(&out), 1, "only the unfiltered subscriber");
        // Load the machine: filter should open up.
        host.cpu.spawn_compute(SimTime::from_secs(1), "a");
        host.cpu.spawn_compute(SimTime::from_secs(1), "b");
        host.cpu.spawn_compute(SimTime::from_secs(1), "c");
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(100), &calib);
        assert_eq!(data(&out), 2);
        let to1 = out
            .sends
            .iter()
            .find(|(h, _, _)| h.to == NodeId(1))
            .unwrap();
        assert_eq!(
            to1.1.as_monitoring().unwrap().records.len(),
            1,
            "filtered to LOADAVG"
        );
    }

    #[test]
    fn bad_filter_counts_error_and_keeps_old_behaviour() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: "{ this is not e-code }".into(),
            },
            &calib,
        );
        assert_eq!(dmon.stats.filter_errors, 1);
        assert!(!dmon.has_filter(NodeId(1)));
        // RemoveFilter on nothing is fine.
        dmon.on_control(NodeId(1), &ControlMsg::RemoveFilter, &calib);
    }

    #[test]
    fn unbounded_filter_rejected_before_reaching_vm() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        let out = dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: "{ while (1) { } }".into(),
            },
            &calib,
        );
        assert_eq!(dmon.stats.filters_rejected, 1);
        assert_eq!(
            dmon.stats.filter_errors, 0,
            "it compiles; the verifier refused it"
        );
        assert!(
            !dmon.has_filter(NodeId(1)),
            "rejected filter never installed"
        );
        let Some(ControlMsg::FilterRejected { reason }) = out.reply else {
            panic!("expected a FilterRejected reply, got {:?}", out.reply);
        };
        assert!(reason.contains("unbounded"), "reason: {reason}");
    }

    #[test]
    fn rejected_filter_keeps_previously_deployed_one() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: "{ if (input[LOADAVG].value > 2.0) { output[0] = input[LOADAVG]; } }"
                    .into(),
            },
            &calib,
        );
        assert!(dmon.has_filter(NodeId(1)));
        let old_reads = dmon.filter_for(NodeId(1)).unwrap().cert().reads.clone();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: "{ int i; for (i = 0; 1; i = i + 0) { } }".into(),
            },
            &calib,
        );
        assert_eq!(dmon.stats.filters_rejected, 1);
        assert!(dmon.has_filter(NodeId(1)), "old filter stays in force");
        assert_eq!(dmon.filter_for(NodeId(1)).unwrap().cert().reads, old_reads);
    }

    #[test]
    fn fig3_filter_certifies_and_deploys() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        let out = dmon.on_control(
            NodeId(1),
            &ControlMsg::DeployFilter {
                source: ecode::FIG3_SOURCE.into(),
            },
            &calib,
        );
        assert!(out.reply.is_none());
        assert_eq!(dmon.stats.filters_rejected, 0);
        assert!(dmon.has_filter(NodeId(1)));
        let cert = dmon.filter_for(NodeId(1)).unwrap().cert();
        assert!(cert.is_certified());
        assert!(cert.bound().unwrap() <= ecode::vm::DEFAULT_BUDGET);
    }

    #[test]
    fn readset_skips_modules_no_subscriber_consumes() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Both remote subscribers deploy filters whose certified read set
        // is exactly {LOADAVG} — the other four modules are provably
        // unread, so d-mon must not sample them.
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: "{ output[0] = input[LOADAVG]; }".into(),
                },
                &calib,
            );
        }
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.stats.modules_skipped, 4, "mem/disk/net/pmc skipped");
        assert!(
            host.proc.exists("cluster/alan/cpu"),
            "consumed module still sampled"
        );
        assert!(
            !host.proc.exists("cluster/alan/mem"),
            "unread module never collected"
        );
        assert!(!host.proc.exists("cluster/alan/pmc"));
        // The streams themselves still flow.
        assert_eq!(out.sends.len(), 2);
        for (_, ev, _) in &out.sends {
            let recs = &ev.as_monitoring().unwrap().records;
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].metric_id, 0);
        }
        // Removing one filter widens the need back to everything.
        dmon.on_control(NodeId(2), &ControlMsg::RemoveFilter, &calib);
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(2), &calib);
        assert_eq!(
            dmon.stats.modules_skipped, 4,
            "no new skips once a default subscriber exists"
        );
        assert!(host.proc.exists("cluster/alan/mem"));
    }

    #[test]
    fn dynamic_read_filter_keeps_all_modules_sampled() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    // Dynamic input index => read set is All.
                    source: "{ int i; i = 2; output[0] = input[i]; }".into(),
                },
                &calib,
            );
        }
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.stats.modules_skipped, 0);
    }

    #[test]
    fn self_deploy_rejection_recorded_locally() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        host.proc.set("cluster/alan/control", "").unwrap();
        host.proc
            .write("cluster/alan/control", "filter { while (1) { } }")
            .unwrap();
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.stats.filters_rejected, 1);
        let reason = dmon
            .filter_rejection(NodeId(0))
            .expect("self rejection recorded");
        assert!(reason.contains("unbounded"));
    }

    #[test]
    fn on_event_populates_cluster_tree_and_fast_path() {
        let (mut dmon, mut host, _dir, mon, _ctl, calib) = setup();
        let ev = Event::monitoring(
            mon.0,
            1,
            NodeId(2),
            MonitoringPayload {
                origin: NodeId(2),
                epoch: 0,
                stream_seq: 0,
                credit_grant: 0,
                records: vec![MonRecord {
                    metric_id: 0,
                    value: 2.5,
                    last_value_sent: 1.0,
                    timestamp: 3.0,
                }],
                pad_bytes: 0,
                ext_names: Vec::new(),
            },
        );
        let cost = dmon.on_event(&mut host, &ev, 90, SimTime::from_secs(3), &calib);
        assert!(cost >= calib.receive_base);
        assert!(host.proc.read("cluster/etna/cpu").unwrap().contains("2.5"));
        assert!(host.proc.exists("cluster/etna/control"));
        let (v, t) = dmon.remote_value(NodeId(2), "LOADAVG").unwrap();
        assert_eq!(v, 2.5);
        assert_eq!(t, SimTime::from_secs(3));
        assert_eq!(dmon.stats.events_received, 1);
    }

    #[test]
    fn control_file_write_routes_to_target() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // First poll creates remote control files? No — remote entries
        // appear on first received event; create manually as the app would
        // find them after an event.
        host.proc.set("cluster/maui/control", "").unwrap();
        host.proc
            .write("cluster/maui/control", "period cpu 2")
            .unwrap();
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        let ctl_sends: Vec<_> = out
            .sends
            .iter()
            .filter(|(_, ev, _)| ev.as_control().is_some())
            .collect();
        assert_eq!(ctl_sends.len(), 1);
        assert_eq!(ctl_sends[0].0.to, NodeId(1));
        assert_eq!(
            ctl_sends[0].1.as_control().unwrap(),
            &ControlMsg::SetParam {
                metric: "cpu".into(),
                param: ParamSpec::Period { period_s: 2.0 }
            }
        );
    }

    #[test]
    fn control_write_to_self_applies_locally() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        host.proc.set("cluster/alan/control", "").unwrap();
        host.proc
            .write("cluster/alan/control", "window cpu 5")
            .unwrap();
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert!(out.sends.iter().all(|(_, ev, _)| ev.as_control().is_none()));
        assert_eq!(dmon.stats.control_handled, 1);
    }

    #[test]
    fn malformed_control_write_counts_error() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        host.proc.set("cluster/maui/control", "").unwrap();
        host.proc
            .write("cluster/maui/control", "gibberish")
            .unwrap();
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.stats.control_errors, 1);
    }

    #[test]
    fn additive_rules_compose_over_the_wire() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "cpu".into(),
                param: ParamSpec::Period { period_s: 2.0 },
            },
            &calib,
        );
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "and:cpu".into(),
                param: ParamSpec::Above { bound: 0.8 },
            },
            &calib,
        );
        // `cpu` translates to the module's metric constant.
        let p = dmon.policy_for(NodeId(1)).unwrap();
        assert_eq!(p.rule_count("LOADAVG"), 2);
        // clear: prefix resets (by metric-constant name).
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "clear:LOADAVG".into(),
                param: ParamSpec::Period { period_s: 1.0 },
            },
            &calib,
        );
        assert_eq!(dmon.policy_for(NodeId(1)).unwrap().rule_count("LOADAVG"), 0);
    }

    #[test]
    fn submit_stats_track_iteration_costs() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for s in 1..=5 {
            dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(s), &calib);
        }
        assert_eq!(dmon.stats.submit_cost_us.len(), 5);
        // 2 events of ~190B each: ~2*245us
        let mean = dmon.stats.submit_cost_us.mean();
        assert!(mean > 400.0 && mean < 700.0, "mean {mean}");
    }

    fn mon_from(origin: NodeId, mon: ChannelId, epoch: u32, sseq: u32) -> Event {
        let mut ev = Event::monitoring(
            mon.0,
            1,
            origin,
            MonitoringPayload {
                origin,
                epoch,
                stream_seq: sseq,
                credit_grant: 0,
                records: vec![MonRecord {
                    metric_id: 0,
                    value: 1.0,
                    last_value_sent: 0.0,
                    timestamp: 0.0,
                }],
                pad_bytes: 0,
                ext_names: Vec::new(),
            },
        );
        ev.target = Some(NodeId(0));
        ev
    }

    #[test]
    fn detector_walks_fresh_stale_dead_and_updates_status() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Defaults: stale at 3 s, dead at 8 s (1 s poll period).
        let ev = mon_from(NodeId(1), mon, 0, 0);
        dmon.on_event(&mut host, &ev, 90, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Fresh));

        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(2), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Fresh));
        assert!(host
            .proc
            .read("cluster/maui/status")
            .unwrap()
            .starts_with("fresh"));

        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(5), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Stale));
        assert_eq!(dmon.stats.nodes_suspected, 1);
        assert!(out.dead_peers.is_empty());
        assert!(host
            .proc
            .read("cluster/maui/status")
            .unwrap()
            .starts_with("stale"));

        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(10), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Dead));
        assert_eq!(out.dead_peers, vec![NodeId(1)]);
        assert_eq!(dmon.stats.nodes_evicted, 1);
        assert!(host
            .proc
            .read("cluster/maui/status")
            .unwrap()
            .starts_with("dead"));
        assert!(dmon.stats.heartbeats_missed > 0);
        // A Dead subscriber gets no traffic even while still registered.
        assert!(out.sends.iter().all(|(h, _, _)| h.to != NodeId(1)));
    }

    #[test]
    fn dead_peer_speaking_again_triggers_resync_replay() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // This node customized publisher 1 earlier.
        host.proc.set("cluster/maui/control", "").unwrap();
        host.proc
            .write("cluster/maui/control", "period cpu 2")
            .unwrap();
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);

        let ev = mon_from(NodeId(1), mon, 0, 0);
        dmon.on_event(&mut host, &ev, 90, SimTime::from_secs(1), &calib);
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(10), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Dead));

        // The publisher restarts: new epoch, stream reset.
        let ev = mon_from(NodeId(1), mon, 1, 0);
        dmon.on_event(&mut host, &ev, 90, SimTime::from_secs(11), &calib);
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Fresh));
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(12), &calib);
        assert_eq!(dmon.stats.resyncs, 1);
        let replayed: Vec<_> = out
            .sends
            .iter()
            .filter(|(h, ev, _)| h.to == NodeId(1) && ev.as_control().is_some())
            .collect();
        assert_eq!(replayed.len(), 1, "customization replayed");
        assert_eq!(
            replayed[0].1.as_control().unwrap(),
            &ControlMsg::SetParam {
                metric: "cpu".into(),
                param: ParamSpec::Period { period_s: 2.0 }
            }
        );
    }

    #[test]
    fn gap_detection_counts_dropped_stream_positions() {
        let (mut dmon, mut host, _dir, mon, _ctl, calib) = setup();
        for sseq in [0, 1, 4, 5] {
            let ev = mon_from(NodeId(2), mon, 0, sseq);
            dmon.on_event(&mut host, &ev, 90, SimTime::from_secs(1), &calib);
        }
        assert_eq!(dmon.stats.gaps_detected, 2, "positions 2 and 3 lost");
    }

    #[test]
    fn revive_clears_volatile_state_and_bumps_epoch() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        dmon.on_control(
            NodeId(1),
            &ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::Period { period_s: 2.0 },
            },
            &calib,
        );
        assert!(dmon.policy_for(NodeId(1)).is_some());
        let before = dmon.stats.control_handled;
        dmon.on_revive();
        assert_eq!(dmon.epoch(), 1);
        assert!(dmon.policy_for(NodeId(1)).is_none());
        assert_eq!(dmon.peer_health(NodeId(1)), None);
        assert_eq!(dmon.stats.control_handled, before, "stats survive");
    }

    #[test]
    fn heartbeat_refreshes_peer_without_data() {
        let (mut dmon, _host, _dir, mon, _ctl, calib) = setup();
        let hb = Event::heartbeat(
            mon.0,
            1,
            NodeId(1),
            NodeId(0),
            kecho::HeartbeatPayload {
                origin: NodeId(1),
                epoch: 0,
                stream_seq: 0,
            },
        );
        let cost = dmon.on_heartbeat(&hb, SimTime::from_secs(1), &calib);
        assert!(cost > SimDur::ZERO);
        assert_eq!(dmon.stats.heartbeats_received, 1);
        assert_eq!(dmon.stats.events_received, 0, "no data counted");
        assert_eq!(dmon.peer_health(NodeId(1)), Some(PeerHealth::Fresh));
    }

    #[test]
    fn event_pad_inflates_bytes() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        dmon.set_event_pad(5000);
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert!(out.sends[0].2 > 5000);
    }

    /// Source of a filter whose decision depends on per-subscriber
    /// `last_value_sent` — the effect pass must classify it Bypass.
    const IMPURE_SRC: &str =
        "{ if (input[LOADAVG].value > input[LOADAVG].last_value_sent) { output[0] = input[LOADAVG]; } }";

    /// Source of a pure passthrough filter — SnapshotKeyed class.
    const PURE_SRC: &str = "{ output[0] = input[LOADAVG]; }";

    #[test]
    fn impure_filter_bypasses_memo_per_subscriber() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: IMPURE_SRC.into(),
                },
                &calib,
            );
            assert!(!dmon.filter_for(sub).unwrap().cert().memo_safe);
        }
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        // Both subscribers got their own VM run despite identical source.
        assert_eq!(dmon.stats.memo_bypassed, 2);
        assert!(
            dmon.memo.is_empty(),
            "bypassed runs never populate the memo"
        );
    }

    #[test]
    fn impure_filter_diverges_per_subscriber_state() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: IMPURE_SRC.into(),
                },
                &calib,
            );
        }
        // Make LOADAVG visibly nonzero, poll once so the last-sent rows
        // exist, then desync the two subscribers' state by hand: sub 1
        // believes nothing was ever sent, sub 2 believes a huge value was.
        host.cpu.spawn_compute(SimTime::from_secs(1), "a");
        host.cpu.spawn_compute(SimTime::from_secs(1), "b");
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(100), &calib);
        if let Some(slot) = dmon.last_sent[1].first_mut() {
            *slot = Some((0.0, SimTime::from_secs(100)));
        }
        if let Some(slot) = dmon.last_sent[2].first_mut() {
            *slot = Some((1e12, SimTime::from_secs(100)));
        }
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(101), &calib);
        let recs = |to: NodeId| {
            out.sends
                .iter()
                .filter(|(h, _, _)| h.to == to)
                .filter_map(|(_, ev, _)| ev.as_monitoring().map(|m| m.records.len()))
                .sum::<usize>()
        };
        // Subscriber 1's threshold is still beatable, subscriber 2's is
        // not: same filter, same samples, different per-subscriber result.
        assert!(recs(NodeId(1)) > 0, "sub 1 should receive data");
        assert_eq!(recs(NodeId(2)), 0, "sub 2's last-sent gate stays shut");
        assert!(dmon.stats.memo_bypassed >= 4);
    }

    #[test]
    fn pure_filter_shares_one_memo_entry() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: PURE_SRC.into(),
                },
                &calib,
            );
            let cert = dmon.filter_for(sub).unwrap().cert();
            assert!(cert.memo_safe);
            assert_eq!(cert.effects.memo, MemoClass::SnapshotKeyed);
        }
        let out = dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.stats.memo_bypassed, 0);
        assert_eq!(dmon.memo.len(), 1, "one shared entry for both subscribers");
        let per_sub: Vec<_> = out
            .sends
            .iter()
            .filter_map(|(_, ev, _)| ev.as_monitoring())
            .collect();
        assert_eq!(per_sub.len(), 2);
        assert_eq!(per_sub[0].records, per_sub[1].records);
    }

    #[test]
    fn non_emitting_filter_memoizes_on_fingerprint_alone() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: "{ int x = 0; }".into(),
                },
                &calib,
            );
            assert_eq!(
                dmon.filter_for(sub).unwrap().cert().effects.memo,
                MemoClass::Shared
            );
        }
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert_eq!(dmon.memo.len(), 1);
        assert!(
            dmon.memo[0].inputs.is_empty(),
            "fingerprint-only entries never clone the input snapshot"
        );
        assert_eq!(dmon.stats.memo_bypassed, 0);
    }

    #[test]
    fn tainted_fingerprint_disables_sharing() {
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Simulate an FNV collision between distinct sources: a real one
        // is infeasible to construct, so file a different source under
        // PURE_SRC's fingerprint before it deploys. Admission detects
        // the collision and demotes the deployment to Bypass — the
        // quarantine is a deploy-time decision, never a per-poll check.
        dmon.fp_sources
            .insert(fnv1a(PURE_SRC.as_bytes()), "{ something else }".into());
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: PURE_SRC.into(),
                },
                &calib,
            );
        }
        dmon.poll(&mut host, &dir, mon, ctl, SimTime::from_secs(1), &calib);
        assert!(dmon.memo.is_empty());
        assert_eq!(dmon.stats.memo_bypassed, 2);
    }

    #[test]
    fn fingerprint_collision_detection_is_exact() {
        let (mut dmon, _host, _dir, _mon, _ctl, _calib) = setup();
        assert!(!dmon.note_filter_fingerprint("{ int a = 1; }"));
        // Same source again: no taint.
        assert!(!dmon.note_filter_fingerprint("{ int a = 1; }"));
        assert!(dmon.fp_tainted.is_empty());
        // A different source with a different fingerprint: no taint.
        assert!(!dmon.note_filter_fingerprint("{ int b = 2; }"));
        assert!(dmon.fp_tainted.is_empty());
        // Force the pathological case: a second source filed under the
        // first one's fingerprint.
        let fp = fnv1a(b"{ int a = 1; }");
        dmon.fp_sources.insert(fp, "{ something else }".into());
        assert!(dmon.note_filter_fingerprint("{ int a = 1; }"));
        assert!(dmon.fp_tainted.contains(&fp));
    }

    #[test]
    fn identical_sources_share_a_dense_id_and_compile_once_each() {
        let (mut dmon, _host, _dir, _mon, _ctl, calib) = setup();
        for sub in [NodeId(1), NodeId(2)] {
            dmon.on_control(
                sub,
                &ControlMsg::DeployFilter {
                    source: PURE_SRC.into(),
                },
                &calib,
            );
        }
        // Same source → same memo id, so the per-poll memo shares runs
        // on a u32 compare.
        assert_eq!(dmon.filters[&NodeId(1)].id, dmon.filters[&NodeId(2)].id);
        dmon.on_control(
            NodeId(2),
            &ControlMsg::DeployFilter {
                source: IMPURE_SRC.into(),
            },
            &calib,
        );
        // Distinct sources never share an id, even if their
        // fingerprints were to collide.
        assert_ne!(dmon.filters[&NodeId(1)].id, dmon.filters[&NodeId(2)].id);
        // Every admission was specialized into a register closure.
        assert_eq!(dmon.stats.filters_compiled, 3);
        assert_eq!(dmon.stats.interp_fallbacks, 0);
        assert!(dmon.filter_is_compiled(NodeId(1)));
    }

    #[test]
    fn stalled_outbox_sheds_oldest_and_drains_on_grant() {
        use kecho::INITIAL_CREDITS;
        let (mut dmon, mut host, dir, mon, ctl, calib) = setup();
        // Keep the failure detector out of the picture: this test never
        // delivers a frame, and eviction would reap the outboxes we are
        // trying to overflow.
        dmon.set_failure_bounds(SimDur::from_secs(100_000), SimDur::from_secs(200_000));

        // No grant ever arrives, so each stream burns its initial window
        // and parks events. The credit famine also walks the ladder down —
        // stretched polls plus the change-coarsening gate slow production,
        // so the load must keep moving for the digest records to keep
        // passing the gate and overflow the bounded outbox. A period-3
        // run-queue sawtooth (coprime with the top rung's stretch of 4)
        // guarantees every stretched sample sees a >10 % swing; polls sit
        // 120 s apart so the 60 s loadavg window settles between them.
        let polls = 220u64;
        let t = |s: u64| SimTime::from_secs(120 * s);
        let mut burst: Vec<simos::cpu::TaskId> = Vec::new();
        for s in 1..=polls {
            if s % 3 == 0 {
                for id in burst.drain(..) {
                    host.cpu.kill(t(s), id);
                }
            } else {
                for k in 0..4 {
                    burst.push(host.cpu.spawn_compute(t(s), format!("burst{s}-{k}")));
                }
            }
            dmon.poll(&mut host, &dir, mon, ctl, t(s), &calib);
            for peer in [NodeId(1), NodeId(2)] {
                assert!(dmon.outbox_len(peer) <= OUTBOX_CAP, "outbox over cap");
            }
        }
        assert_eq!(dmon.outbox_len(NodeId(1)), OUTBOX_CAP, "backlog at cap");
        assert_eq!(dmon.outbox_len(NodeId(2)), OUTBOX_CAP, "backlog at cap");
        assert_eq!(dmon.credits_for(NodeId(1)), 0, "window exhausted");
        assert!(dmon.stats.events_shed > 0, "overflow shed nothing");
        assert!(dmon.stats.credits_stalled > 0, "stall polls were counted");
        assert!(dmon.ladder_level() > 0, "famine never engaged the ladder");
        assert_eq!(
            dmon.stats.events_sent,
            2 * u64::from(INITIAL_CREDITS),
            "nothing left this node once the windows emptied"
        );

        // A grant from one subscriber reopens exactly that stream: the
        // backlog drains oldest-first up to the granted budget while the
        // other stream stays parked at the cap.
        dmon.on_control(
            NodeId(1),
            &ControlMsg::Credit {
                credits: INITIAL_CREDITS,
            },
            &calib,
        );
        let out = dmon.poll(&mut host, &dir, mon, ctl, t(polls + 1), &calib);
        let to1 = out
            .sends
            .iter()
            .filter(|(h, ev, _)| h.to == NodeId(1) && ev.as_monitoring().is_some())
            .count();
        assert_eq!(to1 as u32, INITIAL_CREDITS, "drained the granted budget");
        assert!(dmon.outbox_len(NodeId(1)) < OUTBOX_CAP);
        assert_eq!(dmon.outbox_len(NodeId(2)), OUTBOX_CAP, "no cross-talk");
    }
}
