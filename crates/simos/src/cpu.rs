//! Fluid fair-share CPU scheduler.
//!
//! Tasks share `n_cpus` processors equally (each runnable task gets
//! `min(1, n_cpus / runnable)` of a CPU). Between calls to
//! [`CpuSched::advance`], work accrues to runnable tasks at that share.
//! Two task kinds exist:
//!
//! * **compute** tasks model CPU hogs like linpack: always runnable,
//!   accumulating floating-point work; throughput in Mflops is derived
//!   from accumulated work over wall time;
//! * **service** tasks model kernel work (d-mon polling, event handling,
//!   stream processing): normally sleeping, woken to burn a caller-
//!   specified amount of CPU time. The caller asks how long the burn will
//!   take at the current share ([`CpuSched::service_cost`]) and schedules
//!   the completion itself.
//!
//! The scheduler maintains a run-queue length history so dproc's CPU_MON
//! can compute load averages over arbitrary, application-chosen windows —
//! the paper's point about `/proc/loadavg`'s fixed 1/5/15-minute windows
//! being too coarse.

use std::collections::VecDeque;

use simcore::{SimDur, SimTime};

/// Identifier of a task on one host's scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// Whether a task currently demands CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// On the run queue, receiving a share.
    Runnable,
    /// Blocked; receives nothing.
    Sleeping,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Compute,
    Service,
}

#[derive(Debug)]
struct Task {
    name: String,
    kind: Kind,
    state: TaskState,
    /// Accumulated CPU work, in flops for compute / cpu-seconds for service.
    work_done: f64,
    alive: bool,
}

/// The longest window any load-average query may use.
const MAX_HISTORY: SimDur = SimDur::from_secs(15 * 60);

/// Fluid fair-share scheduler for one host.
#[derive(Debug)]
pub struct CpuSched {
    n_cpus: u32,
    /// Peak floating-point throughput of one CPU, flops/sec. The paper's
    /// linpack baseline is 17.4 Mflops on a Pentium Pro 200.
    flops_per_sec: f64,
    tasks: Vec<Task>,
    last_advance: SimTime,
    /// Transitions of run-queue length: (time, new length). Pruned to
    /// `MAX_HISTORY`.
    rq_history: VecDeque<(SimTime, u32)>,
    runnable: u32,
    /// Lifetime busy cpu-seconds (all CPUs), for utilization accounting.
    busy_cpu_seconds: f64,
}

impl CpuSched {
    /// A scheduler with `n_cpus` processors of the given peak flops.
    pub fn new(n_cpus: u32, flops_per_sec: f64) -> Self {
        assert!(n_cpus > 0, "need at least one CPU");
        assert!(flops_per_sec > 0.0, "flops must be positive");
        let mut rq_history = VecDeque::new();
        rq_history.push_back((SimTime::ZERO, 0));
        CpuSched {
            n_cpus,
            flops_per_sec,
            tasks: Vec::new(),
            last_advance: SimTime::ZERO,
            rq_history,
            runnable: 0,
            busy_cpu_seconds: 0.0,
        }
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> u32 {
        self.n_cpus
    }

    /// Peak flops of one processor.
    pub fn flops_per_sec(&self) -> f64 {
        self.flops_per_sec
    }

    /// Spawn an always-runnable compute task (e.g. one linpack thread).
    pub fn spawn_compute(&mut self, now: SimTime, name: impl Into<String>) -> TaskId {
        self.advance(now);
        self.tasks.push(Task {
            name: name.into(),
            kind: Kind::Compute,
            state: TaskState::Runnable,
            work_done: 0.0,
            alive: true,
        });
        self.runnable += 1;
        self.rq_history.push_back((now, self.runnable));
        TaskId(self.tasks.len() - 1)
    }

    /// Spawn a service task, initially sleeping.
    pub fn spawn_service(&mut self, now: SimTime, name: impl Into<String>) -> TaskId {
        self.advance(now);
        self.tasks.push(Task {
            name: name.into(),
            kind: Kind::Service,
            state: TaskState::Sleeping,
            work_done: 0.0,
            alive: true,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Kill a task (removes it from the run queue; its counters freeze).
    pub fn kill(&mut self, now: SimTime, id: TaskId) {
        self.advance(now);
        let t = &mut self.tasks[id.0];
        if !t.alive {
            return;
        }
        if t.state == TaskState::Runnable {
            self.runnable -= 1;
            self.rq_history.push_back((now, self.runnable));
        }
        t.alive = false;
        t.state = TaskState::Sleeping;
    }

    /// Change a task's state; updates the run-queue history.
    pub fn set_state(&mut self, now: SimTime, id: TaskId, state: TaskState) {
        self.advance(now);
        let t = &mut self.tasks[id.0];
        assert!(t.alive, "set_state on dead task {}", t.name);
        if t.state == state {
            return;
        }
        t.state = state;
        match state {
            TaskState::Runnable => self.runnable += 1,
            TaskState::Sleeping => self.runnable -= 1,
        }
        self.rq_history.push_back((now, self.runnable));
        self.prune_history(now);
    }

    fn prune_history(&mut self, now: SimTime) {
        let cutoff = now - MAX_HISTORY;
        // Keep at least one entry at/before the cutoff so windowed averages
        // know the level at the window start.
        while self.rq_history.len() >= 2 && self.rq_history[1].0 <= cutoff {
            self.rq_history.pop_front();
        }
    }

    /// Per-runnable-task CPU share in `[0, 1]` (fraction of one processor).
    pub fn share(&self) -> f64 {
        if self.runnable == 0 {
            return 1.0;
        }
        (self.n_cpus as f64 / self.runnable as f64).min(1.0)
    }

    /// Share a task *would* get if one more task became runnable.
    pub fn share_with_extra(&self) -> f64 {
        (self.n_cpus as f64 / (self.runnable + 1) as f64).min(1.0)
    }

    /// Accrue work to runnable tasks since the last advance.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt <= 0.0 {
            self.last_advance = self.last_advance.max(now);
            return;
        }
        let share = self.share();
        let mut busy = 0.0;
        for t in &mut self.tasks {
            if t.alive && t.state == TaskState::Runnable {
                let cpu_sec = share * dt;
                busy += cpu_sec;
                match t.kind {
                    Kind::Compute => t.work_done += cpu_sec * self.flops_per_sec,
                    Kind::Service => t.work_done += cpu_sec,
                }
            }
        }
        self.busy_cpu_seconds += busy;
        self.last_advance = now;
    }

    /// Wall-clock duration a burn of `cpu_seconds` will take for a service
    /// task that is about to become runnable, at current load.
    pub fn service_cost(&self, cpu_seconds: f64) -> SimDur {
        assert!(cpu_seconds >= 0.0, "negative cpu cost");
        SimDur::from_secs_f64(cpu_seconds / self.share_with_extra())
    }

    /// Current run-queue length.
    pub fn runnable(&self) -> u32 {
        self.runnable
    }

    /// Number of live tasks.
    pub fn live_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.alive).count()
    }

    /// Accumulated work of a task: flops for compute tasks, cpu-seconds for
    /// service tasks.
    pub fn work_done(&self, now_unused: SimTime, id: TaskId) -> f64 {
        let _ = now_unused;
        self.tasks[id.0].work_done
    }

    /// Accumulated work *including* the currently elapsing interval.
    pub fn work_done_at(&mut self, now: SimTime, id: TaskId) -> f64 {
        self.advance(now);
        self.tasks[id.0].work_done
    }

    /// Task display name.
    pub fn task_name(&self, id: TaskId) -> &str {
        &self.tasks[id.0].name
    }

    /// Average run-queue length over the window `[now - period, now]` —
    /// dproc CPU_MON's headline metric.
    pub fn loadavg(&self, now: SimTime, period: SimDur) -> f64 {
        assert!(!period.is_zero(), "zero loadavg window");
        let start = now - period;
        let mut level = self.rq_history.front().map_or(0, |&(_, l)| l);
        let mut weighted = 0.0;
        let mut cursor = start;
        for &(t, l) in &self.rq_history {
            if t <= start {
                level = l;
                continue;
            }
            let seg_end = t.min(now);
            if seg_end > cursor {
                weighted += level as f64 * seg_end.since(cursor).as_secs_f64();
                cursor = seg_end;
            }
            level = l;
            if t >= now {
                break;
            }
        }
        if now > cursor {
            weighted += level as f64 * now.since(cursor).as_secs_f64();
        }
        weighted / period.as_secs_f64()
    }

    /// Lifetime busy CPU-seconds across all processors (feeds the battery
    /// model's activity billing).
    pub fn busy_cpu_seconds(&self) -> f64 {
        self.busy_cpu_seconds
    }

    /// Fraction of total CPU capacity used since time zero.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64() * self.n_cpus as f64;
        if elapsed <= 0.0 {
            0.0
        } else {
            (self.busy_cpu_seconds / elapsed).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> CpuSched {
        CpuSched::new(1, 17.4e6)
    }

    #[test]
    fn single_compute_task_gets_full_cpu() {
        let mut s = sched();
        let t = s.spawn_compute(SimTime::ZERO, "linpack");
        s.advance(SimTime::from_secs(10));
        let flops = s.work_done(SimTime::from_secs(10), t);
        assert!((flops - 174e6).abs() < 1.0, "flops {flops}");
    }

    #[test]
    fn two_tasks_split_one_cpu() {
        let mut s = sched();
        let a = s.spawn_compute(SimTime::ZERO, "a");
        let b = s.spawn_compute(SimTime::ZERO, "b");
        assert!((s.share() - 0.5).abs() < 1e-12);
        s.advance(SimTime::from_secs(10));
        assert!((s.work_done(SimTime::ZERO, a) - 87e6).abs() < 1.0);
        assert!((s.work_done(SimTime::ZERO, b) - 87e6).abs() < 1.0);
    }

    #[test]
    fn multi_cpu_no_contention_below_capacity() {
        let mut s = CpuSched::new(4, 1e6);
        for i in 0..4 {
            s.spawn_compute(SimTime::ZERO, format!("t{i}"));
        }
        assert_eq!(s.share(), 1.0);
        // Fifth task forces sharing: 4 cpus / 5 tasks.
        s.spawn_compute(SimTime::ZERO, "t5");
        assert!((s.share() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn service_task_sleeps_by_default() {
        let mut s = sched();
        let svc = s.spawn_service(SimTime::ZERO, "dmon");
        s.advance(SimTime::from_secs(5));
        assert_eq!(s.work_done(SimTime::ZERO, svc), 0.0);
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn service_cost_scales_with_load() {
        let mut s = sched();
        // Idle machine: 10ms of CPU takes 10ms.
        assert_eq!(s.service_cost(0.010), SimDur::from_millis(10));
        // One linpack thread: the service task will share 50/50.
        s.spawn_compute(SimTime::ZERO, "linpack");
        assert_eq!(s.service_cost(0.010), SimDur::from_millis(20));
        // Three more: share is 1/5.
        for i in 0..3 {
            s.spawn_compute(SimTime::ZERO, format!("l{i}"));
        }
        assert_eq!(s.service_cost(0.010), SimDur::from_millis(50));
    }

    #[test]
    fn waking_service_task_slows_compute() {
        let mut s = sched();
        let c = s.spawn_compute(SimTime::ZERO, "linpack");
        let svc = s.spawn_service(SimTime::ZERO, "dmon");
        s.set_state(SimTime::from_secs(10), svc, TaskState::Runnable);
        s.set_state(SimTime::from_secs(20), svc, TaskState::Sleeping);
        s.advance(SimTime::from_secs(30));
        // linpack: 10s full + 10s half + 10s full = 25 cpu-seconds.
        let flops = s.work_done(SimTime::ZERO, c);
        assert!((flops - 25.0 * 17.4e6).abs() < 1.0, "flops {flops}");
        // the service task burned 5 cpu-seconds
        assert!((s.work_done(SimTime::ZERO, svc) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn loadavg_windows() {
        let mut s = sched();
        // 0 runnable until t=10, then 2 runnable until t=20, then 1.
        let a = s.spawn_compute(SimTime::from_secs(10), "a");
        let _b = s.spawn_compute(SimTime::from_secs(10), "b");
        s.kill(SimTime::from_secs(20), a);
        // window [10,30]: 2 for 10s, 1 for 10s => 1.5
        let la = s.loadavg(SimTime::from_secs(30), SimDur::from_secs(20));
        assert!((la - 1.5).abs() < 1e-9, "loadavg {la}");
        // window [25,30]: 1
        let la = s.loadavg(SimTime::from_secs(30), SimDur::from_secs(5));
        assert!((la - 1.0).abs() < 1e-9, "loadavg {la}");
        // window [0,30]: (0*10 + 2*10 + 1*10)/30 = 1
        let la = s.loadavg(SimTime::from_secs(30), SimDur::from_secs(30));
        assert!((la - 1.0).abs() < 1e-9, "loadavg {la}");
    }

    #[test]
    fn kill_removes_from_runqueue() {
        let mut s = sched();
        let a = s.spawn_compute(SimTime::ZERO, "a");
        assert_eq!(s.runnable(), 1);
        assert_eq!(s.live_tasks(), 1);
        s.kill(SimTime::from_secs(1), a);
        assert_eq!(s.runnable(), 0);
        assert_eq!(s.live_tasks(), 0);
        s.kill(SimTime::from_secs(2), a); // idempotent
        let flops = s.work_done(SimTime::ZERO, a);
        assert!((flops - 17.4e6).abs() < 1.0, "counters freeze at kill");
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut s = CpuSched::new(2, 1e6);
        s.spawn_compute(SimTime::ZERO, "a");
        s.advance(SimTime::from_secs(10));
        // 1 task on 2 cpus: 50% utilization.
        assert!((s.utilization(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut s = sched();
        let t = s.spawn_compute(SimTime::ZERO, "a");
        s.advance(SimTime::from_secs(1));
        s.advance(SimTime::from_secs(1));
        let flops = s.work_done_at(SimTime::from_secs(1), t);
        assert!((flops - 17.4e6).abs() < 1.0);
        assert_eq!(s.task_name(t), "a");
    }

    #[test]
    #[should_panic(expected = "set_state on dead task")]
    fn set_state_on_dead_task_panics() {
        let mut s = sched();
        let a = s.spawn_compute(SimTime::ZERO, "a");
        s.kill(SimTime::ZERO, a);
        s.set_state(SimTime::ZERO, a, TaskState::Runnable);
    }
}
