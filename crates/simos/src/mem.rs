//! Physical memory model with `nr_free_pages` semantics.
//!
//! dproc's MEM_MON reports available memory by calling the kernel's
//! `nr_free_pages` function. This model tracks page-granular allocations
//! tagged by owner so workloads (and the stream clients that buffer data)
//! can exert realistic memory pressure.

use std::collections::HashMap;

/// Page size in bytes (matches x86 Linux).
pub const PAGE_SIZE: u64 = 4096;

/// Physical memory of one host.
#[derive(Debug)]
pub struct Memory {
    total_pages: u64,
    free_pages: u64,
    /// Pages held per allocation tag.
    allocations: HashMap<String, u64>,
}

impl Memory {
    /// A host with `total_bytes` of RAM (rounded down to whole pages).
    pub fn new(total_bytes: u64) -> Self {
        let total_pages = total_bytes / PAGE_SIZE;
        assert!(total_pages > 0, "host needs at least one page of RAM");
        Memory {
            total_pages,
            free_pages: total_pages,
            allocations: HashMap::new(),
        }
    }

    /// The paper's testbed nodes: 512 MB RAM.
    pub fn testbed() -> Self {
        Memory::new(512 * 1024 * 1024)
    }

    /// Total pages of RAM.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// `nr_free_pages()` — what MEM_MON reads.
    pub fn nr_free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Free memory in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free_pages * PAGE_SIZE
    }

    /// Allocate `bytes` (rounded up to pages) under `tag`. Returns `false`
    /// (and allocates nothing) if insufficient memory.
    pub fn alloc(&mut self, tag: &str, bytes: u64) -> bool {
        let pages = bytes.div_ceil(PAGE_SIZE);
        if pages > self.free_pages {
            return false;
        }
        self.free_pages -= pages;
        *self.allocations.entry(tag.to_string()).or_insert(0) += pages;
        true
    }

    /// Free `bytes` (rounded up to pages) from `tag`; clamps to what the
    /// tag holds.
    pub fn free(&mut self, tag: &str, bytes: u64) {
        let pages = bytes.div_ceil(PAGE_SIZE);
        if let Some(held) = self.allocations.get_mut(tag) {
            let released = pages.min(*held);
            *held -= released;
            self.free_pages += released;
            if *held == 0 {
                self.allocations.remove(tag);
            }
        }
    }

    /// Release everything held under `tag`.
    pub fn free_all(&mut self, tag: &str) {
        if let Some(held) = self.allocations.remove(tag) {
            self.free_pages += held;
        }
    }

    /// Pages currently held by `tag`.
    pub fn held_pages(&self, tag: &str) -> u64 {
        self.allocations.get(tag).copied().unwrap_or(0)
    }

    /// Fraction of memory in use.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_pages as f64 / self.total_pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_free() {
        let m = Memory::new(1024 * 1024);
        assert_eq!(m.total_pages(), 256);
        assert_eq!(m.nr_free_pages(), 256);
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn alloc_rounds_to_pages() {
        let mut m = Memory::new(1024 * 1024);
        assert!(m.alloc("app", 1)); // 1 byte => 1 page
        assert_eq!(m.nr_free_pages(), 255);
        assert!(m.alloc("app", PAGE_SIZE + 1)); // => 2 pages
        assert_eq!(m.nr_free_pages(), 253);
        assert_eq!(m.held_pages("app"), 3);
    }

    #[test]
    fn alloc_fails_when_exhausted() {
        let mut m = Memory::new(PAGE_SIZE * 4);
        assert!(m.alloc("a", PAGE_SIZE * 4));
        assert!(!m.alloc("b", 1));
        assert_eq!(m.nr_free_pages(), 0);
        assert_eq!(m.held_pages("b"), 0);
    }

    #[test]
    fn free_restores_pages() {
        let mut m = Memory::new(PAGE_SIZE * 10);
        m.alloc("a", PAGE_SIZE * 6);
        m.free("a", PAGE_SIZE * 2);
        assert_eq!(m.nr_free_pages(), 6);
        // Freeing more than held clamps.
        m.free("a", PAGE_SIZE * 100);
        assert_eq!(m.nr_free_pages(), 10);
        assert_eq!(m.held_pages("a"), 0);
    }

    #[test]
    fn free_all_releases_tag() {
        let mut m = Memory::new(PAGE_SIZE * 10);
        m.alloc("a", PAGE_SIZE * 3);
        m.alloc("b", PAGE_SIZE * 2);
        m.free_all("a");
        assert_eq!(m.nr_free_pages(), 8);
        assert_eq!(m.held_pages("b"), 2);
        assert!((m.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn testbed_is_512mb() {
        let m = Memory::testbed();
        assert_eq!(m.free_bytes(), 512 * 1024 * 1024);
    }
}
