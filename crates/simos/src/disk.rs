//! Disk model: a FIFO device with seek + transfer service times and the
//! counters DISK_MON reports (reads, writes, sectors read/written, over a
//! configurable window).

use simcore::{SimDur, SimTime};

use simnet::link::BytesWindow;

/// Sector size in bytes (classic 512-byte sectors, as Linux 2.4 counted).
pub const SECTOR_SIZE: u64 = 512;

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDir {
    /// Read from the platter.
    Read,
    /// Write to the platter.
    Write,
}

/// One host's disk.
#[derive(Debug)]
pub struct Disk {
    /// Sustained transfer rate, bytes/sec.
    transfer_bps: f64,
    /// Fixed per-request positioning cost.
    seek: SimDur,
    busy_until: SimTime,
    reads: u64,
    writes: u64,
    sectors_read: u64,
    sectors_written: u64,
    read_window: BytesWindow,
    write_window: BytesWindow,
    ops_window: BytesWindow,
}

impl Disk {
    /// A disk with the given sustained transfer rate and per-request seek
    /// cost; windowed rates use `window`.
    pub fn new(transfer_bytes_per_sec: f64, seek: SimDur, window: SimDur) -> Self {
        assert!(
            transfer_bytes_per_sec > 0.0,
            "transfer rate must be positive"
        );
        Disk {
            transfer_bps: transfer_bytes_per_sec,
            seek,
            busy_until: SimTime::ZERO,
            reads: 0,
            writes: 0,
            sectors_read: 0,
            sectors_written: 0,
            read_window: BytesWindow::new(window),
            write_window: BytesWindow::new(window),
            ops_window: BytesWindow::new(window),
        }
    }

    /// A disk of the paper's era: ~20 MB/s sustained, 8 ms seek, 1 s window
    /// (DISK_MON's default period).
    pub fn testbed() -> Self {
        Disk::new(20e6, SimDur::from_millis(8), SimDur::from_secs(1))
    }

    /// Submit an I/O of `bytes`; returns `(start, finish)` — FIFO behind
    /// earlier requests.
    pub fn submit(&mut self, now: SimTime, dir: IoDir, bytes: u64) -> (SimTime, SimTime) {
        let sectors = bytes.div_ceil(SECTOR_SIZE);
        let service = self.seek + SimDur::from_secs_f64(bytes as f64 / self.transfer_bps);
        let start = self.busy_until.max(now);
        let finish = start + service;
        self.busy_until = finish;
        match dir {
            IoDir::Read => {
                self.reads += 1;
                self.sectors_read += sectors;
                self.read_window.record(now, sectors);
            }
            IoDir::Write => {
                self.writes += 1;
                self.sectors_written += sectors;
                self.write_window.record(now, sectors);
            }
        }
        self.ops_window.record(now, 1);
        (start, finish)
    }

    /// Pending work: time until the disk is idle.
    pub fn backlog(&self, now: SimTime) -> SimDur {
        self.busy_until.since(now)
    }

    /// Lifetime read-request count.
    pub fn reads(&self) -> u64 {
        self.reads
    }
    /// Lifetime write-request count.
    pub fn writes(&self) -> u64 {
        self.writes
    }
    /// Lifetime sectors read.
    pub fn sectors_read(&self) -> u64 {
        self.sectors_read
    }
    /// Lifetime sectors written.
    pub fn sectors_written(&self) -> u64 {
        self.sectors_written
    }

    /// Sectors read within the sliding window ending at `now`.
    pub fn sectors_read_rate(&mut self, now: SimTime) -> u64 {
        self.read_window.bytes(now)
    }

    /// Sectors written within the sliding window ending at `now`.
    pub fn sectors_written_rate(&mut self, now: SimTime) -> u64 {
        self.write_window.bytes(now)
    }

    /// I/O operations within the sliding window ending at `now` — the
    /// "disk usage" number the paper's filters compare against thresholds.
    pub fn ops_rate(&mut self, now: SimTime) -> u64 {
        self.ops_window.bytes(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(20e6, SimDur::from_millis(8), SimDur::from_secs(1))
    }

    #[test]
    fn counters_accumulate() {
        let mut d = disk();
        d.submit(SimTime::ZERO, IoDir::Read, 4096);
        d.submit(SimTime::ZERO, IoDir::Write, 1024);
        d.submit(SimTime::ZERO, IoDir::Write, 100);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 2);
        assert_eq!(d.sectors_read(), 8);
        assert_eq!(d.sectors_written(), 2 + 1);
    }

    #[test]
    fn service_time_is_seek_plus_transfer() {
        let mut d = disk();
        let (s, f) = d.submit(SimTime::ZERO, IoDir::Read, 2_000_000);
        assert_eq!(s, SimTime::ZERO);
        // 8ms seek + 100ms transfer
        assert_eq!(f, SimTime::from_millis(108));
    }

    #[test]
    fn fifo_queueing() {
        let mut d = disk();
        let (_, f1) = d.submit(SimTime::ZERO, IoDir::Read, 2_000_000);
        let (s2, _) = d.submit(SimTime::ZERO, IoDir::Write, 100);
        assert_eq!(s2, f1);
        assert!(d.backlog(SimTime::ZERO) > SimDur::from_millis(100));
    }

    #[test]
    fn windowed_rates_slide() {
        let mut d = disk();
        d.submit(SimTime::ZERO, IoDir::Read, 512 * 100);
        assert_eq!(d.sectors_read_rate(SimTime::from_millis(500)), 100);
        assert_eq!(d.sectors_read_rate(SimTime::from_secs(2)), 0);
        d.submit(SimTime::from_secs(2), IoDir::Write, 512 * 10);
        assert_eq!(d.sectors_written_rate(SimTime::from_secs(2)), 10);
        assert_eq!(d.ops_rate(SimTime::from_secs(2)), 1);
    }

    #[test]
    fn testbed_has_sane_defaults() {
        let mut d = Disk::testbed();
        let (_, f) = d.submit(SimTime::ZERO, IoDir::Write, 20_000_000);
        assert!(f > SimTime::from_millis(1000) && f < SimTime::from_millis(1100));
    }
}
