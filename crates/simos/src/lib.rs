//! `simos` — a simulated host kernel: the observable substrate that dproc's
//! monitoring modules read.
//!
//! The paper's dproc runs inside Linux 2.4 kernels on quad Pentium Pro
//! nodes and reports run-queue lengths, free memory, disk activity,
//! per-connection network statistics, and CPU performance counters. This
//! crate models a host exposing exactly those observables:
//!
//! * [`cpu`] — a fluid fair-share multi-CPU scheduler with compute tasks
//!   (linpack-style) and service tasks (kernel work), a run-queue history
//!   for windowed load averages, and flop accounting,
//! * [`mem`] — physical memory pages with `nr_free_pages` semantics,
//! * [`disk`] — a FIFO disk with read/write/sector counters and windowed
//!   rates,
//! * [`pmc`] — performance-monitoring counters (cache misses, instructions)
//!   driven by CPU work and by data movement,
//! * [`procfs`] — the `/proc` pseudo-filesystem: a deterministic tree of
//!   text entries with queued control-file writes,
//! * [`host`] — the bundle tying the above together with a connection
//!   table, presenting one simulated machine,
//! * [`workload`] — load generators (linpack batches, disk load).
//!
//! Like `simnet`, everything is a pure state machine: the host advances
//! when told (`advance(now)`) and computes durations for the caller to
//! schedule; it never owns an event loop.

pub mod cpu;
pub mod disk;
pub mod host;
pub mod mem;
pub mod pmc;
pub mod power;
pub mod procfs;
pub mod workload;

pub use cpu::{CpuSched, TaskId, TaskState};
pub use disk::Disk;
pub use host::Host;
pub use mem::Memory;
pub use pmc::Pmc;
pub use power::Battery;
pub use procfs::{ProcFs, ProcHandle};
