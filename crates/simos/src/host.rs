//! One simulated machine: CPU scheduler, memory, disk, PMCs, connection
//! table, and its `/proc` filesystem.

use simcore::{SimDur, SimTime};
use simnet::{ConnTrack, NodeId};

use crate::cpu::CpuSched;
use crate::disk::Disk;
use crate::mem::Memory;
use crate::pmc::{Pmc, PmcEvent};
use crate::procfs::ProcFs;

/// Static configuration of a host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Number of processors.
    pub n_cpus: u32,
    /// Peak flops of one processor.
    pub flops_per_sec: f64,
    /// RAM in bytes.
    pub ram_bytes: u64,
}

impl HostConfig {
    /// The paper's testbed node: quad Pentium Pro 200 MHz, 512 MB RAM,
    /// 17.4 Mflops linpack per CPU.
    pub fn testbed() -> Self {
        HostConfig {
            n_cpus: 4,
            flops_per_sec: 17.4e6,
            ram_bytes: 512 * 1024 * 1024,
        }
    }

    /// A uniprocessor variant, used for display-class client nodes.
    pub fn uniprocessor() -> Self {
        HostConfig {
            n_cpus: 1,
            flops_per_sec: 17.4e6,
            ram_bytes: 512 * 1024 * 1024,
        }
    }

    /// An iPAQ-class handheld: one slow CPU (~1/6 of a testbed node) and
    /// 64 MB of RAM — the paper's resource-constrained wireless client.
    pub fn handheld() -> Self {
        HostConfig {
            n_cpus: 1,
            flops_per_sec: 3e6,
            ram_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A simulated machine.
pub struct Host {
    /// Hostname (e.g. `alan`, `maui`, `etna`).
    pub name: String,
    /// Position on the network.
    pub node: NodeId,
    /// CPU scheduler.
    pub cpu: CpuSched,
    /// Physical memory.
    pub mem: Memory,
    /// Disk device.
    pub disk: Disk,
    /// Performance counters.
    pub pmc: Pmc,
    /// Kernel connection table.
    pub conns: ConnTrack,
    /// The `/proc` filesystem.
    pub proc: ProcFs,
    /// NIC line rate, bits/sec (what interface counters are measured
    /// against).
    pub link_capacity_bps: f64,
    /// Background traffic currently crossing this host's NIC that does not
    /// belong to tracked connections (e.g. an Iperf flood) — the interface
    /// counters see it even though the connection table does not.
    pub observed_background_bps: f64,
    /// Battery, for mobile/embedded hosts (None on mains-powered nodes).
    pub battery: Option<crate::power::Battery>,
}

impl Host {
    /// Build a host attached to network node `node`.
    pub fn new(name: impl Into<String>, node: NodeId, cfg: &HostConfig) -> Self {
        Host {
            name: name.into(),
            node,
            cpu: CpuSched::new(cfg.n_cpus, cfg.flops_per_sec),
            mem: Memory::new(cfg.ram_bytes),
            disk: Disk::testbed(),
            pmc: Pmc::new(),
            conns: ConnTrack::new(),
            proc: ProcFs::new(),
            link_capacity_bps: 100e6,
            observed_background_bps: 0.0,
            battery: None,
        }
    }

    /// Attach a battery (marks this host as a mobile device).
    pub fn with_battery(mut self, battery: crate::power::Battery) -> Self {
        self.battery = Some(battery);
        self
    }

    /// Bill NIC traffic to the battery, if any.
    pub fn on_net_bytes(&mut self, bytes: u64) {
        if let Some(b) = &mut self.battery {
            b.on_net_bytes(bytes);
        }
    }

    /// Available network bandwidth as the kernel can estimate it from its
    /// interface counters: line rate minus background traffic minus the
    /// tracked connections' recent throughput. Never negative.
    pub fn available_bps(&mut self, now: SimTime) -> f64 {
        let used = self.conns.total_used_bps(now);
        (self.link_capacity_bps - self.observed_background_bps - used).max(0.0)
    }

    /// Advance internal clocks (CPU accounting, battery drain) to `now`.
    pub fn advance(&mut self, now: SimTime) {
        self.cpu.advance(now);
        if let Some(b) = &mut self.battery {
            b.advance(now, self.cpu.busy_cpu_seconds());
        }
    }

    /// Refresh the host's *local* `/proc` entries from live kernel state —
    /// what stock Linux entries (`loadavg`, `meminfo`, ...) show before
    /// dproc adds the `cluster/` subtree.
    pub fn refresh_local_proc(&mut self, now: SimTime) {
        self.advance(now);
        let la1 = self.cpu.loadavg(now, SimDur::from_secs(60));
        let la5 = self.cpu.loadavg(now, SimDur::from_secs(300));
        let la15 = self.cpu.loadavg(now, SimDur::from_secs(900));
        self.proc
            .set("loadavg", format!("{la1:.2} {la5:.2} {la15:.2}"))
            .expect("static path");
        self.proc
            .set(
                "meminfo",
                format!(
                    "MemTotal: {} kB\nMemFree: {} kB",
                    self.mem.total_pages() * 4,
                    self.mem.nr_free_pages() * 4
                ),
            )
            .expect("static path");
        let sectors_r = self.disk.sectors_read_rate(now);
        let sectors_w = self.disk.sectors_written_rate(now);
        self.proc
            .set(
                "diskstats",
                format!(
                    "reads {} writes {} sectors_read {} sectors_written {} sec_r_rate {} sec_w_rate {}",
                    self.disk.reads(),
                    self.disk.writes(),
                    self.disk.sectors_read(),
                    self.disk.sectors_written(),
                    sectors_r,
                    sectors_w
                ),
            )
            .expect("static path");
        let total_bps = self.conns.total_used_bps(now);
        self.proc
            .set(
                "netstat",
                format!("connections {} used_bps {:.0}", self.conns.len(), total_bps),
            )
            .expect("static path");
        self.proc
            .set(
                "pmc",
                format!(
                    "cache_misses {} instructions {} cycles {}",
                    self.pmc.read(PmcEvent::CacheMisses),
                    self.pmc.read(PmcEvent::Instructions),
                    self.pmc.read(PmcEvent::Cycles)
                ),
            )
            .expect("static path");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_host_has_paper_specs() {
        let h = Host::new("alan", NodeId(0), &HostConfig::testbed());
        assert_eq!(h.cpu.n_cpus(), 4);
        assert_eq!(h.mem.free_bytes(), 512 * 1024 * 1024);
        assert_eq!(h.name, "alan");
        assert_eq!(h.node, NodeId(0));
    }

    #[test]
    fn refresh_populates_standard_entries() {
        let mut h = Host::new("alan", NodeId(0), &HostConfig::testbed());
        h.cpu.spawn_compute(SimTime::ZERO, "burn");
        h.refresh_local_proc(SimTime::from_secs(60));
        let la = h.proc.read("loadavg").unwrap();
        assert!(la.starts_with("1.00"), "loadavg {la}");
        assert!(h.proc.read("meminfo").unwrap().contains("MemFree"));
        assert!(h.proc.read("diskstats").unwrap().contains("reads 0"));
        assert!(h.proc.read("netstat").unwrap().contains("connections 0"));
        assert!(h.proc.read("pmc").unwrap().contains("cache_misses"));
    }

    #[test]
    fn available_bps_subtracts_background_and_connections() {
        let mut h = Host::new("x", NodeId(0), &HostConfig::testbed());
        assert_eq!(h.available_bps(SimTime::ZERO), 100e6);
        h.observed_background_bps = 60e6;
        assert_eq!(h.available_bps(SimTime::ZERO), 40e6);
        h.observed_background_bps = 200e6;
        assert_eq!(h.available_bps(SimTime::ZERO), 0.0);
    }

    #[test]
    fn refresh_reflects_activity() {
        let mut h = Host::new("etna", NodeId(1), &HostConfig::uniprocessor());
        h.mem.alloc("app", 1024 * 1024);
        h.disk
            .submit(SimTime::ZERO, crate::disk::IoDir::Write, 4096);
        h.pmc.on_data_moved(4096);
        h.refresh_local_proc(SimTime::from_secs(1));
        assert!(h.proc.read("diskstats").unwrap().contains("writes 1"));
        let pmc = h.proc.read("pmc").unwrap();
        assert!(pmc.contains("cache_misses 128"), "pmc: {pmc}");
    }
}
