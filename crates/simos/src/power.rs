//! Battery/power model.
//!
//! The paper's future work singles out mobile and embedded systems where
//! "power has to be considered a first-class resource", and its
//! extensibility pitch includes "monitoring of the current battery power
//! in mobile devices" as a dynamically deployable module. This model is
//! that substrate: a battery drained by a constant idle floor, by CPU
//! busy-time, and by NIC traffic — the three dominant consumers of a
//! 2003-era handheld.

use simcore::SimTime;

/// A battery with activity-driven drain.
#[derive(Debug, Clone)]
pub struct Battery {
    capacity_j: f64,
    level_j: f64,
    /// Constant platform draw, watts.
    idle_w: f64,
    /// Additional draw per busy CPU-second, joules.
    cpu_j_per_busy_s: f64,
    /// Radio cost per byte moved, joules.
    net_j_per_byte: f64,
    last_update: SimTime,
    /// Busy CPU-seconds already billed.
    billed_cpu_s: f64,
}

impl Battery {
    /// A fresh, full battery.
    pub fn new(capacity_j: f64, idle_w: f64, cpu_j_per_busy_s: f64, net_j_per_byte: f64) -> Self {
        assert!(capacity_j > 0.0, "battery needs capacity");
        Battery {
            capacity_j,
            level_j: capacity_j,
            idle_w,
            cpu_j_per_busy_s,
            net_j_per_byte,
            last_update: SimTime::ZERO,
            billed_cpu_s: 0.0,
        }
    }

    /// An iPAQ-class handheld: ~5.3 Wh (19 kJ), 0.7 W idle, 1.3 J per
    /// busy CPU-second, ~2 µJ per byte on 2003-era WLAN.
    pub fn handheld() -> Self {
        Battery::new(19_000.0, 0.7, 1.3, 2e-6)
    }

    /// Advance the idle+CPU drain to `now`. `busy_cpu_seconds_total` is the
    /// host scheduler's lifetime busy counter; the battery bills the delta.
    pub fn advance(&mut self, now: SimTime, busy_cpu_seconds_total: f64) {
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            self.level_j -= self.idle_w * dt;
            self.last_update = now;
        }
        let new_busy = (busy_cpu_seconds_total - self.billed_cpu_s).max(0.0);
        if new_busy > 0.0 {
            self.level_j -= new_busy * self.cpu_j_per_busy_s;
            self.billed_cpu_s = busy_cpu_seconds_total;
        }
        self.level_j = self.level_j.max(0.0);
    }

    /// Bill radio traffic.
    pub fn on_net_bytes(&mut self, bytes: u64) {
        self.level_j = (self.level_j - bytes as f64 * self.net_j_per_byte).max(0.0);
    }

    /// Remaining charge, joules.
    pub fn level_j(&self) -> f64 {
        self.level_j
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.level_j / self.capacity_j
    }

    /// True once fully drained.
    pub fn is_empty(&self) -> bool {
        self.level_j <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn battery() -> Battery {
        Battery::new(1000.0, 1.0, 2.0, 1e-3)
    }

    #[test]
    fn idle_drain_is_linear() {
        let mut b = battery();
        b.advance(SimTime::from_secs(100), 0.0);
        assert!((b.level_j() - 900.0).abs() < 1e-9);
        assert!((b.fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cpu_busy_time_bills_once() {
        let mut b = battery();
        b.advance(SimTime::from_secs(10), 5.0);
        // 10 J idle + 10 J cpu.
        assert!((b.level_j() - 980.0).abs() < 1e-9);
        // Re-advancing with the same busy total bills nothing extra.
        b.advance(SimTime::from_secs(10), 5.0);
        assert!((b.level_j() - 980.0).abs() < 1e-9);
        b.advance(SimTime::from_secs(10), 7.0);
        assert!((b.level_j() - 976.0).abs() < 1e-9);
    }

    #[test]
    fn network_traffic_drains() {
        let mut b = battery();
        b.on_net_bytes(100_000);
        assert!((b.level_j() - 900.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_at_zero() {
        let mut b = battery();
        b.advance(SimTime::from_secs(10_000), 0.0);
        assert_eq!(b.level_j(), 0.0);
        assert!(b.is_empty());
        b.on_net_bytes(1);
        assert_eq!(b.level_j(), 0.0);
    }

    #[test]
    fn handheld_lives_hours_idle() {
        let mut b = Battery::handheld();
        b.advance(SimTime::from_secs(3600 * 4), 0.0);
        assert!(!b.is_empty(), "4 idle hours leave charge");
        assert!(b.fraction() < 0.6);
    }
}
