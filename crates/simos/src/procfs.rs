//! The `/proc` pseudo-filesystem.
//!
//! dproc's whole user interface is `/proc`: local metrics appear as text
//! files, remote nodes' metrics appear under `/proc/cluster/<node>/...`,
//! and applications customize monitoring by *writing* to per-node
//! `control` files. This model keeps a deterministic tree of text entries
//! (BTreeMap directories, so listings are sorted like the harness output
//! needs) and queues writes for the owning subsystem (d-mon) to consume —
//! the same decoupling a real `/proc` write handler gives a kernel module.
//!
//! Paths are `/`-separated, relative to the `/proc` root; a leading `/` or
//! `/proc/` prefix is accepted and stripped, so `"/proc/cluster/alan/cpu"`,
//! `"/cluster/alan/cpu"` and `"cluster/alan/cpu"` name the same entry.

use std::collections::BTreeMap;

/// Errors from pseudo-file operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcError {
    /// Path does not exist.
    NotFound(String),
    /// Path exists but is a directory (or a file where a dir is needed).
    WrongKind(String),
    /// Empty path component or empty path.
    BadPath(String),
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::NotFound(p) => write!(f, "no such /proc entry: {p}"),
            ProcError::WrongKind(p) => write!(f, "wrong entry kind: {p}"),
            ProcError::BadPath(p) => write!(f, "malformed /proc path: {p}"),
        }
    }
}

impl std::error::Error for ProcError {}

/// Stable handle to an interned `/proc` file: path resolution (string
/// parsing plus a `BTreeMap` walk per component) happens once, at
/// [`ProcFs::intern`] time; every subsequent write through the handle is an
/// index into a slab. Handles stay valid for the lifetime of the
/// filesystem; if the underlying file is [`ProcFs::remove`]d from the tree,
/// writes through the handle still succeed but are no longer visible via
/// path lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcHandle(usize);

#[derive(Debug, Clone)]
enum Node {
    Dir(BTreeMap<String, Node>),
    /// Index of the file's content in the `files` slab.
    File(usize),
}

/// The pseudo-filesystem of one host.
#[derive(Debug, Default)]
pub struct ProcFs {
    root: BTreeMap<String, Node>,
    /// File contents, slab-indexed by [`Node::File`] and [`ProcHandle`].
    files: Vec<String>,
    pending_writes: Vec<(String, String)>,
}

/// Split and normalize a path. Returns the component list.
fn components(path: &str) -> Result<Vec<&str>, ProcError> {
    let trimmed = path
        .trim_start_matches("/proc/")
        .trim_start_matches('/')
        .trim_end_matches('/');
    if trimmed.is_empty() {
        return Err(ProcError::BadPath(path.to_string()));
    }
    let parts: Vec<&str> = trimmed.split('/').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(ProcError::BadPath(path.to_string()));
    }
    Ok(parts)
}

impl ProcFs {
    /// Empty filesystem.
    pub fn new() -> Self {
        ProcFs::default()
    }

    /// Create or replace a file at `path`, creating parent directories.
    /// This is the kernel-side API (monitoring modules publishing values).
    pub fn set(&mut self, path: &str, content: impl Into<String>) -> Result<(), ProcError> {
        let h = self.intern(path)?;
        self.files[h.0] = content.into();
        Ok(())
    }

    /// Resolve `path` to a stable [`ProcHandle`], creating the file (empty)
    /// and its parent directories if absent. Resolution cost is paid once;
    /// writes through the handle are O(1).
    pub fn intern(&mut self, path: &str) -> Result<ProcHandle, ProcError> {
        let parts = components(path)?;
        let (file, dirs) = parts.split_last().expect("non-empty components");
        let mut cur = &mut self.root;
        for d in dirs {
            let entry = cur
                .entry(d.to_string())
                .or_insert_with(|| Node::Dir(BTreeMap::new()));
            match entry {
                Node::Dir(children) => cur = children,
                Node::File(_) => return Err(ProcError::WrongKind(path.to_string())),
            }
        }
        match cur.get(*file) {
            Some(Node::Dir(_)) => Err(ProcError::WrongKind(path.to_string())),
            Some(Node::File(idx)) => Ok(ProcHandle(*idx)),
            None => {
                let idx = self.files.len();
                self.files.push(String::new());
                cur.insert(file.to_string(), Node::File(idx));
                Ok(ProcHandle(idx))
            }
        }
    }

    /// Replace an interned file's content. O(1): no parsing, no tree walk.
    pub fn set_handle(&mut self, h: ProcHandle, content: impl Into<String>) {
        self.files[h.0] = content.into();
    }

    /// Format new content directly into an interned file, reusing the
    /// existing `String`'s capacity (steady-state writes allocate nothing).
    pub fn set_handle_fmt(&mut self, h: ProcHandle, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write;
        let s = &mut self.files[h.0];
        s.clear();
        let _ = s.write_fmt(args);
    }

    /// Direct mutable access to an interned file's content buffer, for
    /// callers that assemble content piecewise (clear + push) instead of
    /// going through the `fmt` machinery.
    pub fn handle_buf(&mut self, h: ProcHandle) -> &mut String {
        &mut self.files[h.0]
    }

    /// Swap an owned string into an interned file, handing the previous
    /// content (and its capacity) back to the caller for reuse.
    pub fn swap_handle(&mut self, h: ProcHandle, mut content: String) -> String {
        std::mem::swap(&mut self.files[h.0], &mut content);
        content
    }

    /// Read an interned file's content.
    pub fn read_handle(&self, h: ProcHandle) -> &str {
        &self.files[h.0]
    }

    /// Create a directory (and parents). Idempotent.
    pub fn mkdir(&mut self, path: &str) -> Result<(), ProcError> {
        let parts = components(path)?;
        let mut cur = &mut self.root;
        for d in &parts {
            let entry = cur
                .entry(d.to_string())
                .or_insert_with(|| Node::Dir(BTreeMap::new()));
            match entry {
                Node::Dir(children) => cur = children,
                Node::File(_) => return Err(ProcError::WrongKind(path.to_string())),
            }
        }
        Ok(())
    }

    fn lookup(&self, path: &str) -> Result<&Node, ProcError> {
        let parts = components(path)?;
        let mut cur = &self.root;
        let (last, dirs) = parts.split_last().expect("non-empty components");
        for d in dirs {
            match cur.get(*d) {
                Some(Node::Dir(children)) => cur = children,
                Some(Node::File(_)) => return Err(ProcError::WrongKind(path.to_string())),
                None => return Err(ProcError::NotFound(path.to_string())),
            }
        }
        cur.get(*last)
            .ok_or_else(|| ProcError::NotFound(path.to_string()))
    }

    /// Read a file's contents (userspace `cat`).
    pub fn read(&self, path: &str) -> Result<&str, ProcError> {
        match self.lookup(path)? {
            Node::File(idx) => Ok(&self.files[*idx]),
            Node::Dir(_) => Err(ProcError::WrongKind(path.to_string())),
        }
    }

    /// Userspace write (`echo ... > /proc/...`): requires the file to
    /// exist; the data is queued for the owning subsystem rather than
    /// stored (a real `/proc` write handler intercepts data the same way).
    pub fn write(&mut self, path: &str, data: impl Into<String>) -> Result<(), ProcError> {
        match self.lookup(path)? {
            Node::File(_) => {
                let parts = components(path)?;
                self.pending_writes.push((parts.join("/"), data.into()));
                Ok(())
            }
            Node::Dir(_) => Err(ProcError::WrongKind(path.to_string())),
        }
    }

    /// Drain queued userspace writes as `(normalized_path, data)` pairs,
    /// in write order.
    pub fn drain_writes(&mut self) -> Vec<(String, String)> {
        std::mem::take(&mut self.pending_writes)
    }

    /// Number of queued, unconsumed writes.
    pub fn pending_write_count(&self) -> usize {
        self.pending_writes.len()
    }

    /// Sorted names inside a directory.
    pub fn list(&self, path: &str) -> Result<Vec<String>, ProcError> {
        match self.lookup(path)? {
            Node::Dir(children) => Ok(children.keys().cloned().collect()),
            Node::File(_) => Err(ProcError::WrongKind(path.to_string())),
        }
    }

    /// Sorted names at the filesystem root.
    pub fn list_root(&self) -> Vec<String> {
        self.root.keys().cloned().collect()
    }

    /// Whether a path exists (file or directory).
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }

    /// Whether a path exists and is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(self.lookup(path), Ok(Node::Dir(_)))
    }

    /// Remove a file or an entire directory subtree. Returns true if
    /// something was removed.
    pub fn remove(&mut self, path: &str) -> Result<bool, ProcError> {
        let parts = components(path)?;
        let (last, dirs) = parts.split_last().expect("non-empty components");
        let mut cur = &mut self.root;
        for d in dirs {
            match cur.get_mut(*d) {
                Some(Node::Dir(children)) => cur = children,
                Some(Node::File(_)) => return Err(ProcError::WrongKind(path.to_string())),
                None => return Ok(false),
            }
        }
        Ok(cur.remove(*last).is_some())
    }

    /// Render the whole tree as an indented listing (debugging aid, and
    /// the basis of the quickstart example's Figure-1 output).
    pub fn render_tree(&self) -> String {
        fn walk(out: &mut String, children: &BTreeMap<String, Node>, depth: usize) {
            for (name, node) in children {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                match node {
                    Node::Dir(grand) => {
                        out.push_str(name);
                        out.push_str("/\n");
                        walk(out, grand, depth + 1);
                    }
                    Node::File(_) => {
                        out.push_str(name);
                        out.push('\n');
                    }
                }
            }
        }
        let mut out = String::new();
        walk(&mut out, &self.root, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read() {
        let mut fs = ProcFs::new();
        fs.set("loadavg", "0.50 0.40 0.30").unwrap();
        assert_eq!(fs.read("loadavg").unwrap(), "0.50 0.40 0.30");
        assert_eq!(fs.read("/loadavg").unwrap(), "0.50 0.40 0.30");
        assert_eq!(fs.read("/proc/loadavg").unwrap(), "0.50 0.40 0.30");
    }

    #[test]
    fn nested_paths_create_dirs() {
        let mut fs = ProcFs::new();
        fs.set("cluster/alan/cpu", "1.2").unwrap();
        fs.set("cluster/alan/net", "100").unwrap();
        fs.set("cluster/maui/cpu", "0.1").unwrap();
        assert_eq!(fs.list("cluster").unwrap(), vec!["alan", "maui"]);
        assert_eq!(fs.list("cluster/alan").unwrap(), vec!["cpu", "net"]);
        assert!(fs.is_dir("cluster"));
        assert!(!fs.is_dir("cluster/alan/cpu"));
    }

    #[test]
    fn write_requires_existing_file_and_queues() {
        let mut fs = ProcFs::new();
        assert!(matches!(
            fs.write("cluster/alan/control", "period=2"),
            Err(ProcError::NotFound(_))
        ));
        fs.set("cluster/alan/control", "").unwrap();
        fs.write("/proc/cluster/alan/control", "period=2").unwrap();
        fs.write("cluster/alan/control", "threshold=0.8").unwrap();
        assert_eq!(fs.pending_write_count(), 2);
        let writes = fs.drain_writes();
        assert_eq!(
            writes,
            vec![
                ("cluster/alan/control".to_string(), "period=2".to_string()),
                (
                    "cluster/alan/control".to_string(),
                    "threshold=0.8".to_string()
                ),
            ]
        );
        assert_eq!(fs.pending_write_count(), 0);
    }

    #[test]
    fn wrong_kind_errors() {
        let mut fs = ProcFs::new();
        fs.set("cluster/alan/cpu", "1").unwrap();
        assert!(matches!(
            fs.set("cluster/alan/cpu/deeper", "x"),
            Err(ProcError::WrongKind(_))
        ));
        assert!(matches!(fs.read("cluster"), Err(ProcError::WrongKind(_))));
        assert!(matches!(
            fs.list("cluster/alan/cpu"),
            Err(ProcError::WrongKind(_))
        ));
        assert!(matches!(
            fs.set("cluster", "overwrite a dir"),
            Err(ProcError::WrongKind(_))
        ));
    }

    #[test]
    fn bad_paths_rejected() {
        let mut fs = ProcFs::new();
        assert!(matches!(fs.set("", "x"), Err(ProcError::BadPath(_))));
        assert!(matches!(fs.set("/", "x"), Err(ProcError::BadPath(_))));
        assert!(matches!(fs.set("a//b", "x"), Err(ProcError::BadPath(_))));
    }

    #[test]
    fn remove_subtree() {
        let mut fs = ProcFs::new();
        fs.set("cluster/alan/cpu", "1").unwrap();
        fs.set("cluster/maui/cpu", "2").unwrap();
        assert!(fs.remove("cluster/alan").unwrap());
        assert!(!fs.exists("cluster/alan/cpu"));
        assert!(fs.exists("cluster/maui/cpu"));
        assert!(!fs.remove("cluster/alan").unwrap());
    }

    #[test]
    fn interned_handles_write_without_reparsing() {
        let mut fs = ProcFs::new();
        let h = fs.intern("cluster/alan/cpu").unwrap();
        assert_eq!(fs.read("cluster/alan/cpu").unwrap(), "");
        fs.set_handle(h, "0.5");
        assert_eq!(fs.read("cluster/alan/cpu").unwrap(), "0.5");
        assert_eq!(fs.read_handle(h), "0.5");
        // Interning an existing path (even via a different spelling)
        // returns the same handle.
        assert_eq!(fs.intern("/proc/cluster/alan/cpu").unwrap(), h);
        fs.set_handle_fmt(h, format_args!("{:.2}", 1.25));
        assert_eq!(fs.read("cluster/alan/cpu").unwrap(), "1.25");
        let prev = fs.swap_handle(h, "2.0".to_string());
        assert_eq!(prev, "1.25");
        assert_eq!(fs.read_handle(h), "2.0");
    }

    #[test]
    fn path_set_and_handle_set_share_the_file() {
        let mut fs = ProcFs::new();
        fs.set("stats/iterations", "1").unwrap();
        let h = fs.intern("stats/iterations").unwrap();
        assert_eq!(fs.read_handle(h), "1");
        fs.set("stats/iterations", "2").unwrap();
        assert_eq!(fs.read_handle(h), "2");
    }

    #[test]
    fn intern_rejects_dir_paths() {
        let mut fs = ProcFs::new();
        fs.set("cluster/alan/cpu", "1").unwrap();
        assert!(matches!(fs.intern("cluster"), Err(ProcError::WrongKind(_))));
        assert!(matches!(fs.intern(""), Err(ProcError::BadPath(_))));
    }

    #[test]
    fn handle_outlives_remove_but_writes_are_invisible() {
        let mut fs = ProcFs::new();
        let h = fs.intern("cluster/alan/cpu").unwrap();
        fs.remove("cluster/alan").unwrap();
        fs.set_handle(h, "late");
        assert!(!fs.exists("cluster/alan/cpu"));
        // Re-creating the path makes a fresh file; the old handle still
        // points at the orphaned slab slot.
        fs.set("cluster/alan/cpu", "new").unwrap();
        assert_eq!(fs.read("cluster/alan/cpu").unwrap(), "new");
        assert_eq!(fs.read_handle(h), "late");
    }

    #[test]
    fn overwrite_updates_content() {
        let mut fs = ProcFs::new();
        fs.set("meminfo", "100").unwrap();
        fs.set("meminfo", "90").unwrap();
        assert_eq!(fs.read("meminfo").unwrap(), "90");
    }

    #[test]
    fn render_tree_matches_figure1_shape() {
        let mut fs = ProcFs::new();
        for (node, metrics) in [
            ("alan", vec!["mem", "net", "cpu", "disk"]),
            ("maui", vec!["net", "cpu"]),
            ("etna", vec!["net", "cpu", "disk"]),
        ] {
            for m in metrics {
                fs.set(&format!("cluster/{node}/{m}"), "0").unwrap();
            }
        }
        let tree = fs.render_tree();
        assert!(tree.contains("cluster/"));
        assert!(tree.contains("alan/"));
        // BTreeMap ordering: alan, etna, maui
        let alan = tree.find("alan").unwrap();
        let etna = tree.find("etna").unwrap();
        let maui = tree.find("maui").unwrap();
        assert!(alan < etna && etna < maui);
        assert_eq!(fs.list_root(), vec!["cluster"]);
    }
}
