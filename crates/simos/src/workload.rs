//! Load generators: the linpack CPU benchmark and a periodic disk load,
//! matching the perturbation tools used in the paper's evaluation.

use simcore::{SimDur, SimTime};

use crate::cpu::{CpuSched, TaskId};
use crate::disk::{Disk, IoDir};

/// A set of linpack threads on one host, with Mflops measurement.
///
/// The paper uses linpack both as the CPU-throughput probe (Fig. 4: Mflops
/// under monitoring load) and as the client-side CPU hog (Figs. 9, 11:
/// "running different instances of linpack processes").
#[derive(Debug, Default)]
pub struct Linpack {
    threads: Vec<TaskId>,
    /// Work snapshot at the start of the current measurement interval.
    mark_flops: f64,
    mark_time: SimTime,
}

impl Linpack {
    /// No threads yet.
    pub fn new() -> Self {
        Linpack::default()
    }

    /// Start one more linpack thread.
    pub fn start_thread(&mut self, cpu: &mut CpuSched, now: SimTime) -> TaskId {
        let id = cpu.spawn_compute(now, format!("linpack-{}", self.threads.len()));
        self.threads.push(id);
        id
    }

    /// Start `n` threads at once.
    pub fn start_threads(&mut self, cpu: &mut CpuSched, now: SimTime, n: usize) {
        for _ in 0..n {
            self.start_thread(cpu, now);
        }
    }

    /// Stop all threads.
    pub fn stop_all(&mut self, cpu: &mut CpuSched, now: SimTime) {
        for &t in &self.threads {
            cpu.kill(now, t);
        }
        self.threads.clear();
    }

    /// Number of running threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total flops completed by all threads so far.
    pub fn total_flops(&self, cpu: &mut CpuSched, now: SimTime) -> f64 {
        cpu.advance(now);
        self.threads.iter().map(|&t| cpu.work_done(now, t)).sum()
    }

    /// Begin a measurement interval at `now`.
    pub fn mark(&mut self, cpu: &mut CpuSched, now: SimTime) {
        self.mark_flops = self.total_flops(cpu, now);
        self.mark_time = now;
    }

    /// Mflops achieved since the last [`Linpack::mark`].
    pub fn mflops_since_mark(&self, cpu: &mut CpuSched, now: SimTime) -> f64 {
        let flops = self.total_flops(cpu, now) - self.mark_flops;
        let dt = now.since(self.mark_time).as_secs_f64();
        if dt <= 0.0 {
            0.0
        } else {
            flops / dt / 1e6
        }
    }
}

/// A periodic disk-writer description: every `period`, write `bytes`.
/// The cluster glue schedules the submissions; this type just computes the
/// schedule deterministically.
#[derive(Debug, Clone, Copy)]
pub struct DiskLoad {
    /// Interval between writes.
    pub period: SimDur,
    /// Bytes per write.
    pub bytes: u64,
    /// Read or write load.
    pub dir: IoDir,
}

impl DiskLoad {
    /// Apply one period's worth of I/O at `now`.
    pub fn apply(&self, disk: &mut Disk, now: SimTime) {
        disk.submit(now, self.dir, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuSched {
        CpuSched::new(1, 17.4e6)
    }

    #[test]
    fn single_thread_hits_peak_mflops() {
        let mut c = cpu();
        let mut lp = Linpack::new();
        lp.start_thread(&mut c, SimTime::ZERO);
        lp.mark(&mut c, SimTime::ZERO);
        let mflops = lp.mflops_since_mark(&mut c, SimTime::from_secs(10));
        assert!((mflops - 17.4).abs() < 1e-9, "mflops {mflops}");
    }

    #[test]
    fn threads_share_but_aggregate_is_constant() {
        let mut c = cpu();
        let mut lp = Linpack::new();
        lp.start_threads(&mut c, SimTime::ZERO, 4);
        assert_eq!(lp.thread_count(), 4);
        lp.mark(&mut c, SimTime::ZERO);
        // 4 threads on 1 CPU still total the peak rate.
        let mflops = lp.mflops_since_mark(&mut c, SimTime::from_secs(10));
        assert!((mflops - 17.4).abs() < 1e-9, "mflops {mflops}");
    }

    #[test]
    fn competing_service_work_lowers_mflops() {
        let mut c = cpu();
        let mut lp = Linpack::new();
        lp.start_thread(&mut c, SimTime::ZERO);
        lp.mark(&mut c, SimTime::ZERO);
        // A service task hogs the CPU for half of a 10s interval.
        let svc = c.spawn_service(SimTime::ZERO, "interference");
        c.set_state(SimTime::ZERO, svc, crate::cpu::TaskState::Runnable);
        c.set_state(SimTime::from_secs(5), svc, crate::cpu::TaskState::Sleeping);
        let mflops = lp.mflops_since_mark(&mut c, SimTime::from_secs(10));
        // 5s at half speed + 5s full = 75% of peak.
        assert!((mflops - 17.4 * 0.75).abs() < 1e-6, "mflops {mflops}");
    }

    #[test]
    fn stop_all_kills_threads() {
        let mut c = cpu();
        let mut lp = Linpack::new();
        lp.start_threads(&mut c, SimTime::ZERO, 3);
        lp.stop_all(&mut c, SimTime::from_secs(1));
        assert_eq!(lp.thread_count(), 0);
        assert_eq!(c.runnable(), 0);
    }

    #[test]
    fn disk_load_applies_io() {
        let mut d = Disk::testbed();
        let load = DiskLoad {
            period: SimDur::from_millis(100),
            bytes: 512 * 64,
            dir: IoDir::Write,
        };
        load.apply(&mut d, SimTime::ZERO);
        load.apply(&mut d, SimTime::from_millis(100));
        assert_eq!(d.writes(), 2);
        assert_eq!(d.sectors_written(), 128);
    }
}
