//! Performance-monitoring counters (PMC).
//!
//! The paper exposes processor event counters (cache misses, instruction
//! counts, ...) through dproc so that, e.g., a remote master can track how
//! much data a worker has consumed by watching cache-line loads. This
//! model derives counter values from the simulated activity that would
//! cause them: CPU work generates instructions and a baseline miss rate;
//! explicit data movement (message payloads, frame processing) generates
//! cache-line loads.

/// Cache line size in bytes.
pub const CACHE_LINE: u64 = 32; // Pentium Pro era

/// Which hardware event a counter slot tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmcEvent {
    /// Last-level cache misses.
    CacheMisses,
    /// Retired instructions.
    Instructions,
    /// Core cycles.
    Cycles,
}

/// The PMC block of one host.
#[derive(Debug, Default)]
pub struct Pmc {
    cache_misses: u64,
    instructions: u64,
    cycles: u64,
    /// Instructions per flop of compute work (model constant).
    instr_per_flop: f64,
    /// Baseline cache misses per instruction.
    miss_per_instr: f64,
}

impl Pmc {
    /// Counters with era-appropriate derivation constants.
    pub fn new() -> Self {
        Pmc {
            cache_misses: 0,
            instructions: 0,
            cycles: 0,
            instr_per_flop: 2.0,
            miss_per_instr: 0.002,
        }
    }

    /// Account CPU work: `flops` of floating point executed.
    pub fn on_compute(&mut self, flops: f64) {
        let instr = (flops * self.instr_per_flop) as u64;
        self.instructions += instr;
        self.cycles += instr; // ~1 IPC
        self.cache_misses += (instr as f64 * self.miss_per_instr) as u64;
    }

    /// Account data movement: `bytes` streamed through the cache (message
    /// payloads, frames rendered, buffers copied). Every cache line touched
    /// once is a miss.
    pub fn on_data_moved(&mut self, bytes: u64) {
        self.cache_misses += bytes.div_ceil(CACHE_LINE);
        // Streaming code executes a few instructions per line.
        self.instructions += bytes.div_ceil(CACHE_LINE) * 4;
        self.cycles += bytes.div_ceil(CACHE_LINE) * 8;
    }

    /// Read a counter.
    pub fn read(&self, ev: PmcEvent) -> u64 {
        match ev {
            PmcEvent::CacheMisses => self.cache_misses,
            PmcEvent::Instructions => self.instructions,
            PmcEvent::Cycles => self.cycles,
        }
    }

    /// Reset all counters to zero (the paper lets applications reprogram
    /// counters at run time).
    pub fn reset(&mut self) {
        self.cache_misses = 0;
        self.instructions = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let p = Pmc::new();
        assert_eq!(p.read(PmcEvent::CacheMisses), 0);
        assert_eq!(p.read(PmcEvent::Instructions), 0);
        assert_eq!(p.read(PmcEvent::Cycles), 0);
    }

    #[test]
    fn compute_generates_instructions_and_misses() {
        let mut p = Pmc::new();
        p.on_compute(1e6);
        assert_eq!(p.read(PmcEvent::Instructions), 2_000_000);
        assert_eq!(p.read(PmcEvent::CacheMisses), 4_000);
        assert!(p.read(PmcEvent::Cycles) > 0);
    }

    #[test]
    fn data_movement_generates_line_misses() {
        let mut p = Pmc::new();
        p.on_data_moved(3200);
        assert_eq!(p.read(PmcEvent::CacheMisses), 100);
        // Consumed-data tracking: misses proportional to bytes moved.
        p.on_data_moved(3200);
        assert_eq!(p.read(PmcEvent::CacheMisses), 200);
    }

    #[test]
    fn reset_clears() {
        let mut p = Pmc::new();
        p.on_compute(1e6);
        p.on_data_moved(1024);
        p.reset();
        assert_eq!(p.read(PmcEvent::CacheMisses), 0);
        assert_eq!(p.read(PmcEvent::Instructions), 0);
    }

    #[test]
    fn partial_lines_round_up() {
        let mut p = Pmc::new();
        p.on_data_moved(1);
        assert_eq!(p.read(PmcEvent::CacheMisses), 1);
    }
}
