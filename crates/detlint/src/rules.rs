//! The replay-safety rules.
//!
//! Every rule is a token-shape pattern evaluated inside function bodies
//! that are *reachable from shard-window context* — functions annotated
//! `// detlint: shard-entry` and everything they transitively call.
//! Code off that path (setup, CLI, reporting) may use wall clocks and
//! hash-order iteration freely; code on it may not, because the sharded
//! simulation replays shard windows and demands bit-identical results.
//!
//! Rules:
//! - `unordered-iter`: iterating a `HashMap`/`HashSet` (std: Error) or
//!   `FxHashMap`/`FxHashSet` (Warning — seeded, but still insertion-
//!   order sensitive) visits entries in hasher order.
//! - `ambient-time`: `SystemTime`/`Instant`/`std::time` read the wall
//!   clock; replay must use `SimTime` from the scheduler.
//! - `ambient-rng`: `thread_rng`/`OsRng`/`from_entropy`/`rand::random`
//!   draw from ambient entropy; replay must use seeded RNGs.
//! - `replay-only`: mutating a channel `Directory` (subscribe /
//!   unsubscribe / open) from shard context; directory mutation belongs
//!   to the coordinator's replay step. Suppressed by a
//!   `// detlint: replay-only` annotation on the enclosing function —
//!   but that annotation is itself checked: outside coordinator modules
//!   it raises `misplaced-annotation`.
//! - `no-roots`: the scan found no `shard-entry` annotation at all, so
//!   reachability would be vacuous; the roots were deleted or renamed.
//!
//! `// detlint: allow(<rule>) <reason>` on one of the five lines above a
//! finding suppresses it; the reason is mandatory by convention and the
//! comment itself documents the justification in place.

use crate::lexer::Tok;
use crate::model::{FnInfo, Workspace};

/// Finding severity. `Error` fails `--check`; `Warning` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but does not fail the gate.
    Warning,
    /// Fails `--check` unless baselined or allowed.
    Error,
}

impl Severity {
    /// Lowercase label for display.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`unordered-iter`, `ambient-time`, …).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// File path (as scanned).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Enclosing function, `<module>` for file-level findings.
    pub function: String,
    /// Human-readable message.
    pub message: String,
    /// The offending source line, trimmed (baseline key material).
    pub snippet: String,
}

impl Finding {
    /// Render as `error[rule] path:1:2 in fn f: message`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}:{}:{} in fn {}: {}\n    {}",
            self.severity.label(),
            self.rule,
            self.file,
            self.line,
            self.col,
            self.function,
            self.message,
            self.snippet
        )
    }
}

/// Methods whose receiver iteration order is the hasher's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Directory mutators that reshape the channel registry.
const DIR_MUTATORS: &[&str] = &["subscribe", "unsubscribe", "open"];

/// How far above a finding an `allow(...)` directive still applies,
/// in lines. Five covers a comment block plus attributes.
const ALLOW_RANGE: u32 = 5;

/// Run every rule over the workspace. `coordinator_files` are path
/// substrings (e.g. `cluster.rs`) where `replay-only` annotations are
/// legitimate; `pcluster.rs` is special-cased to the `PCoord` owner.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();

    if !ws.has_roots() {
        findings.push(Finding {
            rule: "no-roots",
            severity: Severity::Error,
            file: ws
                .files
                .first()
                .map_or_else(|| "<workspace>".to_string(), |f| f.path.clone()),
            line: 1,
            col: 1,
            function: "<module>".to_string(),
            message: "no `// detlint: shard-entry` root found; replay-safety \
                      reachability is vacuous"
                .to_string(),
            snippet: String::new(),
        });
        return findings;
    }

    let reachable = ws.reachable_from_roots();

    for (fi, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        let replay_only = f.annotations.iter().any(|a| a.starts_with("replay-only"));

        // misplaced-annotation applies regardless of reachability: a
        // replay-only escape hatch in the wrong module is always wrong.
        if replay_only && !is_coordinator_fn(&file.path, f) {
            findings.push(Finding {
                rule: "misplaced-annotation",
                severity: Severity::Error,
                file: file.path.clone(),
                line: f.line,
                col: 1,
                function: f.name.clone(),
                message: "`replay-only` annotation outside a coordinator module; \
                          only the coordinator replay step may mutate directories"
                    .to_string(),
                snippet: snippet_at(file, f.line),
            });
        }

        if !reachable.contains(&fi) {
            continue;
        }

        let toks = &file.tokens[f.body.0..f.body.1.min(file.tokens.len())];
        scan_unordered_iter(ws, file, f, toks, &mut findings);
        scan_ambient_time(file, f, toks, &mut findings);
        scan_ambient_rng(file, f, toks, &mut findings);
        if !replay_only {
            scan_directory_mutation(ws, file, f, toks, &mut findings);
        }
    }

    // Apply allow() suppressions, then sort for stable output.
    findings.retain(|fx| !is_allowed(ws, fx));
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    findings
}

/// Is `f` a place where `replay-only` is legitimate? The coordinator
/// lives in `cluster.rs` (whole file) and in `pcluster.rs` but only on
/// `PCoord` — the shard half of that file runs inside windows.
fn is_coordinator_fn(path: &str, f: &FnInfo) -> bool {
    let base = path.rsplit('/').next().unwrap_or(path);
    match base {
        "cluster.rs" => true,
        "pcluster.rs" => f.owner.as_deref() == Some("PCoord"),
        _ => false,
    }
}

/// The trimmed source line at `line` (1-based).
fn snippet_at(file: &crate::model::FileModel, line: u32) -> String {
    file.lines
        .get(line as usize - 1)
        .map_or_else(String::new, |l| l.trim().to_string())
}

/// Is this finding covered by an `allow(<rule>)` directive within
/// [`ALLOW_RANGE`] lines above it (or on its own line)?
fn is_allowed(ws: &Workspace, fx: &Finding) -> bool {
    let Some(file) = ws.files.iter().find(|f| f.path == fx.file) else {
        return false;
    };
    let needle = format!("allow({})", fx.rule);
    file.directives.iter().any(|d| {
        d.text.starts_with(&needle) && d.line <= fx.line && fx.line - d.line <= ALLOW_RANGE
    })
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    severity: Severity,
    file: &crate::model::FileModel,
    f: &FnInfo,
    tok: &Tok,
    message: String,
) {
    findings.push(Finding {
        rule,
        severity,
        file: file.path.clone(),
        line: tok.line,
        col: tok.col,
        function: f.name.clone(),
        message,
        snippet: snippet_at(file, tok.line),
    });
}

/// `name.iter()` / `for k in name` where `name` is an unordered map.
fn scan_unordered_iter(
    ws: &Workspace,
    file: &crate::model::FileModel,
    f: &FnInfo,
    toks: &[Tok],
    findings: &mut Vec<Finding>,
) {
    let class_of = |name: &str| -> Option<(&'static str, Severity)> {
        if ws.std_unordered.contains(name) {
            Some(("std HashMap/HashSet", Severity::Error))
        } else if ws.fx_unordered.contains(name) {
            Some(("FxHashMap/FxHashSet", Severity::Warning))
        } else {
            None
        }
    };
    for i in 0..toks.len() {
        // Shape: <name> . <method> (   — receiver may be a field access,
        // `self . conns . iter (`; the ident right before `.` is enough.
        let Some(method) = toks[i].ident() else {
            continue;
        };
        if !ITER_METHODS.contains(&method) {
            continue;
        }
        if !(i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true))
        {
            continue;
        }
        let Some(recv) = toks[i - 2].ident() else {
            continue;
        };
        if let Some((ty, sev)) = class_of(recv) {
            push(
                findings,
                "unordered-iter",
                sev,
                file,
                f,
                &toks[i],
                format!(
                    "`{recv}.{method}()` iterates a {ty} in hasher order; \
                     replayed shard windows demand a deterministic order \
                     (sort first, or keep a sorted index)"
                ),
            );
        }
    }
    // Shape: for <pat> in [&[mut]] <name> { — direct iteration of the map.
    for i in 0..toks.len() {
        if toks[i].ident() != Some("for") {
            continue;
        }
        // Find `in` within a few tokens (patterns are short).
        let Some(in_at) = (i + 1..(i + 8).min(toks.len())).find(|&j| toks[j].ident() == Some("in"))
        else {
            continue;
        };
        let mut j = in_at + 1;
        while j < toks.len() && (toks[j].is_punct('&') || toks[j].ident() == Some("mut")) {
            j += 1;
        }
        // The iterated expression's *last* ident before `{` (handles
        // `self.conns`, plain `conns`).
        let mut last_ident: Option<(usize, &str)> = None;
        let mut k = j;
        while k < toks.len() && !toks[k].is_punct('{') {
            if let Some(id) = toks[k].ident() {
                // Method-call receivers are handled by the shape above.
                if toks.get(k + 1).map(|t| t.is_punct('(')) == Some(true) {
                    last_ident = None;
                    break;
                }
                last_ident = Some((k, id));
            }
            k += 1;
        }
        if let Some((at, name)) = last_ident {
            if let Some((ty, sev)) = class_of(name) {
                push(
                    findings,
                    "unordered-iter",
                    sev,
                    file,
                    f,
                    &toks[at],
                    format!(
                        "`for … in {name}` iterates a {ty} in hasher order; \
                         replayed shard windows demand a deterministic order"
                    ),
                );
            }
        }
    }
}

/// `SystemTime` / `Instant` / `std::time` — ambient wall clock.
fn scan_ambient_time(
    file: &crate::model::FileModel,
    f: &FnInfo,
    toks: &[Tok],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let Some(id) = toks[i].ident() else { continue };
        let hit = match id {
            "SystemTime" | "Instant" => true,
            "time" => {
                i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].ident() == Some("std")
            }
            _ => false,
        };
        if hit {
            push(
                findings,
                "ambient-time",
                Severity::Error,
                file,
                f,
                &toks[i],
                format!(
                    "`{id}` reads the wall clock; shard-context code must use \
                     the scheduler's SimTime so replay is bit-identical"
                ),
            );
        }
    }
}

/// `thread_rng` / `OsRng` / `from_entropy` / `rand::random` — ambient
/// entropy sources.
fn scan_ambient_rng(
    file: &crate::model::FileModel,
    f: &FnInfo,
    toks: &[Tok],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let Some(id) = toks[i].ident() else { continue };
        let hit = match id {
            "thread_rng" | "OsRng" | "from_entropy" => true,
            "random" => {
                i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].ident() == Some("rand")
            }
            _ => false,
        };
        if hit {
            push(
                findings,
                "ambient-rng",
                Severity::Error,
                file,
                f,
                &toks[i],
                format!(
                    "`{id}` draws ambient entropy; shard-context code must use \
                     a seeded RNG owned by the deterministic scheduler"
                ),
            );
        }
    }
}

/// `dir.subscribe(…)` etc. where `dir` is a `Directory`, outside
/// functions annotated `replay-only`.
fn scan_directory_mutation(
    ws: &Workspace,
    file: &crate::model::FileModel,
    f: &FnInfo,
    toks: &[Tok],
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let Some(method) = toks[i].ident() else {
            continue;
        };
        if !DIR_MUTATORS.contains(&method) {
            continue;
        }
        if !(i >= 2
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true))
        {
            continue;
        }
        let Some(recv) = toks[i - 2].ident() else {
            continue;
        };
        if ws.directory_names.contains(recv) {
            push(
                findings,
                "replay-only",
                Severity::Error,
                file,
                f,
                &toks[i],
                format!(
                    "`{recv}.{method}()` mutates a channel Directory from shard \
                     context; directory mutation belongs to the coordinator \
                     replay step (annotate the fn `// detlint: replay-only` \
                     if it IS that step)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.add_file(path, src);
        run(&ws)
    }

    const ROOT: &str = "// detlint: shard-entry\n";

    #[test]
    fn no_roots_is_itself_a_finding() {
        let fx = lint("a.rs", "fn f() {}");
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].rule, "no-roots");
    }

    #[test]
    fn unordered_iter_std_is_error_fx_is_warning() {
        let src = format!(
            "{ROOT}fn f() {{\n  let m: HashMap<u32,u32> = HashMap::new();\n  \
             let fx: FxHashMap<u32,u32> = FxHashMap::default();\n  \
             for k in m.keys() {{}}\n  for v in fx.values() {{}}\n}}"
        );
        let fx = lint("a.rs", &src);
        assert_eq!(fx.len(), 2, "{fx:#?}");
        assert!(fx
            .iter()
            .any(|f| f.rule == "unordered-iter" && f.severity == Severity::Error));
        assert!(fx
            .iter()
            .any(|f| f.rule == "unordered-iter" && f.severity == Severity::Warning));
    }

    #[test]
    fn for_loop_over_map_is_caught() {
        let src =
            format!("{ROOT}fn f(m: &HashMap<u32,u32>) {{ for (k, v) in m {{ use_it(k, v); }} }}");
        let fx = lint("a.rs", &src);
        assert_eq!(fx.len(), 1, "{fx:#?}");
        assert_eq!(fx[0].rule, "unordered-iter");
    }

    #[test]
    fn unreachable_code_is_not_linted() {
        let src = format!(
            "{ROOT}fn root() {{}}\n\
             fn off_path(m: &HashMap<u32,u32>) {{ for k in m.keys() {{}} }}"
        );
        assert!(lint("a.rs", &src).is_empty());
    }

    #[test]
    fn reachability_crosses_files() {
        let mut ws = Workspace::default();
        ws.add_file("a.rs", &format!("{ROOT}fn root() {{ helper(); }}"));
        ws.add_file("b.rs", "fn helper() { let t = SystemTime::now(); }");
        let fx = run(&ws);
        assert_eq!(fx.len(), 1, "{fx:#?}");
        assert_eq!(fx[0].rule, "ambient-time");
        assert_eq!(fx[0].file, "b.rs");
    }

    #[test]
    fn ambient_time_and_rng_are_errors() {
        let src = format!(
            "{ROOT}fn f() {{\n  let t = std::time::Instant::now();\n  \
             let r = thread_rng();\n  let x = rand::random();\n}}"
        );
        let fx = lint("a.rs", &src);
        assert!(fx.iter().any(|f| f.rule == "ambient-time"));
        assert_eq!(fx.iter().filter(|f| f.rule == "ambient-rng").count(), 2);
        assert!(fx.iter().all(|f| f.severity == Severity::Error));
    }

    #[test]
    fn directory_mutation_needs_replay_only() {
        let src = format!("{ROOT}fn f(dir: &mut Directory) {{ dir.subscribe(1, 2); }}");
        let fx = lint("shard.rs", &src);
        assert_eq!(fx.len(), 1, "{fx:#?}");
        assert_eq!(fx[0].rule, "replay-only");
    }

    #[test]
    fn replay_only_annotation_suppresses_in_coordinator() {
        let src = format!(
            "{ROOT}fn f() {{ apply(); }}\n\
             // detlint: replay-only\n\
             fn apply() {{ let dir: Directory = Directory::new(); dir.subscribe(1, 2); }}"
        );
        assert!(lint("cluster.rs", &src).is_empty());
    }

    #[test]
    fn replay_only_outside_coordinator_is_misplaced() {
        let src = format!(
            "{ROOT}fn f() {{}}\n// detlint: replay-only\nfn sneaky(dir: &mut Directory) {{ dir.open(1); }}"
        );
        let fx = lint("dmon.rs", &src);
        assert_eq!(fx.len(), 1, "{fx:#?}");
        assert_eq!(fx[0].rule, "misplaced-annotation");
    }

    #[test]
    fn pcoord_owner_is_coordinator_in_pcluster() {
        let src = format!(
            "{ROOT}fn f() {{ PCoord::apply(); }}\n\
             struct PCoord;\nimpl PCoord {{\n// detlint: replay-only\n\
             fn apply(dir: &mut Directory) {{ dir.subscribe(1, 2); }}\n}}\n\
             struct PShard;\nimpl PShard {{\n// detlint: replay-only\n\
             fn bad(dir: &mut Directory) {{ dir.subscribe(1, 2); }}\n}}"
        );
        let fx = lint("pcluster.rs", &src);
        assert_eq!(fx.len(), 1, "{fx:#?}");
        assert_eq!(fx[0].rule, "misplaced-annotation");
        assert_eq!(fx[0].function, "bad");
    }

    #[test]
    fn allow_directive_suppresses_within_range() {
        let src = format!(
            "{ROOT}fn f(m: &HashMap<u32,u32>) {{\n  \
             // detlint: allow(unordered-iter) sorted on the next line\n  \
             let mut v: Vec<_> = m.keys().collect();\n  v.sort();\n}}"
        );
        assert!(lint("a.rs", &src).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = format!(
            "{ROOT}fn f(m: &HashMap<u32,u32>) {{\n  \
             // detlint: allow(ambient-time) wrong rule\n  \
             let v: Vec<_> = m.keys().collect();\n}}"
        );
        assert_eq!(lint("a.rs", &src).len(), 1);
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = format!(
            "{ROOT}fn f() {{ let m: BTreeMap<u32,u32> = BTreeMap::new(); \
             for k in m.keys() {{}} }}"
        );
        assert!(lint("a.rs", &src).is_empty());
    }
}
