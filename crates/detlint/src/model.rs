//! From tokens to a workspace model: functions with bodies, attached
//! directives, a name-based call graph, and the identifier type facts
//! the rules need (which names are unordered maps, which are channel
//! directories).
//!
//! Resolution is deliberately name-based and conservative: a method
//! call `.poll(` links to *every* scanned function named `poll`, and a
//! qualified call `DMon::poll(` links to functions named `poll` whose
//! `impl` owner is `DMon`. Over-approximation can only make more code
//! reachable — it never hides a finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Directive, Tok, TokKind};

/// Rust keywords that look like call names but never are.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "pub", "impl",
    "struct", "enum", "trait", "mod", "use", "where", "in", "as", "ref", "move", "const", "static",
    "type", "unsafe", "dyn", "crate", "self", "Self", "super", "break", "continue",
];

/// One scanned function.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// `impl` owner type, when declared inside an impl block.
    pub owner: Option<String>,
    /// Index of the file in [`Workspace::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (inside the braces, exclusive).
    pub body: (usize, usize),
    /// Directives attached just above the `fn` (e.g. `shard-entry`,
    /// `replay-only`).
    pub annotations: Vec<String>,
    /// Names this function calls: `name` for plain and method calls,
    /// `Owner::name` additionally for qualified calls.
    pub calls: BTreeSet<String>,
}

/// One scanned file.
#[derive(Debug)]
pub struct FileModel {
    /// Path as given to [`Workspace::add_file`] (display + baseline key).
    pub path: String,
    /// Token stream (test modules removed).
    pub tokens: Vec<Tok>,
    /// All detlint directives, by line.
    pub directives: Vec<Directive>,
    /// Source lines (for snippets).
    pub lines: Vec<String>,
}

/// The scanned workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Files in scan order.
    pub files: Vec<FileModel>,
    /// Functions across all files.
    pub fns: Vec<FnInfo>,
    /// Identifiers declared with a std `HashMap`/`HashSet` type.
    pub std_unordered: BTreeSet<String>,
    /// Identifiers declared with an `FxHashMap`/`FxHashSet` type.
    pub fx_unordered: BTreeSet<String>,
    /// Identifiers declared with the channel-registry `Directory` type.
    pub directory_names: BTreeSet<String>,
}

impl Workspace {
    /// Parse one file into the workspace.
    pub fn add_file(&mut self, path: &str, src: &str) {
        let (tokens, directives) = lex(src);
        let tokens = strip_test_modules(tokens);
        let file = self.files.len();
        self.collect_type_facts(&tokens);
        let mut fns = extract_fns(&tokens, &directives, file);
        for f in &mut fns {
            f.calls = extract_calls(&tokens, f.body);
        }
        self.fns.append(&mut fns);
        self.files.push(FileModel {
            path: path.to_string(),
            tokens,
            directives,
            lines: src.lines().map(str::to_string).collect(),
        });
    }

    /// Record which identifiers are declared with unordered-map or
    /// Directory types, across struct fields, lets, and parameters.
    fn collect_type_facts(&mut self, toks: &[Tok]) {
        for i in 0..toks.len() {
            let Some(tyname) = toks[i].ident() else {
                continue;
            };
            let class = match tyname {
                "HashMap" | "HashSet" => 0,
                "FxHashMap" | "FxHashSet" => 1,
                "Directory" => 2,
                _ => continue,
            };
            let Some(name) = declared_name(toks, i) else {
                continue;
            };
            match class {
                0 => {
                    self.std_unordered.insert(name);
                }
                1 => {
                    self.fx_unordered.insert(name);
                }
                _ => {
                    self.directory_names.insert(name);
                }
            }
        }
    }

    /// The set of function indices reachable from `shard-entry` roots.
    pub fn reachable_from_roots(&self) -> BTreeSet<usize> {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.annotations.iter().any(|a| a.starts_with("shard-entry")))
            .map(|(i, _)| i)
            .collect();
        while let Some(i) = queue.pop() {
            if !seen.insert(i) {
                continue;
            }
            for call in &self.fns[i].calls {
                let (owner, name) = match call.split_once("::") {
                    Some((o, n)) => (Some(o), n),
                    None => (None, call.as_str()),
                };
                for &j in by_name.get(name).into_iter().flatten() {
                    let matches_owner = match owner {
                        Some(o) => self.fns[j].owner.as_deref() == Some(o),
                        None => true,
                    };
                    if matches_owner && !seen.contains(&j) {
                        queue.push(j);
                    }
                }
            }
        }
        seen
    }

    /// True when any function carries a `shard-entry` annotation.
    pub fn has_roots(&self) -> bool {
        self.fns
            .iter()
            .any(|f| f.annotations.iter().any(|a| a.starts_with("shard-entry")))
    }
}

/// Given the index of a type name (e.g. `HashMap`), walk back to the
/// identifier it declares: `conns: FxHashMap<..>`, `x = HashMap::new()`,
/// `dir: &mut Directory`. Returns `None` when the type appears nested in
/// a generic position with no direct binder.
fn declared_name(toks: &[Tok], ty_at: usize) -> Option<String> {
    let mut j = ty_at;
    // Walk back over a leading path (`std :: collections :: HashMap`).
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        if j >= 3 && toks[j - 3].ident().is_some() {
            j -= 3;
        } else {
            break;
        }
    }
    if j == 0 {
        return None;
    }
    // Expect `:` (type ascription) or `=` (initializer) next, possibly
    // behind `&`/`mut`.
    let mut k = j - 1;
    while k > 0 && (toks[k].is_punct('&') || toks[k].ident() == Some("mut")) {
        k -= 1;
    }
    let binder = if toks[k].is_punct(':') && !(k >= 1 && toks[k - 1].is_punct(':')) {
        // `name : Type` — but not a path separator.
        k.checked_sub(1)
    } else if toks[k].is_punct('=') {
        // `name = HashMap::new()` / `name = HashMap::default()`.
        k.checked_sub(1)
    } else {
        None
    }?;
    let name = toks[binder].ident()?;
    if KEYWORDS.contains(&name) {
        return None;
    }
    Some(name.to_string())
}

/// Remove `#[cfg(test)] mod … { … }` regions: tests may legitimately
/// use wall clocks, ambient entropy, and hash-order iteration.
fn strip_test_modules(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_at(&toks, i) {
            // Skip the attribute, then the `mod name {` and its body.
            let mut j = i + 6; // past `# [ cfg ( test ) ]` is 7 tokens: #,[,cfg,(,test,),]
            j += 1;
            // Find the opening brace of the mod (or give up).
            let mut brace = None;
            for (off, t) in toks[j..].iter().take(8).enumerate() {
                if t.is_punct('{') {
                    brace = Some(j + off);
                    break;
                }
            }
            if let Some(open) = brace {
                if let Some(close) = matching_brace(&toks, open) {
                    i = close + 1;
                    continue;
                }
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Does `# [ cfg ( test ) ]` start at `i`, followed (soon) by `mod`?
fn is_cfg_test_at(toks: &[Tok], i: usize) -> bool {
    let pat = [
        toks.get(i).map(|t| t.is_punct('#')) == Some(true),
        toks.get(i + 1).map(|t| t.is_punct('[')) == Some(true),
        toks.get(i + 2).and_then(Tok::ident) == Some("cfg"),
        toks.get(i + 3).map(|t| t.is_punct('(')) == Some(true),
        toks.get(i + 4).and_then(Tok::ident) == Some("test"),
        toks.get(i + 5).map(|t| t.is_punct(')')) == Some(true),
        toks.get(i + 6).map(|t| t.is_punct(']')) == Some(true),
    ];
    pat.iter().all(|&p| p) && toks.get(i + 7).and_then(Tok::ident) == Some("mod")
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Extract every `fn` with its body range, impl owner, and attached
/// directives.
fn extract_fns(toks: &[Tok], directives: &[Directive], file: usize) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    // impl-owner tracking: a stack of (owner, close_brace_index).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(&(_, close)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        if toks[i].ident() == Some("impl") {
            if let Some((owner, open)) = impl_header(toks, i) {
                if let Some(close) = matching_brace(toks, open) {
                    impl_stack.push((owner, close));
                    i = open + 1;
                    continue;
                }
            }
        }
        if toks[i].ident() == Some("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if let Some(name) = name_tok.ident() {
                    if let Some(open) = body_open(toks, i + 2) {
                        if let Some(close) = matching_brace(toks, open) {
                            let line = toks[i].line;
                            fns.push(FnInfo {
                                name: name.to_string(),
                                owner: impl_stack.last().map(|(o, _)| o.clone()),
                                file,
                                line,
                                body: (open + 1, close),
                                annotations: Vec::new(),
                                calls: BTreeSet::new(),
                            });
                            // Do not jump past the body: nested fns get
                            // their own entries.
                            i += 2;
                            continue;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // Attach each non-allow directive to the *nearest* fn below it
    // (within 5 lines) — not to every fn in range, or a `shard-entry`
    // comment would leak onto unrelated neighbors.
    for d in directives {
        if d.text.starts_with("allow(") {
            continue;
        }
        let nearest = fns
            .iter_mut()
            .filter(|f| f.line > d.line && f.line - d.line <= 5)
            .min_by_key(|f| f.line);
        if let Some(f) = nearest {
            f.annotations.push(d.text.clone());
        }
    }
    fns
}

/// From an `impl` keyword, find the owner type name and the opening
/// brace of the impl block. The owner is the last plain identifier in
/// the header outside angle brackets (`impl ShardWorld for PShard` →
/// `PShard`; `impl<T> Table<T>` → `Table`).
fn impl_header(toks: &[Tok], impl_at: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut owner: Option<&str> = None;
    for (i, t) in toks.iter().enumerate().skip(impl_at + 1) {
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => {
                return owner.map(|o| (o.to_string(), i));
            }
            TokKind::Punct(';') => return None, // e.g. stray tokens
            TokKind::Ident(s) if angle == 0 && !KEYWORDS.contains(&s.as_str()) => {
                owner = Some(s);
            }
            _ => {}
        }
    }
    None
}

/// From just past the fn name, find the body's opening brace, skipping
/// the signature (parens, generics, return type, where clause).
fn body_open(toks: &[Tok], from: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                // `->` is not a closing angle.
                if !(i > 0 && toks[i - 1].is_punct('-')) {
                    angle -= 1;
                }
            }
            TokKind::Punct(';') if angle <= 0 => return None, // trait decl, no body
            TokKind::Punct('{') if angle <= 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Collect call targets in a body range: `name(`, `.name(`, and
/// `Owner::name(` (recorded as both `name` and `Owner::name`).
fn extract_calls(toks: &[Tok], body: (usize, usize)) -> BTreeSet<String> {
    let mut calls = BTreeSet::new();
    let (start, end) = body;
    for i in start..end.min(toks.len()) {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if KEYWORDS.contains(&name) {
            continue;
        }
        let next_is_paren = toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true);
        if !next_is_paren {
            continue;
        }
        // Macro invocation `name!(` never reaches a fn by that name.
        // (The `!` sits between name and paren, so this arm is only for
        // safety with `name !(` spacing — tokens have no spacing.)
        if toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true) {
            continue;
        }
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            // Qualified: find the owner segment before `::`.
            if let Some(owner) = toks.get(i.wrapping_sub(3)).and_then(Tok::ident) {
                calls.insert(format!("{owner}::{name}"));
            }
            calls.insert(name.to_string());
        } else {
            // Plain or method call.
            calls.insert(name.to_string());
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        let mut w = Workspace::default();
        w.add_file("test.rs", src);
        w
    }

    #[test]
    fn fn_extraction_with_owner_and_annotations() {
        let w = ws(r"
struct PShard;
trait ShardWorld { fn execute(&mut self); }
impl ShardWorld for PShard {
    // detlint: shard-entry
    fn execute(&mut self) { self.poll_all(); helper(); }
}
fn helper() {}
");
        let names: Vec<(&str, Option<&str>)> = w
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert!(names.contains(&("execute", Some("PShard"))));
        assert!(names.contains(&("helper", None)));
        let exec = w.fns.iter().find(|f| f.owner.is_some()).unwrap();
        assert_eq!(exec.annotations, vec!["shard-entry"]);
        assert!(exec.calls.contains("poll_all"));
        assert!(exec.calls.contains("helper"));
    }

    #[test]
    fn type_facts_from_fields_lets_and_params() {
        let w = ws(r"
struct S { conns: FxHashMap<u32, u32>, names: std::collections::HashMap<String, u32> }
fn f(dir: &mut Directory) {
    let mut cache = HashMap::new();
    let ordered: BTreeMap<u32, u32> = BTreeMap::new();
}
");
        assert!(w.fx_unordered.contains("conns"));
        assert!(w.std_unordered.contains("names"));
        assert!(w.std_unordered.contains("cache"));
        assert!(w.directory_names.contains("dir"));
        assert!(!w.std_unordered.contains("ordered"));
    }

    #[test]
    fn reachability_follows_calls_and_owners() {
        let w = ws(r"
// detlint: shard-entry
fn root() { step_one(); }
fn step_one() { Helper::deep(); }
struct Helper;
impl Helper { fn deep() {} }
fn unrelated() {}
");
        let reach = w.reachable_from_roots();
        let reached: Vec<&str> = reach.iter().map(|&i| w.fns[i].name.as_str()).collect();
        assert!(reached.contains(&"root"));
        assert!(reached.contains(&"step_one"));
        assert!(reached.contains(&"deep"));
        assert!(!reached.contains(&"unrelated"));
    }

    #[test]
    fn test_modules_are_stripped() {
        let w = ws(r"
fn real() {}
#[cfg(test)]
mod tests {
    fn helper_in_tests() {}
}
");
        assert_eq!(w.fns.len(), 1);
        assert_eq!(w.fns[0].name, "real");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let w = ws("trait T { fn no_body(&self); fn with_body(&self) { x(); } }");
        let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
