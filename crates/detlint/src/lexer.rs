//! A minimal Rust lexer: just enough to see identifiers, punctuation,
//! and `// detlint:` directives, with line/column positions.
//!
//! The linter never needs full syntax — its rules are token-shape
//! patterns (`name . iter (`, `std :: time`, …) plus brace matching.
//! What it *must* get right is skipping the places tokens don't live:
//! string literals (plain, raw, byte), char literals, and comments
//! (line and nested block), or a banned name inside a log message would
//! count as a use. Lifetimes are disambiguated from char literals so
//! `&'a str` doesn't eat the rest of the file.

/// One token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Line, 1-based.
    pub line: u32,
    /// Column, 1-based (byte offset within the line).
    pub col: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token classes the linter distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation byte (`::` arrives as two `:`).
    Punct(char),
    /// A numeric literal (value irrelevant).
    Number,
    /// A lifetime like `'a` (distinguished from char literals).
    Lifetime,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One `// detlint: ...` directive comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Line the comment sits on, 1-based.
    pub line: u32,
    /// Text after `detlint:`, trimmed (e.g. `shard-entry`,
    /// `allow(unordered-iter) sorted below`).
    pub text: String,
}

/// Lex `src` into tokens plus the detlint directives found in comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Directive>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advance `n` bytes, maintaining line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!(1);
            continue;
        }
        // Line comment — the only place directives live.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                bump!(1);
            }
            let text = &src[start..i];
            let body = text.trim_start_matches('/').trim();
            if let Some(rest) = body.strip_prefix("detlint:") {
                directives.push(Directive {
                    line,
                    text: rest.trim().to_string(),
                });
            }
            continue;
        }
        // Block comment, nesting like Rust's.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            bump!(2);
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# with any # count.
        if (c == b'r' || c == b'b') && is_raw_string_start(b, i) {
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // j is at the opening quote.
            let consumed_prefix = j + 1 - i;
            bump!(consumed_prefix);
            loop {
                if i >= b.len() {
                    break;
                }
                if b[i] == b'"' {
                    let mut k = i + 1;
                    let mut h = 0;
                    while k < b.len() && b[k] == b'#' && h < hashes {
                        h += 1;
                        k += 1;
                    }
                    if h == hashes {
                        bump!(1 + hashes);
                        break;
                    }
                }
                bump!(1);
            }
            continue;
        }
        // Plain / byte strings.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            if c == b'b' {
                bump!(1);
            }
            bump!(1); // opening quote
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            bump!(1); // closing quote
            continue;
        }
        // Lifetime or char literal.
        if c == b'\'' {
            // A lifetime is ' followed by ident chars with no closing
            // quote right after ('a, 'static); anything else is a char
            // literal ('x', '\n', '\u{1F600}').
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                && !(i + 2 < b.len() && b[i + 2] == b'\'');
            if is_lifetime {
                let (l, cl) = (line, col);
                bump!(1);
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    bump!(1);
                }
                toks.push(Tok {
                    line: l,
                    col: cl,
                    kind: TokKind::Lifetime,
                });
            } else {
                bump!(1); // opening quote
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        bump!(2);
                    } else {
                        bump!(1);
                    }
                }
                bump!(1); // closing quote
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            let (l, cl) = (line, col);
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                bump!(1);
            }
            toks.push(Tok {
                line: l,
                col: cl,
                kind: TokKind::Ident(src[start..i].to_string()),
            });
            continue;
        }
        // Number (loose: consume alphanumerics, '_', '.', exponent signs).
        if c.is_ascii_digit() {
            let (l, cl) = (line, col);
            while i < b.len()
                && (b[i].is_ascii_alphanumeric()
                    || b[i] == b'_'
                    || (b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()))
            {
                bump!(1);
            }
            toks.push(Tok {
                line: l,
                col: cl,
                kind: TokKind::Number,
            });
            continue;
        }
        // Everything else: one punctuation byte.
        toks.push(Tok {
            line,
            col,
            kind: TokKind::Punct(c as char),
        });
        bump!(1);
    }
    (toks, directives)
}

/// Is `b[i]` the start of a raw-string literal (`r"`, `r#`, `br"`,
/// `br#`)? Plain `r` / `b` identifiers fall through to ident lexing.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            // b"..." is handled by the plain-string arm.
            return false;
        }
    }
    if b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
// HashMap in a comment
/* HashMap /* nested */ still comment */
let x = "HashMap.iter()";
let y = r#"HashMap"#;
let c = 'H';
real_ident
"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "c", "real_ident"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert_eq!(ids.iter().filter(|s| *s == "x").count(), 2);
    }

    #[test]
    fn directives_are_collected_with_lines() {
        let src = "fn a() {}\n// detlint: shard-entry\nfn b() {}\n// detlint: allow(unordered-iter) sorted\n";
        let (_, ds) = lex(src);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].line, 2);
        assert_eq!(ds[0].text, "shard-entry");
        assert_eq!(ds[1].line, 4);
        assert!(ds[1].text.starts_with("allow(unordered-iter)"));
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_and_raw_strings_skip_cleanly() {
        let ids = idents(r#"let a = b"bytes"; let b2 = br#x; "#);
        // br# with no quote is not a raw string; 'br' lexes as ident.
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"b2".to_string()));
    }
}
