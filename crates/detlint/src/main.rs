//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint -- --check            # CI gate: fail on fresh errors
//! cargo run -p detlint --                    # report everything, exit 0
//! cargo run -p detlint -- --write-baseline   # grandfather current findings
//! ```
//!
//! Options: `--root <dir>` (default: nearest ancestor with a
//! `Cargo.toml` containing `[workspace]`, else cwd), `--baseline <file>`
//! (default: `<root>/detlint.baseline`).

// detlint is a terminal tool; printing is its job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{Baseline, Finding, Severity};

struct Opts {
    check: bool,
    write_baseline: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        check: false,
        write_baseline: false,
        root: None,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--write-baseline" => opts.write_baseline = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--help" | "-h" => {
                println!(
                    "detlint — replay-safety lint for shard-context code\n\n\
                     USAGE: detlint [--check] [--write-baseline] \
                     [--root <dir>] [--baseline <file>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Nearest ancestor directory whose Cargo.toml declares `[workspace]`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = opts.root.unwrap_or_else(find_root);
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("detlint.baseline"));

    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = Baseline::parse(&baseline_text);

    let report = match detlint::run_scan(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let all: Vec<Finding> = report
            .baselined
            .iter()
            .chain(report.fresh.iter())
            .cloned()
            .collect();
        let text = Baseline::render(&all);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("detlint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote {} entries to {}",
            all.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    for f in &report.fresh {
        println!("{}", f.render());
    }
    let warnings = report
        .fresh
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .count();
    let errors = report.fresh_errors();
    println!(
        "detlint: {} files, {} fns scanned; {errors} error(s), {warnings} warning(s), {} baselined",
        report.files_scanned,
        report.fns_scanned,
        report.baselined.len()
    );

    if opts.check && errors > 0 {
        eprintln!(
            "detlint: --check failed ({errors} unbaselined error(s)); fix them, \
             `// detlint: allow(<rule>) <reason>` them, or --write-baseline"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
