//! detlint — workspace determinism lint for the dproc reproduction.
//!
//! The sharded parallel simulator (`crates/core/src/pcluster.rs`)
//! replays shard windows and requires bit-identical re-execution: the
//! same events, in the same order, producing the same f64 sums. That
//! property cannot be checked at runtime for every code path, so this
//! crate checks it statically, the way the kernel's eBPF verifier
//! fronts for E-code admission (see `DESIGN.md` §13): a small,
//! conservative analyzer over a restricted discipline, run as a
//! blocking CI gate.
//!
//! The pipeline: [`lexer`] turns each source file into tokens and
//! `// detlint:` directives; [`model`] extracts functions, impl owners,
//! a name-based call graph, and which identifiers are unordered maps or
//! channel `Directory`s; [`rules`] evaluates the replay-safety rules on
//! everything reachable from `shard-entry` roots; [`baseline`] lets
//! pre-existing findings be grandfathered without weakening the gate
//! for new code.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;

use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use rules::{Finding, Severity};

/// Crate source dirs scanned by default, relative to the workspace
/// root. `bench` is exempt (it drives the simulator from outside any
/// shard window); shims (`rand`, `proptest`, …) are test scaffolding.
pub const SCAN_DIRS: &[&str] = &[
    "crates/simcore/src",
    "crates/core/src",
    "crates/kecho/src",
    "crates/simnet/src",
];

/// Scan result: findings plus how the baseline split them.
#[derive(Debug)]
pub struct Report {
    /// Findings not covered by the baseline.
    pub fresh: Vec<Finding>,
    /// Findings covered by the baseline.
    pub baselined: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Functions found.
    pub fns_scanned: usize,
}

impl Report {
    /// Errors among the fresh findings (warnings don't fail the gate).
    pub fn fresh_errors(&self) -> usize {
        self.fresh
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }
}

/// Collect the `.rs` files under the default scan dirs, sorted.
pub fn scan_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if !d.is_dir() {
            continue;
        }
        collect_rs(&d, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Build the workspace model from explicit files. Paths are stored
/// relative to `root` when possible (stable baseline keys across
/// machines).
pub fn build_workspace(root: &Path, files: &[PathBuf]) -> std::io::Result<model::Workspace> {
    let mut ws = model::Workspace::default();
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let display = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        ws.add_file(&display, &src);
    }
    Ok(ws)
}

/// Run the full scan over `root` against `baseline`.
pub fn run_scan(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let files = scan_files(root)?;
    let ws = build_workspace(root, &files)?;
    let findings = rules::run(&ws);
    let (baselined, fresh): (Vec<Finding>, Vec<Finding>) =
        findings.into_iter().partition(|f| baseline.contains(f));
    Ok(Report {
        fresh,
        baselined,
        files_scanned: ws.files.len(),
        fns_scanned: ws.fns.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/detlint → workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root")
    }

    fn fixture(name: &str) -> String {
        let p = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    }

    fn lint_fixture(name: &str) -> Vec<Finding> {
        let mut ws = model::Workspace::default();
        ws.add_file(name, &fixture(name));
        rules::run(&ws)
    }

    #[test]
    fn fixture_unordered_iter_fails() {
        let fx = lint_fixture("unordered_iter.rs");
        assert!(fx.iter().any(|f| f.rule == "unordered-iter"), "{fx:#?}");
    }

    #[test]
    fn fixture_ambient_time_fails() {
        let fx = lint_fixture("ambient_time.rs");
        assert!(fx.iter().any(|f| f.rule == "ambient-time"), "{fx:#?}");
    }

    #[test]
    fn fixture_ambient_rng_fails() {
        let fx = lint_fixture("ambient_rng.rs");
        assert!(fx.iter().any(|f| f.rule == "ambient-rng"), "{fx:#?}");
    }

    #[test]
    fn fixture_replay_only_fails() {
        // The fixture plays the role of a shard-context module, so any
        // replay-only annotation in it is also misplaced.
        let fx = lint_fixture("replay_only.rs");
        assert!(fx.iter().any(|f| f.rule == "replay-only"), "{fx:#?}");
        assert!(
            fx.iter().any(|f| f.rule == "misplaced-annotation"),
            "{fx:#?}"
        );
    }

    #[test]
    fn fixture_clean_passes() {
        let fx = lint_fixture("clean.rs");
        assert!(fx.is_empty(), "{fx:#?}");
    }

    #[test]
    fn real_workspace_has_no_unbaselined_errors() {
        let root = repo_root();
        let baseline_path = root.join("detlint.baseline");
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
        let bl = Baseline::parse(&text);
        let report = run_scan(&root, &bl).expect("scan");
        assert!(report.files_scanned > 10, "scan found the real tree");
        let errors: Vec<String> = report
            .fresh
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .map(Finding::render)
            .collect();
        assert!(
            errors.is_empty(),
            "unbaselined detlint errors:\n{}",
            errors.join("\n")
        );
    }
}
