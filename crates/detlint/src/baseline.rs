//! Baseline files: accepted findings that `--check` tolerates.
//!
//! A baseline entry is keyed on `(rule, file, function, snippet-hash)` —
//! deliberately *not* on line numbers, so unrelated edits above a
//! grandfathered finding don't churn the file. The human-readable
//! snippet rides along for review; only the hash is compared.
//!
//! Format, one entry per line, tab-separated:
//! ```text
//! # comments and blank lines ignored
//! rule<TAB>file<TAB>function<TAB>snippet_hash_hex<TAB>snippet
//! ```

use std::collections::BTreeSet;

use crate::rules::Finding;

/// FNV-1a over the trimmed snippet (the same hash family the memo
/// fingerprints use; collisions here only over-suppress one lint line,
/// never affect correctness).
fn snippet_hash(snippet: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in snippet.trim().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The key a finding is matched under.
fn key(f: &Finding) -> String {
    format!(
        "{}\t{}\t{}\t{:016x}",
        f.rule,
        f.file,
        f.function,
        snippet_hash(&f.snippet)
    )
}

/// A parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<String>,
}

impl Baseline {
    /// Parse baseline text (missing file → empty baseline).
    pub fn parse(text: &str) -> Self {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                // Keep only the first four fields — the snippet text is
                // display-only.
                let fields: Vec<&str> = l.splitn(5, '\t').collect();
                if fields.len() >= 4 {
                    Some(fields[..4].join("\t"))
                } else {
                    None
                }
            })
            .collect();
        Baseline { entries }
    }

    /// Number of baselined findings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is this finding grandfathered?
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries.contains(&key(f))
    }

    /// Serialize findings as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# detlint baseline — grandfathered findings, one per line.\n\
             # rule\tfile\tfunction\tsnippet_hash\tsnippet\n\
             # Remove lines as the findings are fixed; `--check` fails on\n\
             # any finding not listed here.\n",
        );
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| format!("{}\t{}", key(f), f.snippet))
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    fn finding(rule: &'static str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: "crates/core/src/dmon.rs".to_string(),
            line,
            col: 9,
            function: "poll".to_string(),
            message: "msg".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn roundtrip_ignores_line_numbers() {
        let f1 = finding("unordered-iter", 10, "for k in m.keys() {");
        let text = Baseline::render(std::slice::from_ref(&f1));
        let bl = Baseline::parse(&text);
        assert_eq!(bl.len(), 1);
        // Same finding, shifted 40 lines: still matched.
        let moved = finding("unordered-iter", 50, "for k in m.keys() {");
        assert!(bl.contains(&moved));
        // Different snippet: not matched.
        let other = finding("unordered-iter", 10, "for k in other.keys() {");
        assert!(!bl.contains(&other));
        // Different rule: not matched.
        let rule = finding("ambient-time", 10, "for k in m.keys() {");
        assert!(!bl.contains(&rule));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let bl = Baseline::parse("# header\n\n  # more\n");
        assert!(bl.is_empty());
    }
}
