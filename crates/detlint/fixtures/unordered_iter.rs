//! Seeded violation: hash-order iteration on the shard path.
//! NOT compiled — parsed by detlint's own tests.

struct Table {
    rows: HashMap<u32, f64>,
}

// detlint: shard-entry
fn execute(t: &mut Table) {
    let mut total = 0.0;
    // f64 addition is not associative: this sum depends on hasher order.
    for (_k, v) in t.rows.iter() {
        total += v;
    }
    report(total);
}

fn report(_x: f64) {}
