//! Seeded violations: Directory mutation from shard context, and a
//! `replay-only` escape hatch outside a coordinator module.
//! NOT compiled — parsed by detlint's own tests.

// detlint: shard-entry
fn execute(dir: &mut Directory) {
    // Subscribing mid-window reshapes the channel registry; replay of
    // this window would see a different directory.
    dir.subscribe(1, 2);
    sneaky(dir);
}

// This annotation does not belong here: the fixture is not cluster.rs
// and not a PCoord impl, so it raises misplaced-annotation.
// detlint: replay-only
fn sneaky(dir: &mut Directory) {
    dir.open(7);
}
