//! Clean shard-path code: ordered containers, sim time, seeded RNG,
//! and hash maps used only for point lookups.
//! NOT compiled — parsed by detlint's own tests.

struct Table {
    rows: FxHashMap<u32, f64>,
    order: Vec<u32>,
}

// detlint: shard-entry
fn execute(t: &mut Table, now: SimTime) {
    let mut total = 0.0;
    // Iteration goes through the sorted index, lookups through the map.
    for id in &t.order {
        total += t.rows.get(id).copied().unwrap_or(0.0);
    }
    // detlint: allow(unordered-iter) sorted before use on the next line
    let mut keys: Vec<u32> = t.rows.keys().copied().collect();
    keys.sort_unstable();
    report(now, total, keys.len());
}

fn report(_now: SimTime, _x: f64, _n: usize) {}
