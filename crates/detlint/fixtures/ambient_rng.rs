//! Seeded violation: ambient entropy on the shard path.
//! NOT compiled — parsed by detlint's own tests.

// detlint: shard-entry
fn execute() {
    let jitter = sample();
    apply(jitter);
}

fn sample() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0)
}

fn apply(_j: f64) {}
