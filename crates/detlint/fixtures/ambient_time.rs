//! Seeded violation: wall-clock read on the shard path.
//! NOT compiled — parsed by detlint's own tests.

// detlint: shard-entry
fn execute() {
    step();
}

fn step() {
    let started = std::time::Instant::now();
    work();
    let _elapsed = started.elapsed();
}

fn work() {}
