//! Routing-completeness properties of the channel directory: whatever the
//! topology, every subscriber (except the publisher) is reached exactly
//! once, and nobody else is.

use std::collections::BTreeSet;

use kecho::{Directory, Topology};
use proptest::prelude::*;
use simnet::NodeId;

fn subscribers_strategy() -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::btree_set(0usize..16, 0..12)
}

proptest! {
    #[test]
    fn p2p_reaches_all_subscribers_exactly_once(
        subs in subscribers_strategy(),
        publisher in 0usize..16,
    ) {
        let mut dir = Directory::new(Topology::PeerToPeer);
        let chan = dir.open("mon");
        for &s in &subs {
            dir.subscribe(chan, NodeId(s));
        }
        let hops = dir.plan_submission(chan, NodeId(publisher));
        let reached: BTreeSet<usize> = hops.iter().map(|h| h.to.0).collect();
        let mut expected = subs.clone();
        expected.remove(&publisher);
        prop_assert_eq!(reached, expected);
        prop_assert_eq!(hops.len(), {
            let mut e = subs.clone();
            e.remove(&publisher);
            e.len()
        }, "no duplicates");
        prop_assert!(hops.iter().all(|h| h.from.0 == publisher));
        prop_assert!(dir.plan_forward(chan, NodeId(publisher)).is_empty());
    }

    #[test]
    fn central_submission_plus_forward_reaches_everyone(
        subs in subscribers_strategy(),
        publisher in 0usize..16,
        hub in 0usize..16,
    ) {
        let mut dir = Directory::new(Topology::Central(NodeId(hub)));
        let chan = dir.open("mon");
        for &s in &subs {
            dir.subscribe(chan, NodeId(s));
        }
        let first = dir.plan_submission(chan, NodeId(publisher));
        let forward = dir.plan_forward(chan, NodeId(publisher));

        // Union of consumers: first-hop destinations that are subscribers
        // (the hub consumes only if subscribed) plus forward destinations.
        let mut reached: BTreeSet<usize> = forward.iter().map(|h| h.to.0).collect();
        for h in &first {
            if subs.contains(&h.to.0) {
                reached.insert(h.to.0);
            }
        }
        // The hub consumes events that land on it if it subscribes.
        if subs.contains(&hub) && publisher != hub && !first.is_empty() {
            reached.insert(hub);
        }
        let mut expected = subs.clone();
        expected.remove(&publisher);
        prop_assert_eq!(reached, expected, "first {:?} forward {:?}", first, forward);
        // Every forward hop originates at the hub.
        prop_assert!(forward.iter().all(|h| h.from.0 == hub));
        // The publisher sends at most one message (to the hub) unless it
        // is the hub itself.
        if publisher != hub {
            prop_assert!(first.len() <= 1);
        }
    }

    #[test]
    fn open_is_idempotent_and_names_stable(names in proptest::collection::vec("[a-z]{1,8}", 1..10)) {
        let mut dir = Directory::default();
        let ids: Vec<_> = names.iter().map(|n| dir.open(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(dir.open(name), id);
            prop_assert_eq!(dir.lookup(name), Some(id));
            prop_assert_eq!(dir.name(id), name.as_str());
        }
    }
}
