//! Wire-corruption robustness: mutating bytes of a valid frame must make
//! `decode_event` return an error — never panic, and never hand back an
//! event that could be misattributed to a stream. The FNV-1a trailer
//! guarantees the "never misattributes" half: any frame that still parses
//! after a mutation fails the checksum instead.

use bytes::Bytes;
use kecho::{decode_event, encode_event, ControlMsg, Event, MonRecord, MonitoringPayload};
use proptest::prelude::*;
use simnet::NodeId;

/// A strategy over structurally-varied valid events.
fn event_strategy() -> impl Strategy<Value = Event> {
    let records = proptest::collection::vec(
        (0u32..8, -1e6f64..1e6, -1e6f64..1e6, 0f64..1e4).prop_map(
            |(metric_id, value, last_value_sent, timestamp)| MonRecord {
                metric_id,
                value,
                last_value_sent,
                timestamp,
            },
        ),
        0..6,
    );
    let monitoring = (
        records,
        0u32..64,
        0u32..1000,
        any::<u32>(),
        0usize..8,
        0u32..256,
    )
        .prop_map(
            |(records, pad_bytes, stream_seq, epoch, origin, credit_grant)| {
                Event::monitoring(
                    1,
                    7,
                    NodeId(origin),
                    MonitoringPayload {
                        origin: NodeId(origin),
                        epoch,
                        stream_seq,
                        credit_grant,
                        records,
                        pad_bytes,
                        ext_names: vec![(9, "custom".into(), "proc_custom".into())],
                    },
                )
            },
        );
    let control = prop_oneof![
        Just(ControlMsg::RemoveFilter),
        Just(ControlMsg::Announce),
        (0u32..1000).prop_map(|credits| ControlMsg::Credit { credits }),
        "[a-z ]{0,24}".prop_map(|source| ControlMsg::DeployFilter { source }),
        "[a-z ]{0,24}".prop_map(|reason| ControlMsg::FilterRejected { reason }),
    ]
    .prop_map(|msg| Event::control(2, 3, NodeId(0), NodeId(5), msg));
    prop_oneof![monitoring, control]
}

proptest! {
    #[test]
    fn mutated_frames_error_and_never_misattribute(
        ev in event_strategy(),
        flips in proptest::collection::vec((0usize..4096, 0u8..255), 1..5),
    ) {
        let clean = encode_event(&ev);
        let mut raw = clean.to_vec();
        for (pos, xor) in flips {
            let i = pos % raw.len();
            raw[i] ^= xor + 1; // 1..=255: never an identity flip per byte
        }
        // Two flips on one position can cancel; force a difference so the
        // property stays meaningful on every generated case.
        if raw == clean.as_ref() {
            raw[0] ^= 0xFF;
        }
        let err = decode_event(Bytes::from(raw));
        prop_assert!(err.is_err(), "mutated frame decoded as {:?}", err);
    }

    #[test]
    fn truncated_frames_error(ev in event_strategy(), keep in 0usize..4096) {
        let clean = encode_event(&ev);
        let cut = keep % clean.len(); // strictly shorter than the frame
        prop_assert!(decode_event(clean.slice(..cut)).is_err());
    }
}
