//! Per-stream continuity tracking: sequence-gap and restart detection.
//!
//! Every (publisher, subscriber) pair carries a dense stream of
//! `stream_seq` numbers — monitoring events and heartbeats both occupy
//! slots — tagged with the publisher's `epoch` (incarnation). A
//! [`StreamTracker`] on the subscriber side folds each arrival into the
//! expected position and reports exactly which sequence numbers were
//! skipped. An epoch bump is a *restart*, not a gap: the publisher
//! crashed and came back, so expectations reset instead of charging the
//! whole lost tail as loss.

/// Hard cap on the gap ranges a tracker retains. A long partition proves
/// millions of sequence numbers lost; remembering them individually would
/// grow without bound, so the log keeps at most this many coalesced
/// `(first, last)` ranges and forgets the oldest beyond it. The exact
/// *count* of lost positions is always preserved in [`StreamTracker::gaps`].
pub const MAX_GAP_RANGES: usize = 32;

/// What one arrival told us about the stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observation {
    /// Sequence numbers proven lost, as an inclusive `(first, last)`
    /// range: everything between the last arrival and this one,
    /// exclusive. `None` when the stream is contiguous. A gap is always
    /// one contiguous run, so this is O(1) memory no matter how long the
    /// outage was.
    pub missing: Option<(u32, u32)>,
    /// Exact number of lost positions in `missing` (`0` when contiguous).
    pub lost: u64,
    /// The publisher restarted (first contact in a new epoch). Missing
    /// numbers are never reported for a restart.
    pub restarted: bool,
    /// The arrival was from the past — a duplicate, a reordered
    /// straggler, or an old incarnation. It does not advance the stream.
    pub stale: bool,
    /// The arrival retroactively *cleared* a position previously counted
    /// lost: nothing in this protocol is ever retransmitted, so a
    /// same-epoch straggler below the expected position can only be an
    /// in-flight frame the tracker accused too eagerly (a priority-lane
    /// heartbeat outran it through a queued bulk lane). The loss counters
    /// have already been rolled back when this is set.
    pub healed: bool,
}

/// Continuity state for one incoming stream.
#[derive(Debug, Clone, Default)]
pub struct StreamTracker {
    /// Epoch of the last accepted arrival.
    epoch: u32,
    /// Next expected `stream_seq`; `None` before first contact.
    next: Option<u32>,
    /// Total sequence numbers proven lost so far.
    gaps: u64,
    /// Total restarts observed.
    restarts: u64,
    /// Recent lost ranges, inclusive, coalesced when adjacent and capped
    /// at [`MAX_GAP_RANGES`] (oldest forgotten first).
    gap_log: Vec<(u32, u32)>,
}

impl StreamTracker {
    /// A tracker that has heard nothing yet.
    #[must_use]
    pub fn new() -> Self {
        StreamTracker::default()
    }

    /// Fold in one arrival.
    pub fn observe(&mut self, epoch: u32, seq: u32) -> Observation {
        let mut obs = Observation::default();
        match self.next {
            None => {
                // First contact: adopt the stream wherever it is.
                self.epoch = epoch;
                self.next = Some(seq.wrapping_add(1));
            }
            Some(expected) => {
                if epoch > self.epoch {
                    self.epoch = epoch;
                    self.next = Some(seq.wrapping_add(1));
                    self.restarts += 1;
                    obs.restarted = true;
                } else if epoch < self.epoch || seq < expected {
                    obs.stale = true;
                    if epoch == self.epoch && self.unlog_gap(seq) {
                        // A current-epoch straggler that fills a recorded
                        // gap: the frame was in flight, not lost. Without
                        // retransmission that is the only way a position
                        // can arrive twice, so rolling the count back
                        // keeps `gaps` exact under reordering.
                        self.gaps = self.gaps.saturating_sub(1);
                        obs.healed = true;
                    }
                } else {
                    if seq > expected {
                        obs.missing = Some((expected, seq - 1));
                        obs.lost = u64::from(seq - expected);
                        self.gaps += obs.lost;
                        self.log_gap(expected, seq - 1);
                    }
                    self.next = Some(seq.wrapping_add(1));
                }
            }
        }
        obs
    }

    /// Remove one position from the gap log (a straggler disproved the
    /// accusation). Returns whether the position was found; splitting a
    /// range may grow the log, so the cap is re-enforced here too.
    fn unlog_gap(&mut self, seq: u32) -> bool {
        let Some(i) = self
            .gap_log
            .iter()
            .position(|&(first, last)| first <= seq && seq <= last)
        else {
            return false;
        };
        let (first, last) = self.gap_log[i];
        match (seq == first, seq == last) {
            (true, true) => {
                self.gap_log.remove(i);
            }
            (true, false) => self.gap_log[i].0 = seq + 1,
            (false, true) => self.gap_log[i].1 = seq - 1,
            (false, false) => {
                self.gap_log[i].1 = seq - 1;
                self.gap_log.insert(i + 1, (seq + 1, last));
                if self.gap_log.len() > MAX_GAP_RANGES {
                    self.gap_log.remove(0);
                }
            }
        }
        true
    }

    /// Append a lost range to the bounded log, coalescing with the
    /// previous entry when contiguous.
    fn log_gap(&mut self, first: u32, last: u32) {
        if let Some(tail) = self.gap_log.last_mut() {
            if tail.1.wrapping_add(1) == first {
                tail.1 = last;
                return;
            }
        }
        if self.gap_log.len() == MAX_GAP_RANGES {
            self.gap_log.remove(0);
        }
        self.gap_log.push((first, last));
    }

    /// Recent lost ranges, inclusive, oldest first — at most
    /// [`MAX_GAP_RANGES`] entries.
    #[must_use]
    pub fn gap_ranges(&self) -> &[(u32, u32)] {
        &self.gap_log
    }

    /// Has this stream ever delivered?
    #[must_use]
    pub fn contacted(&self) -> bool {
        self.next.is_some()
    }

    /// Epoch of the last accepted arrival.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total sequence numbers proven lost.
    #[must_use]
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Total publisher restarts observed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_stream_reports_nothing() {
        let mut t = StreamTracker::new();
        for seq in 0..100 {
            let obs = t.observe(0, seq);
            assert_eq!(obs, Observation::default(), "seq {seq}");
        }
        assert_eq!(t.gaps(), 0);
    }

    #[test]
    fn first_contact_mid_stream_is_not_a_gap() {
        let mut t = StreamTracker::new();
        let obs = t.observe(3, 500);
        assert!(obs.missing.is_none());
        assert!(!obs.restarted);
        assert_eq!(t.observe(3, 501), Observation::default());
    }

    #[test]
    fn skip_reports_exact_missing_range() {
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        let obs = t.observe(0, 5);
        assert_eq!(obs.missing, Some((1, 4)));
        assert_eq!(obs.lost, 4);
        assert_eq!(t.gaps(), 4);
        assert_eq!(t.gap_ranges(), &[(1, 4)]);
        assert_eq!(t.observe(0, 6), Observation::default());
    }

    #[test]
    fn epoch_bump_resets_without_charging_gaps() {
        let mut t = StreamTracker::new();
        t.observe(0, 40);
        t.observe(0, 41);
        let obs = t.observe(1, 0);
        assert!(obs.restarted);
        assert!(obs.missing.is_none());
        assert_eq!(t.gaps(), 0);
        assert_eq!(t.restarts(), 1);
        assert_eq!(t.observe(1, 1), Observation::default());
    }

    #[test]
    fn long_outage_is_one_range_and_an_exact_count() {
        // A partition that destroys a million stream positions must not
        // materialize a million-entry report.
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        let obs = t.observe(0, 1_000_001);
        assert_eq!(obs.missing, Some((1, 1_000_000)));
        assert_eq!(obs.lost, 1_000_000);
        assert_eq!(t.gaps(), 1_000_000);
        assert_eq!(t.gap_ranges().len(), 1);
    }

    #[test]
    fn adjacent_gaps_coalesce_in_the_log() {
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        t.observe(0, 3); // lost 1-2
                         // 3 arrived; 4 lost; 5 arrives -> range (4,4), adjacent to nothing.
        t.observe(0, 5);
        // 6 lost; 7 arrives -> (6,6): NOT adjacent to (4,4) (5 arrived).
        t.observe(0, 7);
        assert_eq!(t.gap_ranges(), &[(1, 2), (4, 4), (6, 6)]);
        assert_eq!(t.gaps(), 4);
    }

    #[test]
    fn gap_log_is_hard_capped() {
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        // Every second position lost: each makes its own range.
        let mut seq = 0u32;
        for _ in 0..(MAX_GAP_RANGES as u32 + 10) {
            seq += 2;
            t.observe(0, seq);
        }
        assert_eq!(t.gap_ranges().len(), MAX_GAP_RANGES, "log capped");
        assert_eq!(t.gaps(), u64::from(seq) / 2, "exact count survives the cap");
        // Oldest ranges were forgotten; the newest is the last gap.
        assert_eq!(*t.gap_ranges().last().unwrap(), (seq - 1, seq - 1));
    }

    #[test]
    fn stragglers_and_old_epochs_are_stale() {
        let mut t = StreamTracker::new();
        t.observe(1, 10);
        assert!(t.observe(1, 10).stale, "duplicate");
        assert!(t.observe(1, 4).stale, "reordered straggler");
        assert!(t.observe(0, 99).stale, "old incarnation");
        // None of that moved the stream.
        assert_eq!(t.observe(1, 11), Observation::default());
    }

    #[test]
    fn late_straggler_heals_a_false_loss_accusation() {
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        // Positions 1-3 skipped — accused lost.
        assert_eq!(t.observe(0, 4).lost, 3);
        assert_eq!(t.gaps(), 3);
        // Position 2 limps in late (it was queued, not dropped): the
        // count rolls back and the range splits around it.
        let obs = t.observe(0, 2);
        assert!(obs.stale && obs.healed);
        assert_eq!(t.gaps(), 2);
        assert_eq!(t.gap_ranges(), &[(1, 1), (3, 3)]);
        // Healing the remaining endpoints empties the log.
        assert!(t.observe(0, 1).healed);
        assert!(t.observe(0, 3).healed);
        assert_eq!(t.gaps(), 0);
        assert!(t.gap_ranges().is_empty());
        // A genuine duplicate of an arrived position heals nothing.
        let dup = t.observe(0, 2);
        assert!(dup.stale && !dup.healed);
        // An old-epoch straggler never heals a current-epoch gap.
        t.observe(1, 0);
        t.observe(1, 3); // epoch 1, lost 1-2
        assert!(!t.observe(0, 1).healed, "old incarnation cannot heal");
        assert_eq!(t.gaps(), 2);
    }
}
