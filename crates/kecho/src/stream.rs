//! Per-stream continuity tracking: sequence-gap and restart detection.
//!
//! Every (publisher, subscriber) pair carries a dense stream of
//! `stream_seq` numbers — monitoring events and heartbeats both occupy
//! slots — tagged with the publisher's `epoch` (incarnation). A
//! [`StreamTracker`] on the subscriber side folds each arrival into the
//! expected position and reports exactly which sequence numbers were
//! skipped. An epoch bump is a *restart*, not a gap: the publisher
//! crashed and came back, so expectations reset instead of charging the
//! whole lost tail as loss.

/// What one arrival told us about the stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observation {
    /// Sequence numbers proven lost: everything between the last arrival
    /// and this one, exclusive. Empty when the stream is contiguous.
    pub missing: Vec<u32>,
    /// The publisher restarted (first contact in a new epoch). Missing
    /// numbers are never reported for a restart.
    pub restarted: bool,
    /// The arrival was from the past — a duplicate, a reordered
    /// straggler, or an old incarnation. It does not advance the stream.
    pub stale: bool,
}

/// Continuity state for one incoming stream.
#[derive(Debug, Clone, Default)]
pub struct StreamTracker {
    /// Epoch of the last accepted arrival.
    epoch: u32,
    /// Next expected `stream_seq`; `None` before first contact.
    next: Option<u32>,
    /// Total sequence numbers proven lost so far.
    gaps: u64,
    /// Total restarts observed.
    restarts: u64,
}

impl StreamTracker {
    /// A tracker that has heard nothing yet.
    #[must_use]
    pub fn new() -> Self {
        StreamTracker::default()
    }

    /// Fold in one arrival.
    pub fn observe(&mut self, epoch: u32, seq: u32) -> Observation {
        let mut obs = Observation::default();
        match self.next {
            None => {
                // First contact: adopt the stream wherever it is.
                self.epoch = epoch;
                self.next = Some(seq.wrapping_add(1));
            }
            Some(expected) => {
                if epoch > self.epoch {
                    self.epoch = epoch;
                    self.next = Some(seq.wrapping_add(1));
                    self.restarts += 1;
                    obs.restarted = true;
                } else if epoch < self.epoch || seq < expected {
                    obs.stale = true;
                } else {
                    obs.missing = (expected..seq).collect();
                    self.gaps += obs.missing.len() as u64;
                    self.next = Some(seq.wrapping_add(1));
                }
            }
        }
        obs
    }

    /// Has this stream ever delivered?
    #[must_use]
    pub fn contacted(&self) -> bool {
        self.next.is_some()
    }

    /// Epoch of the last accepted arrival.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Total sequence numbers proven lost.
    #[must_use]
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// Total publisher restarts observed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_stream_reports_nothing() {
        let mut t = StreamTracker::new();
        for seq in 0..100 {
            let obs = t.observe(0, seq);
            assert_eq!(obs, Observation::default(), "seq {seq}");
        }
        assert_eq!(t.gaps(), 0);
    }

    #[test]
    fn first_contact_mid_stream_is_not_a_gap() {
        let mut t = StreamTracker::new();
        let obs = t.observe(3, 500);
        assert!(obs.missing.is_empty());
        assert!(!obs.restarted);
        assert_eq!(t.observe(3, 501), Observation::default());
    }

    #[test]
    fn skip_reports_exact_missing_numbers() {
        let mut t = StreamTracker::new();
        t.observe(0, 0);
        let obs = t.observe(0, 5);
        assert_eq!(obs.missing, vec![1, 2, 3, 4]);
        assert_eq!(t.gaps(), 4);
        assert_eq!(t.observe(0, 6), Observation::default());
    }

    #[test]
    fn epoch_bump_resets_without_charging_gaps() {
        let mut t = StreamTracker::new();
        t.observe(0, 40);
        t.observe(0, 41);
        let obs = t.observe(1, 0);
        assert!(obs.restarted);
        assert!(obs.missing.is_empty());
        assert_eq!(t.gaps(), 0);
        assert_eq!(t.restarts(), 1);
        assert_eq!(t.observe(1, 1), Observation::default());
    }

    #[test]
    fn stragglers_and_old_epochs_are_stale() {
        let mut t = StreamTracker::new();
        t.observe(1, 10);
        assert!(t.observe(1, 10).stale, "duplicate");
        assert!(t.observe(1, 4).stale, "reordered straggler");
        assert!(t.observe(0, 99).stale, "old incarnation");
        // None of that moved the stream.
        assert_eq!(t.observe(1, 11), Observation::default());
    }
}
