//! Binary wire codec for events.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u8  version (5)
//! u8  kind (0 = monitoring, 1 = control, 2 = heartbeat, 3 = digest)
//! u32 channel
//! u64 seq
//! u32 sender
//! u32 target (u32::MAX = none)
//! ... payload (kind-specific)
//! u32 checksum (FNV-1a over every preceding byte)
//! ```
//!
//! Monitoring payload: `u32 origin`, `u32 epoch`, `u32 stream_seq`,
//! `u8 n_records` (low 7 bits; bit 7 set means a `u8` piggybacked
//! credit grant follows), optional `u8 credit_grant`, records of
//! `(u32 id, f64 value, f64 last, f64 ts)`, `u32 pad_len`, `pad_len`
//! zero bytes. Control payload: `u8 tag` then message-specific fields;
//! strings are `u32 len` + UTF-8 bytes. Heartbeat payload: `u32 origin`,
//! `u32 epoch`, `u32 stream_seq`. Digest payload: `u32 rack`,
//! `u32 origin`, `u32 members`, `u8 n_records`, records of `(u32 id,
//! f64 min, f64 max, f64 mean, u32 count, f64 newest_ts)`.
//!
//! Version history: v1 had no epoch/stream_seq and no heartbeat kind; v2
//! had no integrity trailer, 16-bit record/extension counts, and no
//! credit-grant control tag; v3 had no piggybacked credit-grant byte on
//! monitoring payloads (and a full 8-bit record count); v4 had no digest
//! kind. Old buffers are rejected, not translated — all nodes in a
//! simulated cluster run the same codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simnet::NodeId;

use crate::event::{
    ControlMsg, DigestPayload, DigestRecord, Event, EventKind, HeartbeatPayload, MonRecord,
    MonitoringPayload, ParamSpec, Payload,
};

/// Current wire version.
pub const WIRE_VERSION: u8 = 5;

/// Decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the structure did.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown kind or tag byte.
    BadTag(u8),
    /// String bytes were not UTF-8.
    BadString,
    /// The frame parsed but its integrity trailer did not match: bytes
    /// were corrupted in flight. The event must not be attributed to any
    /// stream.
    Corrupt,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated event"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            WireError::BadString => write!(f, "invalid UTF-8 in string field"),
            WireError::Corrupt => write!(f, "checksum mismatch (corrupted frame)"),
        }
    }
}

/// FNV-1a over a byte slice, the frame integrity check. Not cryptographic
/// — it defends against corruption, not forgery, exactly like a link
/// CRC.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl std::error::Error for WireError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    // Validate and copy straight out of the buffer's front — one copy
    // into the `String`, no intermediate `Bytes` handle or `Vec` detour.
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| WireError::BadString)?;
    let out = s.to_owned();
    buf.advance(len);
    Ok(out)
}

thread_local! {
    /// Encoder scratch buffer. `BytesMut::split` hands the written bytes
    /// to the caller; with the real `bytes` crate the capacity beyond them
    /// stays pooled here, so steady-state encoding reuses one allocation
    /// instead of growing a fresh 64-byte buffer per event (the vendored
    /// shim approximates the same call pattern).
    static ENCODE_POOL: std::cell::RefCell<BytesMut> = std::cell::RefCell::new(BytesMut::new());
}

/// Encode an event to bytes.
///
/// The output buffer is carved from a thread-local pool and reserved at
/// exactly [`encoded_size`] up front, so encoding performs no growth
/// reallocations and the size formula is checked (in debug builds) on
/// every encode.
pub fn encode_event(ev: &Event) -> Bytes {
    ENCODE_POOL.with(|pool| {
        let mut buf = pool.borrow_mut();
        let need = encoded_size(ev);
        buf.reserve(need);
        write_event(&mut buf, ev);
        let sum = fnv1a32(&buf[..]);
        buf.put_u32_le(sum);
        debug_assert_eq!(buf.len(), need, "encoded_size disagrees with encoder");
        buf.split().freeze()
    })
}

fn write_event(buf: &mut BytesMut, ev: &Event) {
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(match ev.kind {
        EventKind::Monitoring => 0,
        EventKind::Control => 1,
        EventKind::Heartbeat => 2,
        EventKind::Digest => 3,
    });
    buf.put_u32_le(ev.channel);
    buf.put_u64_le(ev.seq);
    buf.put_u32_le(ev.sender.0 as u32);
    buf.put_u32_le(ev.target.map_or(u32::MAX, |n| n.0 as u32));
    match &ev.payload {
        Payload::Monitoring(m) => {
            buf.put_u32_le(m.origin.0 as u32);
            buf.put_u32_le(m.epoch);
            buf.put_u32_le(m.stream_seq);
            debug_assert!(m.records.len() <= 0x7F, "too many records");
            debug_assert!(m.credit_grant <= u32::from(u8::MAX), "grant too large");
            // Bit 7 of the record count flags a piggybacked grant byte, so
            // the common grant-free event pays nothing for the feature.
            let flag = if m.credit_grant > 0 { 0x80 } else { 0 };
            buf.put_u8(m.records.len() as u8 | flag);
            if m.credit_grant > 0 {
                buf.put_u8(m.credit_grant as u8);
            }
            for r in &m.records {
                buf.put_u32_le(r.metric_id);
                buf.put_f64_le(r.value);
                buf.put_f64_le(r.last_value_sent);
                buf.put_f64_le(r.timestamp);
            }
            buf.put_u32_le(m.pad_bytes);
            buf.put_bytes(0, m.pad_bytes as usize);
            debug_assert!(m.ext_names.len() <= u8::MAX as usize, "too many extensions");
            buf.put_u8(m.ext_names.len() as u8);
            for (id, metric, file) in &m.ext_names {
                buf.put_u32_le(*id);
                put_string(buf, metric);
                put_string(buf, file);
            }
        }
        Payload::Control(c) => match c {
            ControlMsg::SetParam { metric, param } => {
                buf.put_u8(0);
                put_string(buf, metric);
                match param {
                    ParamSpec::Period { period_s } => {
                        buf.put_u8(0);
                        buf.put_f64_le(*period_s);
                    }
                    ParamSpec::DeltaFraction { fraction } => {
                        buf.put_u8(1);
                        buf.put_f64_le(*fraction);
                    }
                    ParamSpec::Above { bound } => {
                        buf.put_u8(2);
                        buf.put_f64_le(*bound);
                    }
                    ParamSpec::Below { bound } => {
                        buf.put_u8(3);
                        buf.put_f64_le(*bound);
                    }
                    ParamSpec::Range { lo, hi } => {
                        buf.put_u8(4);
                        buf.put_f64_le(*lo);
                        buf.put_f64_le(*hi);
                    }
                }
            }
            ControlMsg::DeployFilter { source } => {
                buf.put_u8(1);
                put_string(buf, source);
            }
            ControlMsg::RemoveFilter => buf.put_u8(2),
            ControlMsg::Announce => buf.put_u8(3),
            ControlMsg::FilterRejected { reason } => {
                buf.put_u8(4);
                put_string(buf, reason);
            }
            ControlMsg::Credit { credits } => {
                buf.put_u8(5);
                buf.put_u32_le(*credits);
            }
        },
        Payload::Heartbeat(h) => {
            buf.put_u32_le(h.origin.0 as u32);
            buf.put_u32_le(h.epoch);
            buf.put_u32_le(h.stream_seq);
        }
        Payload::Digest(d) => {
            buf.put_u32_le(d.rack);
            buf.put_u32_le(d.origin.0 as u32);
            buf.put_u32_le(d.members);
            debug_assert!(
                d.records.len() <= u8::MAX as usize,
                "too many digest records"
            );
            buf.put_u8(d.records.len() as u8);
            for r in &d.records {
                buf.put_u32_le(r.metric_id);
                buf.put_f64_le(r.min);
                buf.put_f64_le(r.max);
                buf.put_f64_le(r.mean);
                buf.put_u32_le(r.count);
                buf.put_f64_le(r.newest_ts);
            }
        }
    }
}

/// Decode an event from bytes. Parse errors (truncation, bad tags, bad
/// strings) are reported as such; a frame that parses but fails the
/// integrity trailer is [`WireError::Corrupt`] — either way a mutated
/// buffer can never be silently attributed to a stream.
pub fn decode_event(full: Bytes) -> Result<Event, WireError> {
    if full.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let body_len = full.len() - 4;
    let ev = parse_body(full.slice(..body_len))?;
    let want = u32::from_le_bytes([
        full[body_len],
        full[body_len + 1],
        full[body_len + 2],
        full[body_len + 3],
    ]);
    if fnv1a32(&full[..body_len]) != want {
        return Err(WireError::Corrupt);
    }
    Ok(ev)
}

fn parse_body(mut buf: Bytes) -> Result<Event, WireError> {
    if buf.remaining() < 2 + 4 + 8 + 4 + 4 {
        return Err(WireError::Truncated);
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = match buf.get_u8() {
        0 => EventKind::Monitoring,
        1 => EventKind::Control,
        2 => EventKind::Heartbeat,
        3 => EventKind::Digest,
        t => return Err(WireError::BadTag(t)),
    };
    let channel = buf.get_u32_le();
    let seq = buf.get_u64_le();
    let sender = NodeId(buf.get_u32_le() as usize);
    let target_raw = buf.get_u32_le();
    let target = if target_raw == u32::MAX {
        None
    } else {
        Some(NodeId(target_raw as usize))
    };
    let payload = match kind {
        EventKind::Monitoring => {
            if buf.remaining() < 4 + 4 + 4 + 1 {
                return Err(WireError::Truncated);
            }
            let origin = NodeId(buf.get_u32_le() as usize);
            let epoch = buf.get_u32_le();
            let stream_seq = buf.get_u32_le();
            let n_raw = buf.get_u8();
            let n = (n_raw & 0x7F) as usize;
            let credit_grant = if n_raw & 0x80 != 0 {
                if buf.remaining() < 1 {
                    return Err(WireError::Truncated);
                }
                u32::from(buf.get_u8())
            } else {
                0
            };
            if buf.remaining() < n * 28 {
                return Err(WireError::Truncated);
            }
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(MonRecord {
                    metric_id: buf.get_u32_le(),
                    value: buf.get_f64_le(),
                    last_value_sent: buf.get_f64_le(),
                    timestamp: buf.get_f64_le(),
                });
            }
            if buf.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let pad = buf.get_u32_le();
            if buf.remaining() < pad as usize {
                return Err(WireError::Truncated);
            }
            buf.advance(pad as usize);
            if buf.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let n_ext = buf.get_u8() as usize;
            let mut ext_names = Vec::with_capacity(n_ext);
            for _ in 0..n_ext {
                if buf.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let id = buf.get_u32_le();
                let metric = get_string(&mut buf)?;
                let file = get_string(&mut buf)?;
                ext_names.push((id, metric, file));
            }
            Payload::Monitoring(MonitoringPayload {
                origin,
                epoch,
                stream_seq,
                credit_grant,
                records,
                pad_bytes: pad,
                ext_names,
            })
        }
        EventKind::Control => {
            if buf.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let tag = buf.get_u8();
            let msg = match tag {
                0 => {
                    let metric = get_string(&mut buf)?;
                    if buf.remaining() < 1 {
                        return Err(WireError::Truncated);
                    }
                    let ptag = buf.get_u8();
                    let need = if ptag == 4 { 16 } else { 8 };
                    if buf.remaining() < need {
                        return Err(WireError::Truncated);
                    }
                    let param = match ptag {
                        0 => ParamSpec::Period {
                            period_s: buf.get_f64_le(),
                        },
                        1 => ParamSpec::DeltaFraction {
                            fraction: buf.get_f64_le(),
                        },
                        2 => ParamSpec::Above {
                            bound: buf.get_f64_le(),
                        },
                        3 => ParamSpec::Below {
                            bound: buf.get_f64_le(),
                        },
                        4 => ParamSpec::Range {
                            lo: buf.get_f64_le(),
                            hi: buf.get_f64_le(),
                        },
                        t => return Err(WireError::BadTag(t)),
                    };
                    ControlMsg::SetParam { metric, param }
                }
                1 => ControlMsg::DeployFilter {
                    source: get_string(&mut buf)?,
                },
                2 => ControlMsg::RemoveFilter,
                3 => ControlMsg::Announce,
                4 => ControlMsg::FilterRejected {
                    reason: get_string(&mut buf)?,
                },
                5 => {
                    if buf.remaining() < 4 {
                        return Err(WireError::Truncated);
                    }
                    ControlMsg::Credit {
                        credits: buf.get_u32_le(),
                    }
                }
                t => return Err(WireError::BadTag(t)),
            };
            Payload::Control(msg)
        }
        EventKind::Heartbeat => {
            if buf.remaining() < 4 + 4 + 4 {
                return Err(WireError::Truncated);
            }
            Payload::Heartbeat(HeartbeatPayload {
                origin: NodeId(buf.get_u32_le() as usize),
                epoch: buf.get_u32_le(),
                stream_seq: buf.get_u32_le(),
            })
        }
        EventKind::Digest => {
            if buf.remaining() < 4 + 4 + 4 + 1 {
                return Err(WireError::Truncated);
            }
            let rack = buf.get_u32_le();
            let origin = NodeId(buf.get_u32_le() as usize);
            let members = buf.get_u32_le();
            let n = buf.get_u8() as usize;
            if buf.remaining() < n * 40 {
                return Err(WireError::Truncated);
            }
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(DigestRecord {
                    metric_id: buf.get_u32_le(),
                    min: buf.get_f64_le(),
                    max: buf.get_f64_le(),
                    mean: buf.get_f64_le(),
                    count: buf.get_u32_le(),
                    newest_ts: buf.get_f64_le(),
                });
            }
            Payload::Digest(DigestPayload {
                rack,
                origin,
                members,
                records,
            })
        }
    };
    Ok(Event {
        kind,
        channel,
        seq,
        sender,
        target,
        payload,
    })
}

/// Encoded size of an event in bytes (without building the buffer —
/// used by the network model to size transfers cheaply).
pub fn encoded_size(ev: &Event) -> usize {
    let header = 2 + 4 + 8 + 4 + 4;
    let trailer = 4; // FNV-1a integrity checksum
    let payload = match &ev.payload {
        Payload::Monitoring(m) => {
            4 + 4
                + 4
                + 1
                + usize::from(m.credit_grant > 0)
                + m.records.len() * 28
                + 4
                + m.pad_bytes as usize
                + 1
                + m.ext_names
                    .iter()
                    .map(|(_, metric, file)| 4 + 4 + metric.len() + 4 + file.len())
                    .sum::<usize>()
        }
        Payload::Control(c) => match c {
            ControlMsg::SetParam { metric, param } => {
                1 + 4
                    + metric.len()
                    + 1
                    + match param {
                        ParamSpec::Range { .. } => 16,
                        _ => 8,
                    }
            }
            ControlMsg::DeployFilter { source } => 1 + 4 + source.len(),
            ControlMsg::FilterRejected { reason } => 1 + 4 + reason.len(),
            ControlMsg::RemoveFilter | ControlMsg::Announce => 1,
            ControlMsg::Credit { .. } => 1 + 4,
        },
        Payload::Heartbeat(_) => 4 + 4 + 4,
        Payload::Digest(d) => 4 + 4 + 4 + 1 + d.records.len() * 40,
    };
    header + payload + trailer
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon_event(pad: u32) -> Event {
        Event::monitoring(
            1,
            42,
            NodeId(3),
            MonitoringPayload {
                origin: NodeId(3),
                epoch: 1,
                stream_seq: 40,
                credit_grant: 0,
                records: vec![
                    MonRecord {
                        metric_id: 0,
                        value: 1.5,
                        last_value_sent: 1.0,
                        timestamp: 12.0,
                    },
                    MonRecord {
                        metric_id: 2,
                        value: -7.25,
                        last_value_sent: 0.0,
                        timestamp: 13.0,
                    },
                ],
                pad_bytes: pad,
                ext_names: Vec::new(),
            },
        )
    }

    #[test]
    fn monitoring_roundtrip() {
        let ev = mon_event(0);
        let bytes = encode_event(&ev);
        let back = decode_event(bytes).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn piggybacked_grant_roundtrips_and_costs_one_byte() {
        let plain = mon_event(0);
        let mut granted = mon_event(0);
        match &mut granted.payload {
            Payload::Monitoring(m) => m.credit_grant = 5,
            _ => unreachable!(),
        }
        let pb = encode_event(&plain);
        let gb = encode_event(&granted);
        assert_eq!(gb.len(), pb.len() + 1, "grant byte only when present");
        assert_eq!(gb.len(), encoded_size(&granted));
        let back = decode_event(gb).unwrap();
        assert_eq!(back, granted);
        assert_eq!(back.as_monitoring().unwrap().credit_grant, 5);
    }

    #[test]
    fn padding_travels_as_length() {
        let ev = mon_event(5000);
        let bytes = encode_event(&ev);
        assert_eq!(bytes.len(), encoded_size(&ev));
        assert!(bytes.len() > 5000);
        let back = decode_event(bytes).unwrap();
        assert_eq!(back.as_monitoring().unwrap().pad_bytes, 5000);
    }

    #[test]
    fn control_messages_roundtrip() {
        let msgs = vec![
            ControlMsg::SetParam {
                metric: "cpu".into(),
                param: ParamSpec::Period { period_s: 2.0 },
            },
            ControlMsg::SetParam {
                metric: "*".into(),
                param: ParamSpec::DeltaFraction { fraction: 0.15 },
            },
            ControlMsg::SetParam {
                metric: "mem".into(),
                param: ParamSpec::Above { bound: 0.8 },
            },
            ControlMsg::SetParam {
                metric: "disk".into(),
                param: ParamSpec::Below { bound: 100.0 },
            },
            ControlMsg::SetParam {
                metric: "net".into(),
                param: ParamSpec::Range { lo: 1.0, hi: 2.0 },
            },
            ControlMsg::DeployFilter {
                source: "{ output[0] = input[0]; }".into(),
            },
            ControlMsg::RemoveFilter,
            ControlMsg::Announce,
            ControlMsg::FilterRejected {
                reason: "filter cost is unbounded".into(),
            },
            ControlMsg::Credit { credits: 7 },
        ];
        for msg in msgs {
            let ev = Event::control(2, 1, NodeId(0), NodeId(5), msg.clone());
            let bytes = encode_event(&ev);
            assert_eq!(bytes.len(), encoded_size(&ev), "size formula for {msg:?}");
            let back = decode_event(bytes).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn digest_roundtrips_and_is_member_count_independent() {
        let digest = |members: u32| {
            Event::digest(
                3,
                11,
                NodeId(4),
                DigestPayload {
                    rack: 1,
                    origin: NodeId(4),
                    members,
                    records: (0..5)
                        .map(|i| DigestRecord {
                            metric_id: i,
                            min: -1.5 * f64::from(i),
                            max: 2.0 * f64::from(i),
                            mean: 0.25,
                            count: members,
                            newest_ts: 12.5,
                        })
                        .collect(),
                },
            )
        };
        let small = digest(3);
        let big = digest(1024);
        let sb = encode_event(&small);
        assert_eq!(sb.len(), encoded_size(&small));
        assert_eq!(
            sb.len(),
            encoded_size(&big),
            "digest size is O(metrics), not O(members)"
        );
        let back = decode_event(sb).unwrap();
        assert_eq!(back, small);
        let d = back.as_digest().unwrap();
        assert_eq!(d.rack, 1);
        assert_eq!(d.members, 3);
        assert_eq!(d.records.len(), 5);
        // Truncation inside a digest record errors cleanly.
        let full = encode_event(&big);
        let err = decode_event(full.slice(..full.len() - 30)).unwrap_err();
        assert_eq!(err, WireError::Truncated);
    }

    #[test]
    fn truncated_buffers_error() {
        let full = encode_event(&mon_event(16));
        for cut in [0, 1, 5, 10, 25, full.len() - 1] {
            let err = decode_event(full.slice(..cut)).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn truncated_strings_error() {
        // Cut a control event inside its string payload: in the length
        // prefix, and in the body the prefix promises.
        let ev = Event::control(
            2,
            9,
            NodeId(0),
            NodeId(1),
            ControlMsg::DeployFilter {
                source: "{ output[0] = input[0]; }".into(),
            },
        );
        let full = encode_event(&ev);
        let header = 2 + 4 + 8 + 4 + 4 + 1; // through the control tag
        for cut in [header, header + 2, header + 4, full.len() - 1] {
            assert_eq!(
                decode_event(full.slice(..cut)).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
        // A length prefix larger than the remaining buffer must error,
        // not panic or over-read.
        let mut raw = full.to_vec();
        raw[header..header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_event(Bytes::from(raw)).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn non_utf8_string_rejected() {
        let ev = Event::control(
            2,
            9,
            NodeId(0),
            NodeId(1),
            ControlMsg::FilterRejected {
                reason: "....".into(),
            },
        );
        let mut raw = encode_event(&ev).to_vec();
        let body = 2 + 4 + 8 + 4 + 4 + 1 + 4; // header, tag, string length
        raw[body] = 0xFF; // lone 0xFF is never valid UTF-8
        assert_eq!(
            decode_event(Bytes::from(raw)).unwrap_err(),
            WireError::BadString
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = encode_event(&mon_event(0)).to_vec();
        raw[0] = 99;
        assert_eq!(
            decode_event(Bytes::from(raw)).unwrap_err(),
            WireError::BadVersion(99)
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let mut raw = encode_event(&mon_event(0)).to_vec();
        raw[1] = 7;
        assert_eq!(
            decode_event(Bytes::from(raw)).unwrap_err(),
            WireError::BadTag(7)
        );
    }

    #[test]
    fn flipped_value_byte_is_corrupt_not_misattributed() {
        // Mutating a byte that still parses (a record value, the
        // stream_seq) must surface as Corrupt — the frame can never be
        // folded into a stream's continuity state.
        let full = encode_event(&mon_event(16));
        // Offsets 22/26/30 are origin/epoch/stream_seq; len-20 is inside
        // the pad region. All parse fine with a flipped bit.
        for off in [22, 26, 30, full.len() - 20] {
            let mut raw = full.to_vec();
            raw[off] ^= 0x40;
            assert_eq!(
                decode_event(Bytes::from(raw)).unwrap_err(),
                WireError::Corrupt,
                "mutated byte {off}"
            );
        }
        // A mutated trailer byte is equally fatal.
        let mut raw = full.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        assert_eq!(
            decode_event(Bytes::from(raw)).unwrap_err(),
            WireError::Corrupt
        );
    }

    #[test]
    fn small_monitoring_event_is_paper_sized() {
        // The paper's microbenchmarks use events of 50–100 bytes for the
        // full module set (5 metrics). Check our natural encoding lands in
        // that band.
        let ev = Event::monitoring(
            1,
            1,
            NodeId(0),
            MonitoringPayload {
                origin: NodeId(0),
                epoch: 0,
                stream_seq: 0,
                credit_grant: 0,
                records: (0..2)
                    .map(|i| MonRecord {
                        metric_id: i,
                        value: 0.0,
                        last_value_sent: 0.0,
                        timestamp: 0.0,
                    })
                    .collect(),
                pad_bytes: 0,
                ext_names: Vec::new(),
            },
        );
        let size = encoded_size(&ev);
        assert!((50..=100).contains(&size), "2-record event is {size} B");
        let ev5 = mon_event(0);
        assert!(encoded_size(&ev5) < 150);
    }
}
