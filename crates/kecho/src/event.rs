//! Event identity and typed payloads.

use simnet::NodeId;

/// What kind of traffic an event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Monitoring data (resource records).
    Monitoring,
    /// Control traffic (parameters, filters).
    Control,
    /// Liveness beacon sent when parameters/filters suppress all data for
    /// a subscriber, so silence-by-filter is distinguishable from death.
    Heartbeat,
    /// A rack aggregator's bounded summary of its members' metrics,
    /// republished up the tree on the spine digest channel. Digests are
    /// summaries, not streams: they carry no per-stream sequence numbers
    /// and bypass the credit/loss machinery — a lost digest is simply
    /// superseded by the next one.
    Digest,
}

/// One aggregated metric in a rack digest: the fold of every member's
/// latest sample for that metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestRecord {
    /// Metric id within the standard module environment.
    pub metric_id: u32,
    /// Minimum across contributing members.
    pub min: f64,
    /// Maximum across contributing members.
    pub max: f64,
    /// Mean across contributing members.
    pub mean: f64,
    /// How many members contributed a sample.
    pub count: u32,
    /// Newest contributing sample time, seconds — the digest's freshness.
    pub newest_ts: f64,
}

/// Payload of a digest event: one rack's bounded roll-up. Size is
/// O(metrics), never O(members), which is the whole point of the
/// aggregation tier.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestPayload {
    /// The rack the digest summarizes.
    pub rack: u32,
    /// The aggregator node that produced it.
    pub origin: NodeId,
    /// Members folded in (live rack members with at least one sample).
    pub members: u32,
    /// Per-metric folds.
    pub records: Vec<DigestRecord>,
}

/// One monitoring record on the wire: a metric sample from some node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonRecord {
    /// Metric id within the publisher's environment.
    pub metric_id: u32,
    /// Sampled value.
    pub value: f64,
    /// Value previously sent (lets subscribers run differential logic).
    pub last_value_sent: f64,
    /// Sample time, seconds.
    pub timestamp: f64,
}

/// Payload of a monitoring event.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoringPayload {
    /// The node the metrics describe.
    pub origin: NodeId,
    /// Publisher incarnation. Bumped when the publisher restarts after a
    /// crash, so subscribers can tell a reset stream from a gap. 32 bits
    /// keeps small events inside the paper's 50–100 B band.
    pub epoch: u32,
    /// Position in the per-(publisher, subscriber) stream. Consecutive on
    /// each stream (heartbeats occupy slots too); a skip means loss.
    pub stream_seq: u32,
    /// Piggybacked flow-control counter for the *reverse* stream
    /// (receiver publishes to this event's sender too): a cumulative
    /// mod-256 total of the credits the sender, as subscriber, has
    /// granted by piggyback — the receiver grants itself the wrapping
    /// difference from the last counter value it saw. Carrying the
    /// running total instead of an increment makes the channel
    /// loss-tolerant (the next surviving frame re-delivers what a
    /// tail-dropped carrier held), and steady-state flow control in a
    /// bidirectional mesh costs zero standalone [`ControlMsg::Credit`]
    /// frames. One byte on the wire, present only when non-zero; the
    /// counter never rests on zero once a grant has been made.
    pub credit_grant: u32,
    /// The records that survived parameters/filters.
    pub records: Vec<MonRecord>,
    /// Extra bytes of payload, modeling event bodies beyond the record
    /// structs (the paper benchmarks 50–100 B and 5 KB events; SmartPointer
    /// sends megabytes). Only the *length* travels conceptually — the wire
    /// codec materializes zeros.
    pub pad_bytes: u32,
    /// Schema extension for metrics beyond the publisher's standard module
    /// set (run-time registered modules): `(metric_id, metric_name,
    /// proc_file_name)`. ECho events are typed; this is the slice of the
    /// type information a subscriber needs to interpret foreign ids.
    pub ext_names: Vec<(u32, String, String)>,
}

/// A threshold/period parameter, settable through a node's control file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamSpec {
    /// Update every `period_s` seconds.
    Period {
        /// Seconds between updates.
        period_s: f64,
    },
    /// Send only if the value changed at least `fraction` relative to the
    /// last sent value (the paper's "differential filter": 15% => 0.15).
    DeltaFraction {
        /// Relative change required.
        fraction: f64,
    },
    /// Send only while the value is above `bound`.
    Above {
        /// Lower bound.
        bound: f64,
    },
    /// Send only while the value is below `bound`.
    Below {
        /// Upper bound.
        bound: f64,
    },
    /// Send only while the value is inside `[lo, hi]`.
    Range {
        /// Lower edge.
        lo: f64,
        /// Upper edge.
        hi: f64,
    },
}

/// Control-channel messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Set a parameter for one metric (by name) at the target node.
    SetParam {
        /// Metric name (e.g. `"cpu"`); `"*"` applies to all.
        metric: String,
        /// The parameter.
        param: ParamSpec,
    },
    /// Deploy an E-code filter (source string) at the target node.
    DeployFilter {
        /// Filter source code.
        source: String,
    },
    /// Remove the deployed filter at the target node.
    RemoveFilter,
    /// Ask the target to (re)announce its subscriptions — used when a node
    /// joins late.
    Announce,
    /// Sent back to a subscriber whose `DeployFilter` was refused by the
    /// publisher's static verifier (unbounded or over-budget cost).
    FilterRejected {
        /// Why the filter was not admitted.
        reason: String,
    },
    /// Flow-control grant from a subscriber: the sending publisher may
    /// emit this many more data events on the (publisher, subscriber)
    /// stream (see the [`crate::credit`] module). Control frames
    /// themselves never consume credits.
    Credit {
        /// Additional data events permitted.
        credits: u32,
    },
}

/// A complete event as it travels between kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Traffic class.
    pub kind: EventKind,
    /// Channel the event was submitted on.
    pub channel: u32,
    /// Publisher-assigned sequence number.
    pub seq: u64,
    /// Publishing node.
    pub sender: NodeId,
    /// For control events, the node the message is addressed to (control
    /// messages are targeted; monitoring events fan out).
    pub target: Option<NodeId>,
    /// Payload.
    pub payload: Payload,
}

/// Payload of a heartbeat event: no data, just liveness + stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatPayload {
    /// The node asserting liveness.
    pub origin: NodeId,
    /// Publisher incarnation (see [`MonitoringPayload::epoch`]).
    pub epoch: u32,
    /// Position in the per-(publisher, subscriber) stream.
    pub stream_seq: u32,
}

/// The payload families.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Monitoring data.
    Monitoring(MonitoringPayload),
    /// A control message.
    Control(ControlMsg),
    /// A liveness beacon.
    Heartbeat(HeartbeatPayload),
    /// A rack digest.
    Digest(DigestPayload),
}

impl Event {
    /// Construct a monitoring event.
    pub fn monitoring(channel: u32, seq: u64, sender: NodeId, payload: MonitoringPayload) -> Self {
        Event {
            kind: EventKind::Monitoring,
            channel,
            seq,
            sender,
            target: None,
            payload: Payload::Monitoring(payload),
        }
    }

    /// Construct a targeted control event.
    pub fn control(
        channel: u32,
        seq: u64,
        sender: NodeId,
        target: NodeId,
        msg: ControlMsg,
    ) -> Self {
        Event {
            kind: EventKind::Control,
            channel,
            seq,
            sender,
            target: Some(target),
            payload: Payload::Control(msg),
        }
    }

    /// Construct a targeted heartbeat event.
    pub fn heartbeat(
        channel: u32,
        seq: u64,
        sender: NodeId,
        target: NodeId,
        payload: HeartbeatPayload,
    ) -> Self {
        Event {
            kind: EventKind::Heartbeat,
            channel,
            seq,
            sender,
            target: Some(target),
            payload: Payload::Heartbeat(payload),
        }
    }

    /// Construct a digest event (fans out on the digest channel like
    /// monitoring data, so no target).
    pub fn digest(channel: u32, seq: u64, sender: NodeId, payload: DigestPayload) -> Self {
        Event {
            kind: EventKind::Digest,
            channel,
            seq,
            sender,
            target: None,
            payload: Payload::Digest(payload),
        }
    }

    /// The monitoring payload, if this is a monitoring event.
    pub fn as_monitoring(&self) -> Option<&MonitoringPayload> {
        match &self.payload {
            Payload::Monitoring(m) => Some(m),
            _ => None,
        }
    }

    /// The control message, if this is a control event.
    pub fn as_control(&self) -> Option<&ControlMsg> {
        match &self.payload {
            Payload::Control(c) => Some(c),
            _ => None,
        }
    }

    /// The heartbeat payload, if this is a heartbeat event.
    pub fn as_heartbeat(&self) -> Option<&HeartbeatPayload> {
        match &self.payload {
            Payload::Heartbeat(h) => Some(h),
            _ => None,
        }
    }

    /// The digest payload, if this is a digest event.
    pub fn as_digest(&self) -> Option<&DigestPayload> {
        match &self.payload {
            Payload::Digest(d) => Some(d),
            _ => None,
        }
    }

    /// Consume the event, returning its monitoring record buffer to the
    /// thread-local pool (no-op for control/heartbeat events). Call this
    /// at the end of a delivery path instead of dropping the event so the
    /// publisher's next [`take_record_buf`] reuses the allocation.
    pub fn recycle(self) {
        if let Payload::Monitoring(m) = self.payload {
            put_record_buf(m.records);
        }
    }
}

thread_local! {
    /// Recycled record buffers, the per-delivery analogue of the wire
    /// codec's encode pool. Bounded so a burst can't pin memory forever.
    static RECORD_POOL: std::cell::RefCell<Vec<Vec<MonRecord>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Take an empty `Vec<MonRecord>` from the thread-local pool (allocates
/// only when the pool is dry).
pub fn take_record_buf() -> Vec<MonRecord> {
    RECORD_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

/// Return a record buffer to the thread-local pool for reuse.
pub fn put_record_buf(mut v: Vec<MonRecord>) {
    v.clear();
    RECORD_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 64 {
            pool.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let m = Event::monitoring(
            1,
            7,
            NodeId(0),
            MonitoringPayload {
                origin: NodeId(0),
                epoch: 0,
                stream_seq: 0,
                credit_grant: 0,
                records: vec![],
                pad_bytes: 0,
                ext_names: Vec::new(),
            },
        );
        assert_eq!(m.kind, EventKind::Monitoring);
        assert!(m.as_monitoring().is_some());
        assert!(m.as_control().is_none());
        assert_eq!(m.target, None);

        let c = Event::control(2, 8, NodeId(1), NodeId(3), ControlMsg::RemoveFilter);
        assert_eq!(c.kind, EventKind::Control);
        assert_eq!(c.target, Some(NodeId(3)));
        assert!(c.as_control().is_some());
        assert!(c.as_monitoring().is_none());

        let h = Event::heartbeat(
            1,
            9,
            NodeId(2),
            NodeId(0),
            HeartbeatPayload {
                origin: NodeId(2),
                epoch: 1,
                stream_seq: 4,
            },
        );
        assert_eq!(h.kind, EventKind::Heartbeat);
        assert_eq!(h.target, Some(NodeId(0)));
        assert_eq!(h.as_heartbeat().unwrap().stream_seq, 4);
        assert!(h.as_monitoring().is_none());
        assert!(h.as_control().is_none());
    }
}
