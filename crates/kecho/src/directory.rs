//! The channel registry and subscription state.
//!
//! The paper: "d-mon modules use a channel registry, which is a user-level
//! channel directory server, to register new channels and to find existing
//! channels. The first d-mon module to contact the registry will create
//! the two channels. All other d-mon modules ... retrieve the channel
//! identifiers from the registry and subscribe."
//!
//! [`Directory`] is that registry plus the per-channel subscriber lists.
//! Submission is *planned* here ([`Directory::plan_submission`]) as a list
//! of hops; the cluster glue executes them on the simulated network. Two
//! topologies exist:
//!
//! * [`Topology::PeerToPeer`] — the paper's design: the publisher sends
//!   directly to every subscriber,
//! * [`Topology::Central`] — the Supermon-style baseline the paper argues
//!   against: everything goes through one concentrator node which relays
//!   to subscribers (`plan_forward`). Used by the scalability ablation.

use std::collections::BTreeSet;
use std::collections::HashMap;

use simnet::NodeId;

/// Identifier of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

/// How events reach subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Publisher → each subscriber directly (the paper's KECho).
    PeerToPeer,
    /// Publisher → concentrator → each subscriber (Supermon-style).
    Central(NodeId),
}

/// One network hop of a planned submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

#[derive(Debug)]
struct ChannelInfo {
    name: String,
    subscribers: BTreeSet<NodeId>,
}

/// The channel directory server.
#[derive(Debug)]
pub struct Directory {
    channels: Vec<ChannelInfo>,
    by_name: HashMap<String, ChannelId>,
    topology: Topology,
}

impl Default for Directory {
    fn default() -> Self {
        Self::new(Topology::PeerToPeer)
    }
}

impl Directory {
    /// An empty directory with the given routing topology.
    pub fn new(topology: Topology) -> Self {
        Directory {
            channels: Vec::new(),
            by_name: HashMap::new(),
            topology,
        }
    }

    /// The routing topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Look up a channel by name, creating it if absent — the "first
    /// d-mon to contact the registry creates the channels" behaviour.
    pub fn open(&mut self, name: &str) -> ChannelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(ChannelInfo {
            name: name.to_string(),
            subscribers: BTreeSet::new(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an existing channel.
    pub fn lookup(&self, name: &str) -> Option<ChannelId> {
        self.by_name.get(name).copied()
    }

    /// Channel name.
    pub fn name(&self, id: ChannelId) -> &str {
        &self.channels[id.0 as usize].name
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if no channels exist.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Subscribe a node. Idempotent.
    pub fn subscribe(&mut self, id: ChannelId, node: NodeId) {
        self.channels[id.0 as usize].subscribers.insert(node);
    }

    /// Unsubscribe a node. Idempotent.
    pub fn unsubscribe(&mut self, id: ChannelId, node: NodeId) {
        self.channels[id.0 as usize].subscribers.remove(&node);
    }

    /// Current subscribers, in node order (deterministic).
    pub fn subscribers(&self, id: ChannelId) -> impl Iterator<Item = NodeId> + '_ {
        self.channels[id.0 as usize].subscribers.iter().copied()
    }

    /// Number of subscribers.
    pub fn subscriber_count(&self, id: ChannelId) -> usize {
        self.channels[id.0 as usize].subscribers.len()
    }

    /// Whether `node` subscribes to `id`.
    pub fn is_subscribed(&self, id: ChannelId, node: NodeId) -> bool {
        self.channels[id.0 as usize].subscribers.contains(&node)
    }

    /// Plan the hops for `from` publishing on channel `id`. The publisher
    /// never sends to itself (its d-mon consumes locally).
    ///
    /// * peer-to-peer: one hop per remote subscriber;
    /// * central: a single hop to the concentrator (unless the publisher
    ///   *is* the concentrator, in which case it fans out directly).
    pub fn plan_submission(&self, id: ChannelId, from: NodeId) -> Vec<Hop> {
        match self.topology {
            Topology::PeerToPeer => self
                .subscribers(id)
                .filter(|&n| n != from)
                .map(|to| Hop { from, to })
                .collect(),
            Topology::Central(hub) => {
                if from == hub {
                    self.subscribers(id)
                        .filter(|&n| n != hub)
                        .map(|to| Hop { from, to })
                        .collect()
                } else if self.subscriber_count(id) == 0
                    || (self.subscriber_count(id) == 1 && self.is_subscribed(id, from))
                {
                    // Nobody else wants it; skip the hub round-trip.
                    Vec::new()
                } else {
                    vec![Hop { from, to: hub }]
                }
            }
        }
    }

    /// In central topology: the hops the concentrator performs when it
    /// receives an event originated by `origin`. Empty in peer-to-peer.
    pub fn plan_forward(&self, id: ChannelId, origin: NodeId) -> Vec<Hop> {
        match self.topology {
            Topology::PeerToPeer => Vec::new(),
            Topology::Central(hub) => self
                .subscribers(id)
                .filter(|&n| n != origin && n != hub)
                .map(|to| Hop { from: hub, to })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_is_create_or_lookup() {
        let mut d = Directory::default();
        assert!(d.is_empty());
        let a = d.open("dproc-monitoring");
        let b = d.open("dproc-control");
        assert_ne!(a, b);
        assert_eq!(d.open("dproc-monitoring"), a, "reopen returns same id");
        assert_eq!(d.lookup("dproc-control"), Some(b));
        assert_eq!(d.lookup("nope"), None);
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(a), "dproc-monitoring");
    }

    #[test]
    fn subscription_lifecycle() {
        let mut d = Directory::default();
        let c = d.open("mon");
        d.subscribe(c, NodeId(1));
        d.subscribe(c, NodeId(2));
        d.subscribe(c, NodeId(1)); // idempotent
        assert_eq!(d.subscriber_count(c), 2);
        assert!(d.is_subscribed(c, NodeId(1)));
        d.unsubscribe(c, NodeId(1));
        assert!(!d.is_subscribed(c, NodeId(1)));
        assert_eq!(d.subscribers(c).collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn p2p_plan_skips_self() {
        let mut d = Directory::default();
        let c = d.open("mon");
        for n in 0..4 {
            d.subscribe(c, NodeId(n));
        }
        let hops = d.plan_submission(c, NodeId(2));
        assert_eq!(hops.len(), 3);
        assert!(hops
            .iter()
            .all(|h| h.from == NodeId(2) && h.to != NodeId(2)));
        // deterministic order
        assert_eq!(
            hops.iter().map(|h| h.to).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert!(d.plan_forward(c, NodeId(2)).is_empty());
    }

    #[test]
    fn central_plan_routes_via_hub() {
        let mut d = Directory::new(Topology::Central(NodeId(0)));
        let c = d.open("mon");
        for n in 0..4 {
            d.subscribe(c, NodeId(n));
        }
        // Publisher 2 sends one hop to the hub...
        let hops = d.plan_submission(c, NodeId(2));
        assert_eq!(
            hops,
            vec![Hop {
                from: NodeId(2),
                to: NodeId(0)
            }]
        );
        // ...and the hub forwards to everyone except origin and itself.
        let fwd = d.plan_forward(c, NodeId(2));
        assert_eq!(
            fwd,
            vec![
                Hop {
                    from: NodeId(0),
                    to: NodeId(1)
                },
                Hop {
                    from: NodeId(0),
                    to: NodeId(3)
                },
            ]
        );
    }

    #[test]
    fn central_hub_publishes_directly() {
        let mut d = Directory::new(Topology::Central(NodeId(0)));
        let c = d.open("mon");
        for n in 0..3 {
            d.subscribe(c, NodeId(n));
        }
        let hops = d.plan_submission(c, NodeId(0));
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().all(|h| h.from == NodeId(0)));
    }

    #[test]
    fn central_skips_hub_hop_when_no_audience() {
        let mut d = Directory::new(Topology::Central(NodeId(0)));
        let c = d.open("mon");
        // Only the publisher itself subscribes.
        d.subscribe(c, NodeId(2));
        assert!(d.plan_submission(c, NodeId(2)).is_empty());
        // Empty channel: nothing to do either.
        let c2 = d.open("other");
        assert!(d.plan_submission(c2, NodeId(1)).is_empty());
    }

    #[test]
    fn topology_accessor() {
        let d = Directory::new(Topology::Central(NodeId(7)));
        assert_eq!(d.topology(), Topology::Central(NodeId(7)));
    }
}
