//! Credit-based flow control for (publisher, subscriber) streams.
//!
//! Subscribers grant a publisher the right to send monitoring events in
//! units of *credits*: one credit per data event. A stream starts with
//! [`INITIAL_CREDITS`]; the subscriber replenishes by piggybacking the
//! grant on its own reverse-direction data events when it also publishes
//! to the peer (free on the wire — one byte), falling back to a
//! standalone `ControlMsg::Credit` frame once it has absorbed a quarter
//! window ([`GRANT_THRESHOLD`] events since the last grant). When a subscriber
//! stalls — its link saturated, its host overloaded, or the node gone —
//! the grants stop, the publisher's window drains to zero, and new events
//! park in a bounded per-subscriber outbox instead of the network.
//! Frames a stream-gap later proves lost are repaid in full (they spent a
//! credit but consumed no receive capacity), so the window bounds
//! in-flight plus unrevealed loss: congestion throttles the stream for
//! exactly the loss-reveal lag, and a healed path re-inflates back to
//! full strength instead of limping on a deflated window. When
//! the outbox overflows, the *oldest* event is shed (newest data is most
//! valuable to a monitor). Heartbeats and control frames never consume
//! credits, so liveness detection and reconfiguration keep working no
//! matter how congested the data plane is.
//!
//! Everything here is pure bookkeeping: callers decide when to consult
//! the window and what to do with a shed event, so the policy stays
//! deterministic and replay-safe.

/// Credits a fresh stream starts with (and the grant target the
/// subscriber tops the window back up to).
pub const INITIAL_CREDITS: u32 = 16;

/// A subscriber sends a credit grant once it has received this many data
/// events since its last grant (a quarter window, so the publisher never
/// stalls on a healthy path and a starved one learns quickly).
pub const GRANT_THRESHOLD: u32 = 4;

/// Unacknowledged spend at which the publisher treats a grant as overdue
/// and starts pairing its data events with priority-lane heartbeats.
/// Healthy streams never get here: a grant arrives after every
/// [`GRANT_THRESHOLD`] absorbed events, so unacked spend peaks around
/// `GRANT_THRESHOLD` plus a round-trip of polls (~6) — the bound sits
/// just above that peak, because tripping it on a healthy stream wastes
/// bandwidth on heartbeats whose priority-lane overtakes the gap tracker
/// then has to heal. A stream whose frames are silently dying in the
/// network blows past it — and the heartbeats keep the publisher's
/// liveness visible (and trigger the subscriber's gap accounting) even
/// though its data never arrives. Must stay below the failure detector's
/// dead bound (eight polls) minus the heartbeat delivery delay, or an
/// overloaded-but-alive publisher gets evicted.
pub const GRANT_OVERDUE: u32 = 7;

/// Maximum events parked in a publisher's per-subscriber outbox while
/// credits are stalled; beyond this the oldest event is shed.
pub const OUTBOX_CAP: usize = 32;

/// Publisher-side credit window for one (publisher, subscriber) stream.
#[derive(Debug, Clone)]
pub struct CreditWindow {
    credits: u32,
    granted: u64,
    consumed: u64,
    /// Credits spent since the last grant arrived — the publisher's only
    /// local signal that the subscriber has stopped absorbing its stream.
    unacked: u32,
}

impl Default for CreditWindow {
    fn default() -> Self {
        CreditWindow::new()
    }
}

impl CreditWindow {
    /// A fresh window holding [`INITIAL_CREDITS`].
    #[must_use]
    pub fn new() -> Self {
        CreditWindow {
            credits: INITIAL_CREDITS,
            granted: 0,
            consumed: 0,
            unacked: 0,
        }
    }

    /// Credits currently available.
    #[must_use]
    pub fn available(&self) -> u32 {
        self.credits
    }

    /// Consume one credit for a data event; `false` (and no change) when
    /// the window is empty — the caller must park or shed the event.
    pub fn try_consume(&mut self) -> bool {
        if self.credits == 0 {
            return false;
        }
        self.credits -= 1;
        self.consumed += 1;
        self.unacked = self.unacked.saturating_add(1);
        true
    }

    /// Credits spent since the last grant. Crossing [`GRANT_OVERDUE`]
    /// means the subscriber has gone quiet on a stream we are still
    /// feeding — almost certainly loss, not absorption.
    #[must_use]
    pub fn unacked(&self) -> u32 {
        self.unacked
    }

    /// Whether a grant is overdue for the spend already committed.
    #[must_use]
    pub fn grant_overdue(&self) -> bool {
        self.unacked >= GRANT_OVERDUE
    }

    /// Apply a grant from the subscriber. The window is capped at
    /// [`INITIAL_CREDITS`] so a burst of duplicate grants cannot open an
    /// unbounded send window.
    pub fn grant(&mut self, credits: u32) {
        let add = credits.min(INITIAL_CREDITS - self.credits.min(INITIAL_CREDITS));
        self.credits += add;
        self.granted += u64::from(add);
        // A grant acknowledges spend regardless of the cap: the
        // subscriber would not grant for positions it never absorbed.
        self.unacked = self.unacked.saturating_sub(credits);
    }

    /// Lifetime credits granted by the subscriber (post-cap).
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Lifetime credits consumed by data events.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_starts_full_and_drains() {
        let mut w = CreditWindow::new();
        assert_eq!(w.available(), INITIAL_CREDITS);
        for _ in 0..INITIAL_CREDITS {
            assert!(w.try_consume());
        }
        assert_eq!(w.available(), 0);
        assert!(!w.try_consume(), "empty window refuses");
        assert_eq!(w.consumed(), u64::from(INITIAL_CREDITS));
    }

    #[test]
    fn grants_replenish_but_never_overfill() {
        let mut w = CreditWindow::new();
        for _ in 0..10 {
            assert!(w.try_consume());
        }
        w.grant(GRANT_THRESHOLD);
        assert_eq!(w.available(), INITIAL_CREDITS - 10 + GRANT_THRESHOLD);
        // A flood of grants caps at the initial window.
        w.grant(1000);
        assert_eq!(w.available(), INITIAL_CREDITS);
        w.grant(1000);
        assert_eq!(w.available(), INITIAL_CREDITS);
        assert_eq!(w.granted(), 10, "only real replenishment counted");
    }

    #[test]
    fn unacked_spend_flags_an_overdue_grant() {
        let mut w = CreditWindow::new();
        for _ in 0..GRANT_OVERDUE - 1 {
            assert!(w.try_consume());
            assert!(!w.grant_overdue());
        }
        assert!(w.try_consume());
        assert!(w.grant_overdue(), "overdue once the threshold is spent");
        // A grant acknowledges the spend even when the window cap eats
        // part of the replenishment.
        w.grant(GRANT_OVERDUE);
        assert!(!w.grant_overdue());
        assert_eq!(w.unacked(), 0);
    }
}
