//! `kecho` — kernel-level publish/subscribe event channels.
//!
//! KECho is the paper's kernel port of the ECho event-channel
//! infrastructure: every dproc node joins a *monitoring* channel (data)
//! and a *control* channel (parameters, filter deployment); a user-level
//! *channel registry* bootstraps discovery; and all communication is
//! strictly peer-to-peer kernel-to-kernel messaging — no central
//! collection point.
//!
//! This crate reproduces that layer:
//!
//! * [`event`] — event identity and the typed payloads flowing on dproc's
//!   two channels (monitoring records; control messages),
//! * [`wire`] — a compact binary codec (`bytes`-based) for those payloads;
//!   a real kernel module would marshal structs the same way,
//! * [`directory`] — the channel registry plus subscription state, with
//!   both the paper's peer-to-peer topology and a Supermon-style central
//!   concentrator as the ablation baseline (`Topology::Central`),
//! * [`stream`] — per-stream sequence/epoch continuity tracking: gap
//!   detection and publisher-restart recognition,
//! * [`arena`] — a structure-of-arrays record arena for batched event
//!   assembly: one filter evaluation materializes its accepted records
//!   once, and each subscriber sharing the result gathers a span into a
//!   pooled payload buffer (one encode, N enqueues).
//!
//! The crate is pure: submission *plans* hops (`(from, to)` pairs); the
//! cluster glue in `dproc` turns hops into `simnet` sends and schedules
//! deliveries.

pub mod arena;
pub mod credit;
pub mod directory;
pub mod event;
pub mod stream;
pub mod wire;

pub use arena::{RecordArena, RecordSpan};
pub use credit::{CreditWindow, GRANT_OVERDUE, GRANT_THRESHOLD, INITIAL_CREDITS, OUTBOX_CAP};
pub use directory::{ChannelId, Directory, Hop, Topology};
pub use event::{
    put_record_buf, take_record_buf, ControlMsg, DigestPayload, DigestRecord, Event, EventKind,
    HeartbeatPayload, MonRecord, MonitoringPayload, ParamSpec,
};
pub use stream::{Observation, StreamTracker, MAX_GAP_RANGES};
pub use wire::{decode_event, encode_event, WireError};
