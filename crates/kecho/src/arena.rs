//! Structure-of-arrays record arena for batched event assembly.
//!
//! A publisher fanning one filter evaluation out to N subscribers used to
//! clone the accepted record list once per subscriber. The arena inverts
//! that: the records are materialized **once** into four parallel columns
//! (one encode), and each subscriber's payload is then a contiguous
//! column gather into a pooled [`MonRecord`](crate::MonRecord) buffer
//! (N enqueues) — a straight `extend_from_slice`-speed copy with no
//! intermediate allocation.
//!
//! Lifetime discipline: spans index into the arena and are only valid
//! until the next [`RecordArena::clear`]. The d-mon clears the arena at
//! the top of every poll, together with the filter memo whose entries
//! hold the spans — payloads that outlive the poll (parked outbox
//! entries) own their records instead.

use crate::event::MonRecord;

/// A contiguous range of records in a [`RecordArena`]. Invalidated by
/// [`RecordArena::clear`]; never dereference a span across polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    start: u32,
    len: u32,
}

impl RecordSpan {
    /// Number of records in the span.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the span holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Structure-of-arrays store for monitoring records with per-poll
/// lifetime. Columns grow once to the high-water mark and are reused
/// forever after — `clear` keeps capacity.
#[derive(Debug, Default)]
pub struct RecordArena {
    ids: Vec<u32>,
    values: Vec<f64>,
    lasts: Vec<f64>,
    timestamps: Vec<f64>,
}

impl RecordArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records currently stored (across all spans).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Drop every span's contents, keeping column capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.values.clear();
        self.lasts.clear();
        self.timestamps.clear();
    }

    /// Cursor marking the start of the span being built; pass it to
    /// [`RecordArena::span_since`] once the records are pushed.
    pub fn mark(&self) -> usize {
        self.ids.len()
    }

    /// Append one record to the span under construction.
    pub fn push(&mut self, id: u32, value: f64, last_value_sent: f64, timestamp: f64) {
        self.ids.push(id);
        self.values.push(value);
        self.lasts.push(last_value_sent);
        self.timestamps.push(timestamp);
    }

    /// Close the span opened at `mark`.
    pub fn span_since(&self, mark: usize) -> RecordSpan {
        RecordSpan {
            start: mark as u32,
            len: (self.ids.len() - mark) as u32,
        }
    }

    /// Gather a span's records into `out` as wire-shaped [`MonRecord`]s.
    /// This is the per-subscriber enqueue: a columnar copy into a pooled
    /// buffer, no allocation once `out` has capacity.
    pub fn gather_into(&self, span: RecordSpan, out: &mut Vec<MonRecord>) {
        let (s, e) = (span.start as usize, (span.start + span.len) as usize);
        out.reserve(span.len());
        for i in s..e {
            out.push(MonRecord {
                metric_id: self.ids[i],
                value: self.values[i],
                last_value_sent: self.lasts[i],
                timestamp: self.timestamps[i],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_gather_what_was_pushed() {
        let mut a = RecordArena::new();
        let m0 = a.mark();
        a.push(0, 1.0, 0.5, 10.0);
        a.push(2, -3.0, 0.0, 10.0);
        let s0 = a.span_since(m0);
        let m1 = a.mark();
        a.push(7, 4.0, 4.0, 11.0);
        let s1 = a.span_since(m1);

        assert_eq!(s0.len(), 2);
        assert_eq!(s1.len(), 1);
        assert_eq!(a.len(), 3);

        let mut out = Vec::new();
        a.gather_into(s0, &mut out);
        a.gather_into(s1, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].metric_id, 0);
        assert_eq!(out[1].value, -3.0);
        assert_eq!(out[2].metric_id, 7);
        assert_eq!(out[2].timestamp, 11.0);
    }

    #[test]
    fn empty_span_gathers_nothing() {
        let mut a = RecordArena::new();
        let m = a.mark();
        let s = a.span_since(m);
        assert!(s.is_empty());
        let mut out = vec![MonRecord {
            metric_id: 9,
            value: 0.0,
            last_value_sent: 0.0,
            timestamp: 0.0,
        }];
        a.gather_into(s, &mut out);
        assert_eq!(out.len(), 1, "gather appends, never truncates");
    }

    #[test]
    fn clear_keeps_capacity_and_invalidates_content() {
        let mut a = RecordArena::new();
        let m = a.mark();
        for i in 0..32 {
            a.push(i, f64::from(i), 0.0, 1.0);
        }
        let _ = a.span_since(m);
        let cap = a.ids.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.ids.capacity(), cap, "clear must not shrink");
    }
}
