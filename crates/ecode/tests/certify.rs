//! Soundness of the static cost certificate: for any filter the
//! verifier certifies, the proven worst-case instruction bound must
//! dominate what the VM actually executes — on any input. That is the
//! property deployment relies on when it admits a filter whose bound
//! fits the budget, so it gets the adversarial treatment: generated
//! programs mix loops, branches, and arithmetic specifically to stress
//! the trip-count inference and the per-op cost model.

use ecode::{CostBound, EnvSpec, Filter, MetricRecord, RuntimeError};
use proptest::prelude::*;

fn env() -> EnvSpec {
    EnvSpec::new(["A", "B"])
}

/// A strategy over well-formed statement fragments. `depth` limits
/// nesting so generation terminates.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..3u8, expr()).prop_map(|(v, e)| format!("x{v} = {e};")),
        expr().prop_map(|e| format!("output[0] = input[A]; output[0].value = {e};")),
        Just("output[1] = input[B];".to_string()),
        Just("return 1;".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let nested = stmt(depth - 1);
    prop_oneof![
        leaf,
        (expr(), nested.clone()).prop_map(|(c, s)| format!("if ({c}) {{ {s} }}")),
        (expr(), nested.clone(), nested.clone())
            .prop_map(|(c, a, b)| format!("if ({c}) {{ {a} }} else {{ {b} }}")),
        (0..20i64, nested.clone())
            .prop_map(|(n, s)| format!("for (int i = 0; i < {n}; i = i + 1) {{ {s} }}")),
        // Own block so sibling fragments don't redeclare `j`, and the
        // decrement always targets *this* loop's variable even when a
        // nested fragment shadows the name.
        (1..15i64, 1..4i64, nested).prop_map(|(n, step, s)| {
            format!("{{ int j = {n}; while (j > 0) {{ {s} j = j - {step}; }} }}")
        }),
    ]
    .boxed()
}

/// Arithmetic/comparison expressions over locals, inputs, and literals.
fn atom() -> BoxedStrategy<String> {
    prop_oneof![
        (-50i64..50).prop_map(|v| format!("{v}")),
        (0..3u8).prop_map(|v| format!("x{v}")),
        Just("input[A].value".to_string()),
        Just("input[B].last_value_sent".to_string()),
    ]
    .boxed()
}

fn expr() -> BoxedStrategy<String> {
    let op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("<"),
        Just(">"),
        Just("=="),
        Just("&&"),
    ];
    (atom(), op, atom())
        .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
        .boxed()
}

/// Whole programs: three pre-declared int locals plus generated bodies.
fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(2), 1..6).prop_map(|body| {
        format!(
            "{{ int x0 = 0; int x1 = 1; int x2 = 2; {} }}",
            body.join(" ")
        )
    })
}

fn inputs(a: f64, b: f64) -> [MetricRecord; 2] {
    [MetricRecord::new(0, a), MetricRecord::new(1, b)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The certified bound dominates actual execution, and therefore a
    /// certified filter run under a budget >= its bound can never die of
    /// `BudgetExhausted`.
    #[test]
    fn certified_bound_covers_actual_execution(
        src in program(),
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
    ) {
        let f = Filter::compile(&src, &env()).expect("generated programs are well-formed");
        let CostBound::Bounded(bound) = f.cert().cost else {
            // The generator only emits loops the verifier can bound.
            panic!("verifier failed to certify a generated program:\n{src}");
        };
        // Re-compile with the proven bound as the budget: the certificate
        // claims this can never be exhausted.
        let tight = Filter::compile_with_budget(&src, &env(), bound).unwrap();
        match tight.run(&inputs(a, b)) {
            Ok(out) => prop_assert!(
                out.instructions() <= bound,
                "executed {} > certified bound {} for:\n{src}",
                out.instructions(),
                bound,
            ),
            Err(RuntimeError::BudgetExhausted { .. }) => {
                return Err(TestCaseError::fail(format!(
                    "certified filter exhausted its own bound {bound}:\n{src}"
                )));
            }
            // Other runtime errors (index range, ...) are outside the
            // certificate's contract.
            Err(_) => {}
        }
    }

    /// Certification is deterministic: the same source always yields the
    /// same bound and read set (deployment decisions must be stable).
    #[test]
    fn certification_is_deterministic(src in program()) {
        let f1 = Filter::compile(&src, &env()).unwrap();
        let f2 = Filter::compile(&src, &env()).unwrap();
        prop_assert_eq!(f1.cert(), f2.cert());
    }
}
