//! Soundness of the memo classification (`FilterCert::effects.memo`).
//!
//! The d-mon evaluates each deployed filter once per poll *per
//! subscriber*; the shared-filter memo collapses that to one evaluation
//! when the effect pass certifies it safe. These properties pin the
//! contract from both sides:
//!
//! - **Shared** class ⇒ the result is invariant under `last_value_sent`
//!   perturbation (the only per-subscriber input), so one fingerprint-
//!   keyed evaluation may serve every subscriber.
//! - **SnapshotKeyed** class ⇒ equal input snapshots give equal outputs
//!   (the memo compares full snapshots, so per-subscriber divergence in
//!   `last_value_sent` keys separate entries).
//! - The **impure** family (live `last_value_sent` reads) is certified
//!   `memo_safe = false` AND demonstrably produces different results for
//!   subscribers with different send history — the witness that the
//!   Bypass tier is necessary, not conservatism.

use ecode::{EnvSpec, Filter, MemoClass, MetricRecord};
use proptest::prelude::*;

fn env() -> EnvSpec {
    EnvSpec::new(["LOADAVG", "FREEMEM"])
}

/// Inputs for the two-metric environment with explicit send history.
fn inputs(v0: f64, v1: f64, last0: f64, last1: f64) -> Vec<MetricRecord> {
    vec![
        MetricRecord::new(0, v0).with_last_sent(last0),
        MetricRecord::new(1, v1).with_last_sent(last1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shared_class_is_invariant_under_send_history(
        threshold in -100.0f64..100.0,
        v0 in -100.0f64..100.0,
        v1 in -100.0f64..100.0,
        lastx in -1000.0f64..1000.0,
        lasty in -1000.0f64..1000.0,
    ) {
        // Non-emitting accept/reject filter: the Shared class.
        let src = format!(
            "{{ if (input[LOADAVG].value + input[FREEMEM].value > {threshold:.4}) {{ return 1; }} return 0; }}"
        );
        let f = Filter::compile(&src, &env()).unwrap();
        prop_assert_eq!(f.cert().effects.memo, MemoClass::Shared);
        prop_assert!(f.cert().memo_safe);
        // Two subscribers whose only difference is send history must see
        // the same verdict — that's what lets one evaluation serve both.
        let a = f.run(&inputs(v0, v1, lastx, lastx)).unwrap();
        let b = f.run(&inputs(v0, v1, lasty, lasty)).unwrap();
        prop_assert_eq!(a.accept(), b.accept());
        prop_assert_eq!(a.records_if_accepted(), b.records_if_accepted());
        prop_assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn snapshot_keyed_class_is_deterministic_per_snapshot(
        threshold in -100.0f64..100.0,
        scale in 0.1f64..10.0,
        v0 in -100.0f64..100.0,
        last0 in -100.0f64..100.0,
    ) {
        // Emitting filter: SnapshotKeyed — sharable only between equal
        // input snapshots (emitted records copy the snapshot, including
        // per-subscriber last_value_sent).
        let src = format!(
            "{{ if (input[LOADAVG].value * {scale:.4} > {threshold:.4}) {{ output[0] = input[LOADAVG]; }} }}"
        );
        let f = Filter::compile(&src, &env()).unwrap();
        prop_assert_eq!(f.cert().effects.memo, MemoClass::SnapshotKeyed);
        prop_assert!(f.cert().memo_safe);
        let snap = inputs(v0, 0.0, last0, 0.0);
        let once = f.run(&snap).unwrap();
        let again = f.run(&snap).unwrap();
        // Replaying the memoized result is indistinguishable from
        // re-evaluating: same records, same cost.
        prop_assert_eq!(once.records_if_accepted(), again.records_if_accepted());
        prop_assert_eq!(once.instructions(), again.instructions());
    }

    #[test]
    fn impure_family_is_bypass_and_actually_diverges(
        value in -100.0f64..100.0,
        gap in 0.5f64..50.0,
    ) {
        // The canonical dproc delta filter: submit only when the sample
        // moved past what this subscriber last saw.
        let src = "{ if (input[LOADAVG].value > input[LOADAVG].last_value_sent) { output[0] = input[LOADAVG]; } }";
        let f = Filter::compile(src, &env()).unwrap();
        // Certified unsafe to share...
        prop_assert_eq!(f.cert().effects.memo, MemoClass::Bypass);
        prop_assert!(!f.cert().memo_safe);
        prop_assert!(f.cert().effects.reads_last_sent);
        // ...and the witness: two subscribers, send history straddling
        // the sample, observe different results from the same poll.
        let behind = f.run(&inputs(value, 0.0, value - gap, 0.0)).unwrap();
        let ahead = f.run(&inputs(value, 0.0, value + gap, 0.0)).unwrap();
        prop_assert_eq!(behind.records_if_accepted().len(), 1);
        prop_assert_eq!(ahead.records_if_accepted().len(), 0);
    }

    #[test]
    fn lvs_writes_are_bypass_even_without_reads(
        value in -100.0f64..100.0,
    ) {
        // Writing last_value_sent on an emitted record customizes the
        // subscriber's future send history — also unshareable.
        let src = "{ output[0] = input[LOADAVG]; output[0].last_value_sent = 0.0; }";
        let f = Filter::compile(src, &env()).unwrap();
        prop_assert_eq!(f.cert().effects.memo, MemoClass::Bypass);
        prop_assert!(!f.cert().memo_safe);
        prop_assert!(f.cert().effects.writes_last_sent);
        let out = f.run(&inputs(value, 0.0, 7.0, 0.0)).unwrap();
        prop_assert_eq!(out.records_if_accepted().len(), 1);
        prop_assert_eq!(out.records_if_accepted()[0].last_value_sent, 0.0);
    }

    #[test]
    fn pure_family_never_reads_send_history(
        threshold in -100.0f64..100.0,
        pick in 0usize..3,
    ) {
        // Every member of a small pure-filter family certifies memo-safe;
        // the scan is structural, so no run-time check is needed.
        let src = match pick {
            0 => format!("{{ if (input[LOADAVG].value > {threshold:.4}) {{ output[0] = input[LOADAVG]; }} }}"),
            1 => format!("{{ if (input[FREEMEM].value < {threshold:.4}) {{ return 0; }} return 1; }}"),
            _ => "{ output[0] = input[LOADAVG]; output[1] = input[FREEMEM]; }".to_string(),
        };
        let f = Filter::compile(&src, &env()).unwrap();
        prop_assert!(f.cert().memo_safe, "{}", src);
        prop_assert!(!f.cert().effects.reads_last_sent);
        prop_assert!(!f.cert().effects.writes_last_sent);
    }
}
