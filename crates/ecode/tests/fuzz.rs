//! Robustness properties: the compiler pipeline must never panic on
//! arbitrary input — kernels compile filter strings supplied by remote
//! applications, so every failure has to be a clean `CompileError`.

use ecode::{EnvSpec, Filter, MetricRecord};
use proptest::prelude::*;

fn env() -> EnvSpec {
    EnvSpec::new(["LOADAVG", "FREEMEM"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compile_never_panics_on_arbitrary_bytes(src in "[ -~\\n\\t]{0,256}") {
        let _ = Filter::compile(&src, &env());
    }

    #[test]
    fn compile_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("int".to_string()),
                Just("double".to_string()),
                Just("if".to_string()),
                Just("else".to_string()),
                Just("for".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("break".to_string()),
                Just("continue".to_string()),
                Just("input".to_string()),
                Just("output".to_string()),
                Just("LOADAVG".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("==".to_string()),
                Just("&&".to_string()),
                Just("<".to_string()),
                Just("+".to_string()),
                Just(".".to_string()),
                Just("value".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("2.5".to_string()),
                Just("50e6".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = Filter::compile(&src, &env());
    }

    #[test]
    fn successful_compiles_run_without_internal_errors(
        threshold in -100.0f64..100.0,
        value in -100.0f64..100.0,
    ) {
        // A family of well-formed filters over the whole parameter space:
        // execution must either succeed or fail with a *domain* error,
        // never an internal VM error.
        let src = format!(
            "{{ if (input[LOADAVG].value > {threshold:.4}) {{ output[0] = input[LOADAVG]; }} }}"
        );
        let f = Filter::compile(&src, &env()).unwrap();
        let out = f
            .run(&[MetricRecord::new(0, value), MetricRecord::new(1, 0.0)])
            .unwrap();
        prop_assert_eq!(out.records().len(), (value > threshold) as usize);
    }

    #[test]
    fn deeply_nested_expressions_compile_or_error_cleanly(depth in 1usize..200) {
        // Pathological nesting must not blow the compiler's stack in a
        // disorderly way for reasonable depths.
        let src = format!(
            "{{ int x = {}1{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let f = Filter::compile(&src, &env());
        prop_assert!(f.is_ok(), "pure parens nest fine");
    }
}

#[test]
fn empty_and_whitespace_sources() {
    // An empty statement list is a valid (pass-nothing) filter, braced or
    // not.
    for src in ["", "   ", "\n\n", "{ }", "{\n}"] {
        let f = Filter::compile(src, &env()).expect(src);
        let out = f
            .run(&[MetricRecord::new(0, 1.0), MetricRecord::new(1, 2.0)])
            .unwrap();
        assert!(out.records().is_empty());
        assert!(out.accept());
    }
}
