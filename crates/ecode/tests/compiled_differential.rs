//! Differential testing of the compiling backend against the stack VM.
//!
//! The compiled closure must be *bit-identical* to the interpreter: the
//! same output slots (values, ids, timestamps), the same accept flag,
//! the same executed-instruction count (d-mon charges CPU per logical
//! instruction, so a drifting count would silently skew the simulation),
//! and the same error on failing runs — including `BudgetExhausted`
//! raised in the middle of a fused superinstruction, which the budget
//! sweep below exercises at every instruction boundary.

use ecode::{compile_filter, EnvSpec, Filter, MetricRecord};
use proptest::prelude::*;

fn env() -> EnvSpec {
    EnvSpec::new(["A", "B", "C"])
}

/// Statement fragments biased toward the shapes the backend fuses:
/// constant-index field loads, comparisons feeding branches, emits.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..3u8, expr()).prop_map(|(v, e)| format!("x{v} = {e};")),
        (0..3u8, expr()).prop_map(|(v, e)| format!("d{v} = {e};")),
        (0..3u8).prop_map(|s| format!("output[{s}] = input[{}];", ["A", "B", "C"][s as usize])),
        (0..2u8, expr())
            .prop_map(|(s, e)| format!("output[{s}] = input[A]; output[{s}].value = {e};")),
        expr().prop_map(|e| format!("output[0] = input[C]; output[0].last_value_sent = {e};")),
        Just("return x0;".to_string()),
        Just("return 1;".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let nested = stmt(depth - 1);
    prop_oneof![
        leaf,
        (expr(), nested.clone()).prop_map(|(c, s)| format!("if ({c}) {{ {s} }}")),
        (expr(), nested.clone(), nested.clone())
            .prop_map(|(c, a, b)| format!("if ({c}) {{ {a} }} else {{ {b} }}")),
        (0..12i64, nested.clone())
            .prop_map(|(n, s)| format!("for (int i = 0; i < {n}; i = i + 1) {{ {s} }}")),
        (1..10i64, 1..3i64, nested).prop_map(|(n, step, s)| {
            format!("{{ int j = {n}; while (j > 0) {{ {s} j = j - {step}; }} }}")
        }),
    ]
    .boxed()
}

fn atom() -> BoxedStrategy<String> {
    prop_oneof![
        (-50i64..50).prop_map(|v| format!("{v}")),
        (-4.0f64..4.0).prop_map(|v| format!("{v:.3}")),
        (0..3u8).prop_map(|v| format!("x{v}")),
        (0..3u8).prop_map(|v| format!("d{v}")),
        Just("input[A].value".to_string()),
        Just("input[B].value".to_string()),
        Just("input[B].last_value_sent".to_string()),
        Just("input[C].timestamp".to_string()),
        Just("input[A].id".to_string()),
    ]
    .boxed()
}

fn expr() -> BoxedStrategy<String> {
    let op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("/"),
        Just("%"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
        Just("=="),
        Just("!="),
        Just("&&"),
        Just("||"),
    ];
    prop_oneof![
        (atom(), op, atom()).prop_map(|(a, op, b)| format!("({a} {op} {b})")),
        atom().prop_map(|a| format!("(-{a})")),
        atom().prop_map(|a| format!("(!{a})")),
    ]
    .boxed()
}

/// Whole programs: int locals x0..x2 and float-ish locals d0..d2. The
/// `d` locals are *declared* double but seeded with int constants, so
/// the generator also produces polymorphic programs that must fall back
/// to the interpreter — those are still run through `Filter::run` to
/// confirm the fallback path agrees with itself.
fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(2), 1..6).prop_map(|body| {
        format!(
            "{{ int x0 = 0; int x1 = 1; int x2 = 2; \
               double d0 = 0.5; double d1 = 2; double d2 = -1.25; {} }}",
            body.join(" ")
        )
    })
}

fn inputs(a: f64, b: f64, c: f64) -> [MetricRecord; 3] {
    [
        MetricRecord::new(0, a).with_timestamp(1.5),
        MetricRecord::new(1, b).with_last_sent(a),
        MetricRecord::new(2, c).with_timestamp(-3.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Compiled output is bit-identical to the interpreter: slots,
    /// accept flag, instruction count, and runtime errors all match.
    #[test]
    fn compiled_matches_interpreter(
        src in program(),
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        c in -100.0f64..100.0,
    ) {
        let f = Filter::compile(&src, &env()).expect("generated programs are well-formed");
        let Some(compiled) = compile_filter(&f) else {
            // Polymorphic or uncertified: interpreter-only is fine.
            return Ok(());
        };
        let recs = inputs(a, b, c);
        let want = f.run(&recs);
        let got = compiled.run(&recs);
        prop_assert_eq!(want, got, "engines diverge on:\n{}", src);
    }

    /// Budget-exhaustion parity: sweeping the budget across every value
    /// up to the program's own cost exercises exhaustion at every
    /// boundary, including inside fused superinstructions. The error
    /// (or success) must match the interpreter exactly at each step.
    #[test]
    fn budget_exhaustion_parity(
        src in program(),
        a in -10.0f64..10.0,
    ) {
        let probe = Filter::compile(&src, &env()).unwrap();
        let recs = inputs(a, -a, 2.0 * a);
        // Find the natural cost, capped to keep the sweep bounded.
        let natural = match probe.run(&recs) {
            Ok(out) => out.instructions().min(120),
            Err(_) => 120,
        };
        for budget in 0..=natural {
            let f = Filter::compile_with_budget(&src, &env(), budget).unwrap();
            let Some(compiled) = compile_filter(&f) else { continue };
            prop_assert_eq!(
                f.run(&recs),
                compiled.run(&recs),
                "budget {} diverges on:\n{}",
                budget,
                src
            );
        }
    }

    /// Runtime-error parity on hostile indices: out-of-range input
    /// reads and output writes must produce the identical error value.
    #[test]
    fn error_parity_on_wild_indices(
        idx in -5i64..10,
        out_idx in -2i64..300,
    ) {
        let src = format!(
            "{{ output[{out_idx}] = input[{idx}]; double v = input[{idx}].value; }}"
        );
        let f = Filter::compile(&src, &env()).unwrap();
        let Some(compiled) = compile_filter(&f) else { return Ok(()); };
        let recs = inputs(1.0, 2.0, 3.0);
        prop_assert_eq!(f.run(&recs), compiled.run(&recs));
    }
}

/// The deployment pair: certified ⇒ compiled, and the compiled artifact
/// reports fusion having actually happened for the paper's own filter.
#[test]
fn fig3_deployment_compiles_and_agrees() {
    let f = Filter::compile(ecode::FIG3_SOURCE, &ecode::fig3_env()).unwrap();
    let compiled = compile_filter(&f).expect("fig3 certifies and is monomorphic");
    assert!(compiled.superinstruction_count() > 0);
    for load in [0.5, 2.5] {
        for disk in [500.0, 20_000.0] {
            let recs = [
                MetricRecord::new(0, load),
                MetricRecord::new(1, disk),
                MetricRecord::new(2, 10e6),
                MetricRecord::new(3, 100.0).with_last_sent(50.0),
            ];
            assert_eq!(f.run(&recs), compiled.run(&recs));
        }
    }
}
