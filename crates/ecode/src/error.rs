//! Compile-time and run-time error types.

use std::fmt;

use crate::token::Pos;

/// Error produced while compiling an E-code filter (lexing, parsing, or
/// semantic analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where in the source the problem is.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Construct an error at a position.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        CompileError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e-code compile error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Error produced while executing a compiled filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The instruction budget was exhausted (runaway loop).
    BudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// `input[i]` with `i` outside the provided record set.
    InputIndexOutOfRange {
        /// The offending index.
        index: i64,
        /// Number of provided input records.
        len: usize,
    },
    /// `output[i]` with a negative or absurdly large index.
    OutputIndexOutOfRange {
        /// The offending index.
        index: i64,
    },
    /// `output[i].field = ...` before `output[i]` was assigned a record.
    OutputSlotEmpty {
        /// The offending slot.
        index: i64,
    },
    /// Integer division or modulo by zero.
    DivisionByZero,
    /// Internal VM invariant broken — indicates a compiler bug.
    Internal(&'static str),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BudgetExhausted { budget } => {
                write!(f, "filter exceeded its instruction budget of {budget}")
            }
            RuntimeError::InputIndexOutOfRange { index, len } => {
                write!(f, "input[{index}] out of range (have {len} records)")
            }
            RuntimeError::OutputIndexOutOfRange { index } => {
                write!(f, "output[{index}] out of range")
            }
            RuntimeError::OutputSlotEmpty { index } => {
                write!(
                    f,
                    "output[{index}] written by field before being assigned a record"
                )
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Internal(what) => write!(f, "internal VM error: {what}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_error_displays_position() {
        let e = CompileError::new(Pos::new(2, 7), "unexpected token");
        assert_eq!(
            e.to_string(),
            "e-code compile error at 2:7: unexpected token"
        );
    }

    #[test]
    fn runtime_errors_display() {
        assert!(RuntimeError::BudgetExhausted { budget: 10 }
            .to_string()
            .contains("budget of 10"));
        assert!(RuntimeError::InputIndexOutOfRange { index: 9, len: 4 }
            .to_string()
            .contains("input[9]"));
        assert!(RuntimeError::DivisionByZero.to_string().contains("zero"));
        assert!(RuntimeError::OutputSlotEmpty { index: 2 }
            .to_string()
            .contains("output[2]"));
    }
}
