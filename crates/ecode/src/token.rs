//! Tokens and source positions.

use std::fmt;

/// A 1-based line/column source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line, starting at 1.
    pub line: u32,
    /// Column, starting at 1.
    pub col: u32,
}

impl Pos {
    /// Construct a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the E-code language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Floating literal (including scientific notation).
    Float(f64),
    /// Identifier or metric-constant name.
    Ident(String),

    // keywords
    /// `int`
    KwInt,
    /// `double`
    KwDouble,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `for`
    KwFor,
    /// `while`
    KwWhile,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `input`
    KwInput,
    /// `output`
    KwOutput,

    // punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwDouble => write!(f, "double"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::KwInput => write!(f, "input"),
            Tok::KwOutput => write!(f, "output"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Assign => write!(f, "="),
            Tok::PlusAssign => write!(f, "+="),
            Tok::MinusAssign => write!(f, "-="),
            Tok::StarAssign => write!(f, "*="),
            Tok::SlashAssign => write!(f, "/="),
            Tok::PercentAssign => write!(f, "%="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Eq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Not => write!(f, "!"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_displays() {
        assert_eq!(format!("{}", Pos::new(3, 14)), "3:14");
    }

    #[test]
    fn tok_displays() {
        assert_eq!(format!("{}", Tok::AndAnd), "&&");
        assert_eq!(format!("{}", Tok::Ident("x".into())), "x");
        assert_eq!(format!("{}", Tok::Int(42)), "42");
    }
}
