//! `ecode` — a compiler and virtual machine for the E-code filter
//! language.
//!
//! The paper deploys *dynamic filters*: functions written in E-code — "a
//! small subset of the C programming language, supporting the C operators,
//! for loops, if statements, and return statements" — shipped as source
//! strings over dproc's control channel and compiled at the publishing
//! host, then executed before every event submission to transform or
//! suppress outgoing monitoring data.
//!
//! This crate is that compiler. The original E-code generates native
//! binary code; we compile to a compact bytecode executed by a stack VM
//! with an instruction budget (a kernel would want the same guard). The
//! latency structure is identical: compile once at deployment, execute
//! per submission.
//!
//! # Language
//!
//! * types: `int` (64-bit) and `double`, with implicit `int → double`
//!   promotion; metric *records* flow between `input[]` and `output[]`,
//! * statements: declarations, assignments, `if`/`else`, `for`, `while`,
//!   `break`/`continue`, `return`, blocks,
//! * expressions: the C arithmetic (`+ - * / %`), comparison
//!   (`< <= > >= == !=`), logical (`&& || !`) and unary (`-`) operators,
//!   parenthesized grouping, integer and floating literals (including
//!   scientific notation like `50e6`),
//! * the filter ABI: `input[METRIC]` reads the pending monitoring record
//!   for a metric (named constants such as `LOADAVG` come from the
//!   [`EnvSpec`]); records expose `.value`, `.last_value_sent`,
//!   `.timestamp` and `.id`; assigning `output[i] = input[j];` emits a
//!   record, and `output[i].value = expr;` rewrites an emitted record's
//!   value (data transformation).
//!
//! The paper's Figure 3 filter compiles and runs verbatim — see
//! `tests::fig3` in [`filter`].
//!
//! # Example
//!
//! ```
//! use ecode::{EnvSpec, Filter, MetricRecord};
//!
//! let env = EnvSpec::new(["LOADAVG", "FREEMEM"]);
//! let filter = Filter::compile(
//!     "{ if (input[LOADAVG].value > 2.0) { output[0] = input[LOADAVG]; } }",
//!     &env,
//! ).unwrap();
//!
//! let quiet = [MetricRecord::new(0, 1.0), MetricRecord::new(1, 9e6)];
//! assert!(filter.run(&quiet).unwrap().records().is_empty());
//!
//! let busy = [MetricRecord::new(0, 3.5), MetricRecord::new(1, 9e6)];
//! let out = filter.run(&busy).unwrap();
//! assert_eq!(out.records().len(), 1);
//! assert_eq!(out.records()[0].value, 3.5);
//! ```

pub mod analysis;
pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod error;
pub mod filter;
pub mod lexer;
pub mod opt;
pub mod parser;
mod regalloc;
pub mod sema;
pub mod token;
pub mod vm;

pub use analysis::{
    CostBound, Diagnostic, EffectSummary, FilterCert, LintKind, MemoClass, MetricSet, Severity,
};
pub use compile::{compile_filter, CompiledFilter};
pub use error::{CompileError, RuntimeError};
pub use filter::{fig3_env, EnvSpec, Filter, FilterOutput, MetricRecord, FIG3_SOURCE};
