//! Semantic analysis: scope resolution, metric-constant binding, and type
//! checking. Produces a *resolved AST* the bytecode compiler consumes.
//!
//! Rules enforced here:
//!
//! * every variable is declared before use; re-declaration in the same
//!   scope is an error; inner scopes may shadow,
//! * bare identifiers that are not variables resolve to metric constants
//!   of the [`crate::EnvSpec`] (e.g. `LOADAVG` → its input index) — and
//!   anything else is an "unknown identifier" error,
//! * whole records (`input[i]`) may only appear as the right-hand side of
//!   `output[j] = ...`; everywhere else a `.field` projection is required,
//! * arithmetic follows C: if either operand is `double` the operation is
//!   `double`; storing a `double` into an `int` variable truncates,
//! * `break`/`continue` only inside loops.

use crate::ast::{BinOp, Expr, ExprKind, Field, Program, Stmt, StmtKind, Ty, UnOp};
use crate::error::CompileError;
use crate::filter::EnvSpec;
use crate::token::Pos;

/// A resolved expression with its computed type and source position.
#[derive(Debug, Clone, PartialEq)]
pub struct RExpr {
    /// Source position (for diagnostics).
    pub pos: Pos,
    /// Result type.
    pub ty: Ty,
    /// The resolved expression.
    pub kind: RExprKind,
}

/// Resolved expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum RExprKind {
    /// Integer constant (literals and metric constants).
    ConstI(i64),
    /// Float constant.
    ConstF(f64),
    /// Local variable slot.
    Local(u16),
    /// `input[index].field`.
    InputField(Box<RExpr>, Field),
    /// Binary operation.
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    /// Unary operation.
    Unary(UnOp, Box<RExpr>),
}

/// A resolved statement: a source position plus the statement itself.
///
/// Positions survive resolution so the static analyzer
/// ([`crate::analysis`]) can report diagnostics with spans against the
/// original filter source.
#[derive(Debug, Clone, PartialEq)]
pub struct RStmt {
    /// Source position (for diagnostics).
    pub pos: Pos,
    /// The statement.
    pub kind: RStmtKind,
}

/// Resolved statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmtKind {
    /// Store into a local slot; `truncate` if an int target receives a
    /// double.
    Store {
        /// Target slot.
        slot: u16,
        /// Value to store.
        value: RExpr,
        /// Apply C truncation (double → int).
        truncate: bool,
        /// True for the implicit zero-initialization of a declaration
        /// without an initializer (`int x;`); lets the analyzer
        /// distinguish "never explicitly assigned" from real stores.
        synthetic: bool,
    },
    /// `output[index] = input[input_index];`
    OutputRecord {
        /// Output slot expression.
        index: RExpr,
        /// Input record index expression.
        input_index: RExpr,
    },
    /// `output[index].field = value;`
    OutputField {
        /// Output slot expression.
        index: RExpr,
        /// Field to overwrite.
        field: Field,
        /// New value.
        value: RExpr,
    },
    /// Conditional.
    If {
        /// Condition (numeric; nonzero = true).
        cond: RExpr,
        /// Then branch.
        then: Vec<RStmt>,
        /// Else branch.
        else_: Vec<RStmt>,
    },
    /// Unified loop (`for` and `while` both lower here).
    Loop {
        /// Runs once before the loop.
        init: Option<Box<RStmt>>,
        /// Checked before each iteration (absent = infinite).
        cond: Option<RExpr>,
        /// Runs after each iteration (and on `continue`).
        step: Option<Box<RStmt>>,
        /// Loop body.
        body: Vec<RStmt>,
    },
    /// Return, optionally with an accept/suppress value.
    Return(Option<RExpr>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Statement sequence (scope already resolved away).
    Block(Vec<RStmt>),
}

/// A fully resolved filter program.
#[derive(Debug, Clone, PartialEq)]
pub struct RProgram {
    /// Statements.
    pub body: Vec<RStmt>,
    /// Number of local slots to allocate.
    pub n_locals: u16,
    /// Source name of each slot, indexed by slot number (slots are never
    /// reused, so this is one entry per declaration). Diagnostics use
    /// these to talk about variables instead of slot numbers.
    pub slot_names: Vec<String>,
}

struct Scope {
    /// (name, slot, ty) triples; inner scopes push, leaving drops.
    vars: Vec<(String, u16, Ty)>,
    /// Stack of scope start indices.
    marks: Vec<usize>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: Vec::new(),
            marks: Vec::new(),
        }
    }

    fn enter(&mut self) {
        self.marks.push(self.vars.len());
    }

    fn leave(&mut self) {
        let mark = self.marks.pop().expect("scope underflow");
        self.vars.truncate(mark);
    }

    fn declare(&mut self, name: &str, slot: u16, ty: Ty) -> bool {
        let mark = self.marks.last().copied().unwrap_or(0);
        if self.vars[mark..].iter().any(|(n, _, _)| n == name) {
            return false;
        }
        self.vars.push((name.to_string(), slot, ty));
        true
    }

    fn lookup(&self, name: &str) -> Option<(u16, Ty)> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|&(_, slot, ty)| (slot, ty))
    }
}

struct Analyzer<'a> {
    env: &'a EnvSpec,
    scope: Scope,
    next_slot: u16,
    loop_depth: u32,
    slot_names: Vec<String>,
}

/// Analyze a parsed program against a metric environment.
pub fn analyze(prog: &Program, env: &EnvSpec) -> Result<RProgram, CompileError> {
    let mut a = Analyzer {
        env,
        scope: Scope::new(),
        next_slot: 0,
        loop_depth: 0,
        slot_names: Vec::new(),
    };
    let body = a.stmts(&prog.body)?;
    Ok(RProgram {
        body,
        n_locals: a.next_slot,
        slot_names: a.slot_names,
    })
}

impl<'a> Analyzer<'a> {
    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<RStmt>, CompileError> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<RStmt, CompileError> {
        match &stmt.kind {
            StmtKind::Decl { ty, name, init } => {
                let slot = self.next_slot;
                self.next_slot = self
                    .next_slot
                    .checked_add(1)
                    .ok_or_else(|| CompileError::new(stmt.pos, "too many local variables"))?;
                self.slot_names.push(name.clone());
                let (value, synthetic) = match init {
                    Some(e) => (self.expr(e)?, false),
                    None => (
                        RExpr {
                            pos: stmt.pos,
                            ty: *ty,
                            kind: match ty {
                                Ty::Int => RExprKind::ConstI(0),
                                Ty::Double => RExprKind::ConstF(0.0),
                            },
                        },
                        true,
                    ),
                };
                if !self.scope.declare(name, slot, *ty) {
                    return Err(CompileError::new(
                        stmt.pos,
                        format!("variable `{name}` already declared in this scope"),
                    ));
                }
                let truncate = *ty == Ty::Int && value.ty == Ty::Double;
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Store {
                        slot,
                        value,
                        truncate,
                        synthetic,
                    },
                })
            }
            StmtKind::Assign { name, value } => {
                let (slot, ty) = self.scope.lookup(name).ok_or_else(|| {
                    CompileError::new(
                        stmt.pos,
                        format!("assignment to undeclared variable `{name}`"),
                    )
                })?;
                let value = self.expr(value)?;
                let truncate = ty == Ty::Int && value.ty == Ty::Double;
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Store {
                        slot,
                        value,
                        truncate,
                        synthetic: false,
                    },
                })
            }
            StmtKind::OutputRecord { index, record } => {
                let index = self.numeric(index, "output index")?;
                // The rhs must be a whole input record.
                let ExprKind::InputRecord(input_index) = &record.kind else {
                    return Err(CompileError::new(
                        record.pos,
                        "the right-hand side of `output[...] = ...` must be `input[...]`",
                    ));
                };
                let input_index = self.numeric(input_index, "input index")?;
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::OutputRecord { index, input_index },
                })
            }
            StmtKind::OutputField {
                index,
                field,
                value,
            } => {
                let index = self.numeric(index, "output index")?;
                let value = self.numeric(value, "field value")?;
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::OutputField {
                        index,
                        field: *field,
                        value,
                    },
                })
            }
            StmtKind::If { cond, then, else_ } => {
                let cond = self.numeric(cond, "if condition")?;
                self.scope.enter();
                let then = self.stmts(then)?;
                self.scope.leave();
                self.scope.enter();
                let else_ = self.stmts(else_)?;
                self.scope.leave();
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::If { cond, then, else_ },
                })
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // The init declaration scopes over cond/step/body.
                self.scope.enter();
                let init = match init {
                    Some(s) => Some(Box::new(self.stmt(s)?)),
                    None => None,
                };
                let cond = match cond {
                    Some(c) => Some(self.numeric(c, "for condition")?),
                    None => None,
                };
                let step = match step {
                    Some(s) => Some(Box::new(self.stmt(s)?)),
                    None => None,
                };
                self.loop_depth += 1;
                self.scope.enter();
                let body = self.stmts(body)?;
                self.scope.leave();
                self.loop_depth -= 1;
                self.scope.leave();
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Loop {
                        init,
                        cond,
                        step,
                        body,
                    },
                })
            }
            StmtKind::While { cond, body } => {
                let cond = self.numeric(cond, "while condition")?;
                self.loop_depth += 1;
                self.scope.enter();
                let body = self.stmts(body)?;
                self.scope.leave();
                self.loop_depth -= 1;
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Loop {
                        init: None,
                        cond: Some(cond),
                        step: None,
                        body,
                    },
                })
            }
            StmtKind::Return(value) => {
                let value = match value {
                    Some(e) => Some(self.numeric(e, "return value")?),
                    None => None,
                };
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Return(value),
                })
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return Err(CompileError::new(stmt.pos, "`break` outside of a loop"));
                }
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Break,
                })
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(CompileError::new(stmt.pos, "`continue` outside of a loop"));
                }
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Continue,
                })
            }
            StmtKind::Block(stmts) => {
                self.scope.enter();
                let body = self.stmts(stmts)?;
                self.scope.leave();
                Ok(RStmt {
                    pos: stmt.pos,
                    kind: RStmtKind::Block(body),
                })
            }
        }
    }

    /// Resolve an expression that must be numeric (not a whole record).
    fn numeric(&mut self, expr: &Expr, what: &str) -> Result<RExpr, CompileError> {
        if let ExprKind::InputRecord(_) = expr.kind {
            return Err(CompileError::new(
                expr.pos,
                format!(
                    "{what} must be a number; `input[...]` is a whole record — project a field like `.value`"
                ),
            ));
        }
        self.expr(expr)
    }

    fn expr(&mut self, expr: &Expr) -> Result<RExpr, CompileError> {
        let pos = expr.pos;
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(RExpr {
                pos,
                ty: Ty::Int,
                kind: RExprKind::ConstI(*v),
            }),
            ExprKind::FloatLit(v) => Ok(RExpr {
                pos,
                ty: Ty::Double,
                kind: RExprKind::ConstF(*v),
            }),
            ExprKind::Var(name) => {
                if let Some((slot, ty)) = self.scope.lookup(name) {
                    return Ok(RExpr {
                        pos,
                        ty,
                        kind: RExprKind::Local(slot),
                    });
                }
                if let Some(idx) = self.env.index_of(name) {
                    return Ok(RExpr {
                        pos,
                        ty: Ty::Int,
                        kind: RExprKind::ConstI(idx as i64),
                    });
                }
                Err(CompileError::new(
                    expr.pos,
                    format!(
                        "unknown identifier `{name}` (not a variable, not a metric of this environment)"
                    ),
                ))
            }
            ExprKind::InputRecord(_) => Err(CompileError::new(
                expr.pos,
                "`input[...]` is a whole record and can only be assigned to `output[...]`",
            )),
            ExprKind::InputField(index, field) => {
                let index = self.numeric(index, "input index")?;
                let ty = match field {
                    Field::Id => Ty::Int,
                    _ => Ty::Double,
                };
                Ok(RExpr {
                    pos,
                    ty,
                    kind: RExprKind::InputField(Box::new(index), *field),
                })
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.numeric(lhs, "operand")?;
                let r = self.numeric(rhs, "operand")?;
                let ty = match op {
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::And
                    | BinOp::Or => Ty::Int,
                    _ => {
                        if l.ty == Ty::Double || r.ty == Ty::Double {
                            Ty::Double
                        } else {
                            Ty::Int
                        }
                    }
                };
                Ok(RExpr {
                    pos,
                    ty,
                    kind: RExprKind::Binary(*op, Box::new(l), Box::new(r)),
                })
            }
            ExprKind::Unary(op, inner) => {
                let i = self.numeric(inner, "operand")?;
                let ty = match op {
                    UnOp::Not => Ty::Int,
                    UnOp::Neg => i.ty,
                };
                Ok(RExpr {
                    pos,
                    ty,
                    kind: RExprKind::Unary(*op, Box::new(i)),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env() -> EnvSpec {
        EnvSpec::new(["LOADAVG", "DISKUSAGE", "FREEMEM", "CACHE_MISS"])
    }

    fn check(src: &str) -> Result<RProgram, CompileError> {
        analyze(&parse(src).unwrap(), &env())
    }

    #[test]
    fn resolves_metric_constants() {
        let p = check("{ int x = LOADAVG; }").unwrap();
        let RStmtKind::Store { value, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(value.kind, RExprKind::ConstI(0));
        let p = check("{ int x = CACHE_MISS; }").unwrap();
        let RStmtKind::Store { value, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(value.kind, RExprKind::ConstI(3));
    }

    #[test]
    fn unknown_identifier_errors() {
        let err = check("{ int x = NOT_A_METRIC; }").unwrap_err();
        assert!(err.message.contains("unknown identifier"));
    }

    #[test]
    fn undeclared_assignment_errors() {
        let err = check("{ x = 1; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn duplicate_declaration_same_scope_errors() {
        let err = check("{ int x = 1; int x = 2; }").unwrap_err();
        assert!(err.message.contains("already declared"));
    }

    #[test]
    fn shadowing_in_inner_scope_is_fine() {
        let p = check("{ int x = 1; { int x = 2; x = 3; } x = 4; }").unwrap();
        assert_eq!(p.n_locals, 2);
        // The final `x = 4` must target slot 0.
        let RStmtKind::Store { slot, .. } = &p.body[2].kind else {
            panic!()
        };
        assert_eq!(*slot, 0);
    }

    #[test]
    fn variable_out_of_scope_after_block() {
        let err = check("{ { int y = 1; } y = 2; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn for_init_variable_scopes_over_body_only() {
        assert!(check("{ for (int i = 0; i < 3; i = i + 1) { int t = i; } }").is_ok());
        let err = check("{ for (int i = 0; i < 3; i = i + 1) { } i = 9; }").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn record_only_assignable_to_output() {
        let err = check("{ int x = input[0] + 1; }").unwrap_err();
        assert!(err.message.contains("whole record"));
        let err = check("{ if (input[0]) { } }").unwrap_err();
        assert!(err.message.contains("whole record"));
        assert!(check("{ output[0] = input[0]; }").is_ok());
    }

    #[test]
    fn output_rhs_must_be_record() {
        let err = check("{ output[0] = 5; }").unwrap_err();
        assert!(err.message.contains("must be `input[...]`"));
    }

    #[test]
    fn int_from_double_truncates() {
        let p = check("{ int x = 2.7; }").unwrap();
        let RStmtKind::Store { truncate, .. } = &p.body[0].kind else {
            panic!()
        };
        assert!(truncate);
        let p = check("{ double y = 2; }").unwrap();
        let RStmtKind::Store { truncate, .. } = &p.body[0].kind else {
            panic!()
        };
        assert!(!truncate);
    }

    #[test]
    fn break_outside_loop_errors() {
        let err = check("{ break; }").unwrap_err();
        assert!(err.message.contains("outside of a loop"));
        let err = check("{ continue; }").unwrap_err();
        assert!(err.message.contains("outside of a loop"));
        assert!(check("{ while (1) { break; } }").is_ok());
    }

    #[test]
    fn arithmetic_type_promotion() {
        let p = check("{ double d = 1 + 2.5; int i = 1 + 2; }").unwrap();
        let RStmtKind::Store { value, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(value.ty, Ty::Double);
        let RStmtKind::Store { value, .. } = &p.body[1].kind else {
            panic!()
        };
        assert_eq!(value.ty, Ty::Int);
    }

    #[test]
    fn comparisons_are_int() {
        let p = check("{ int b = 1.5 > 1.0; }").unwrap();
        let RStmtKind::Store {
            value, truncate, ..
        } = &p.body[0].kind
        else {
            panic!()
        };
        assert_eq!(value.ty, Ty::Int);
        assert!(!truncate);
    }

    #[test]
    fn field_types() {
        let p = check("{ int i = input[0].id; double v = input[0].value; }").unwrap();
        let RStmtKind::Store { value, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(value.ty, Ty::Int);
    }

    #[test]
    fn fig3_analyzes_clean() {
        let src = r#"
{
    int i = 0;
    if(input[LOADAVG].value > 2){
        output[i] = input[LOADAVG];
        i = i + 1;
    }
    if(input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6){
        output[i] = input[DISKUSAGE];
        i = i + 1;
        output[i] = input[FREEMEM];
        i = i + 1;
    }
    if(input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent){
        output[i] = input[CACHE_MISS];
        i = i + 1;
    }
}
"#;
        let p = check(src).unwrap();
        assert_eq!(p.n_locals, 1);
    }
}
