//! Recursive-descent parser for E-code.

use crate::ast::{BinOp, Expr, ExprKind, Field, Program, Stmt, StmtKind, Ty, UnOp};
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token};

/// Parse a filter source string into an AST.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i].clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn at(&self, tok: &Tok) -> bool {
        &self.peek().tok == tok
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.at(tok) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, CompileError> {
        if self.at(&tok) {
            Ok(self.bump())
        } else {
            Err(CompileError::new(
                self.pos(),
                format!("expected `{tok}`, found `{}`", self.peek().tok),
            ))
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        // The paper writes filters as one braced block; also accept a bare
        // statement list.
        let body = if self.at(&Tok::LBrace) {
            // Peek ahead: a top-level `{ ... }` wrapping everything, or a
            // leading block statement? Treat a single leading block that
            // consumes all input as the program; otherwise parse as a list.
            let save = self.i;
            self.bump();
            let mut stmts = Vec::new();
            while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
                stmts.push(self.stmt()?);
            }
            self.expect(Tok::RBrace)?;
            if self.at(&Tok::Eof) {
                stmts
            } else {
                // It was a block statement followed by more statements.
                self.i = save;
                self.stmt_list_until_eof()?
            }
        } else {
            self.stmt_list_until_eof()?
        };
        self.expect(Tok::Eof)?;
        Ok(Program { body })
    }

    fn stmt_list_until_eof(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.at(&Tok::Eof) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at(&Tok::LBrace) {
            self.bump();
            let mut stmts = Vec::new();
            while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
                stmts.push(self.stmt()?);
            }
            self.expect(Tok::RBrace)?;
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match &self.peek().tok {
            Tok::KwInt | Tok::KwDouble => {
                let s = self.decl()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwFor => self.for_stmt(),
            Tok::KwWhile => self.while_stmt(),
            Tok::KwReturn => {
                self.bump();
                let value = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Return(value),
                })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Break,
                })
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Continue,
                })
            }
            Tok::LBrace => {
                let body = self.block_or_stmt()?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Block(body),
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration without the trailing semicolon.
    fn decl(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        let ty = match self.bump().tok {
            Tok::KwInt => Ty::Int,
            Tok::KwDouble => Ty::Double,
            other => {
                return Err(CompileError::new(
                    pos,
                    format!("expected type, found `{other}`"),
                ))
            }
        };
        let name_tok = self.bump();
        let name = match name_tok.tok {
            Tok::Ident(n) => n,
            other => {
                return Err(CompileError::new(
                    name_tok.pos,
                    format!("expected variable name, found `{other}`"),
                ))
            }
        };
        let init = if self.eat(&Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt {
            pos,
            kind: StmtKind::Decl { ty, name, init },
        })
    }

    /// An assignment (variable or output), without the trailing semicolon.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek().tok.clone() {
            Tok::KwOutput => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                if self.eat(&Tok::Dot) {
                    let ftok = self.bump();
                    let fname = match ftok.tok {
                        Tok::Ident(n) => n,
                        other => {
                            return Err(CompileError::new(
                                ftok.pos,
                                format!("expected field name, found `{other}`"),
                            ))
                        }
                    };
                    let field = Field::from_name(&fname).ok_or_else(|| {
                        CompileError::new(ftok.pos, format!("unknown record field `{fname}`"))
                    })?;
                    self.expect(Tok::Assign)?;
                    let value = self.expr()?;
                    Ok(Stmt {
                        pos,
                        kind: StmtKind::OutputField {
                            index,
                            field,
                            value,
                        },
                    })
                } else {
                    self.expect(Tok::Assign)?;
                    let record = self.expr()?;
                    Ok(Stmt {
                        pos,
                        kind: StmtKind::OutputRecord { index, record },
                    })
                }
            }
            Tok::Ident(name) => {
                self.bump();
                // Compound assignments desugar to `x = x <op> e`.
                let compound = match self.peek().tok {
                    Tok::PlusAssign => Some(BinOp::Add),
                    Tok::MinusAssign => Some(BinOp::Sub),
                    Tok::StarAssign => Some(BinOp::Mul),
                    Tok::SlashAssign => Some(BinOp::Div),
                    Tok::PercentAssign => Some(BinOp::Rem),
                    _ => None,
                };
                if let Some(op) = compound {
                    self.bump();
                    let rhs = self.expr()?;
                    let lhs = Expr {
                        pos,
                        kind: ExprKind::Var(name.clone()),
                    };
                    return Ok(Stmt {
                        pos,
                        kind: StmtKind::Assign {
                            name,
                            value: Expr {
                                pos,
                                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                            },
                        },
                    });
                }
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                Ok(Stmt {
                    pos,
                    kind: StmtKind::Assign { name, value },
                })
            }
            other => Err(CompileError::new(
                pos,
                format!("expected a statement, found `{other}`"),
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then = self.block_or_stmt()?;
        let else_ = if self.eat(&Tok::KwElse) {
            if self.at(&Tok::KwIf) {
                vec![self.if_stmt()?]
            } else {
                self.block_or_stmt()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt {
            pos,
            kind: StmtKind::If { cond, then, else_ },
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        let init = if self.at(&Tok::Semi) {
            None
        } else if self.at(&Tok::KwInt) || self.at(&Tok::KwDouble) {
            Some(Box::new(self.decl()?))
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(Tok::Semi)?;
        let cond = if self.at(&Tok::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::Semi)?;
        let step = if self.at(&Tok::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(Tok::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt {
            pos,
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.expect(Tok::KwWhile)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt {
            pos,
            kind: StmtKind::While { cond, body },
        })
    }

    // --- expressions, precedence climbing ---

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.at(&Tok::OrOr) {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.eq_expr()?;
        while self.at(&Tok::AndAnd) {
            let pos = self.pos();
            self.bump();
            let rhs = self.eq_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr {
                pos,
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr {
                pos,
                kind: ExprKind::Unary(UnOp::Neg, Box::new(inner)),
            });
        }
        if self.eat(&Tok::Not) {
            let inner = self.unary_expr()?;
            return Ok(Expr {
                pos,
                kind: ExprKind::Unary(UnOp::Not, Box::new(inner)),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    pos,
                    kind: ExprKind::IntLit(v),
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr {
                    pos,
                    kind: ExprKind::FloatLit(v),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr {
                    pos,
                    kind: ExprKind::Var(name),
                })
            }
            Tok::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::KwInput => {
                self.bump();
                self.expect(Tok::LBracket)?;
                let index = self.expr()?;
                self.expect(Tok::RBracket)?;
                if self.eat(&Tok::Dot) {
                    let ftok = self.bump();
                    let fname = match ftok.tok {
                        Tok::Ident(n) => n,
                        other => {
                            return Err(CompileError::new(
                                ftok.pos,
                                format!("expected field name, found `{other}`"),
                            ))
                        }
                    };
                    let field = Field::from_name(&fname).ok_or_else(|| {
                        CompileError::new(ftok.pos, format!("unknown record field `{fname}`"))
                    })?;
                    Ok(Expr {
                        pos,
                        kind: ExprKind::InputField(Box::new(index), field),
                    })
                } else {
                    Ok(Expr {
                        pos,
                        kind: ExprKind::InputRecord(Box::new(index)),
                    })
                }
            }
            other => Err(CompileError::new(
                pos,
                format!("expected an expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_braced_program() {
        let p = parse("{ int i = 0; i = i + 1; }").unwrap();
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.body[0].kind, StmtKind::Decl { ty: Ty::Int, .. }));
        assert!(matches!(p.body[1].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn parses_bare_statement_list() {
        let p = parse("int i = 0; i = 2;").unwrap();
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn leading_block_followed_by_more() {
        let p = parse("{ int i = 0; } int j = 1;").unwrap();
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.body[0].kind, StmtKind::Block(_)));
    }

    #[test]
    fn precedence_mul_before_add_before_cmp_before_and() {
        let p = parse("int x = 0; if (1 + 2 * 3 > 6 && 1 < 2) x = 1;").unwrap();
        let StmtKind::If { cond, .. } = &p.body[1].kind else {
            panic!("expected if");
        };
        // top is &&
        let ExprKind::Binary(BinOp::And, l, _r) = &cond.kind else {
            panic!("expected &&, got {cond:?}");
        };
        // left of && is >
        let ExprKind::Binary(BinOp::Gt, gl, _) = &l.kind else {
            panic!("expected >");
        };
        // left of > is 1 + (2*3)
        let ExprKind::Binary(BinOp::Add, _, addr) = &gl.kind else {
            panic!("expected +");
        };
        assert!(matches!(addr.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_input_field_and_record() {
        let p = parse("{ if (input[0].value > 2) { output[0] = input[0]; } }").unwrap();
        let StmtKind::If { cond, then, .. } = &p.body[0].kind else {
            panic!("expected if");
        };
        let ExprKind::Binary(BinOp::Gt, l, _) = &cond.kind else {
            panic!("expected >");
        };
        assert!(matches!(l.kind, ExprKind::InputField(_, Field::Value)));
        assert!(matches!(then[0].kind, StmtKind::OutputRecord { .. }));
    }

    #[test]
    fn parses_output_field_write() {
        let p = parse("{ output[0] = input[1]; output[0].value = 3.5; }").unwrap();
        assert!(matches!(
            p.body[1].kind,
            StmtKind::OutputField {
                field: Field::Value,
                ..
            }
        ));
    }

    #[test]
    fn parses_for_loop_with_all_clauses() {
        let p = parse("{ int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } }").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &p.body[1].kind
        else {
            panic!("expected for");
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn parses_for_loop_with_empty_clauses() {
        let p = parse("{ for (;;) { break; } }").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &p.body[0].kind
        else {
            panic!("expected for");
        };
        assert!(init.is_none());
        assert!(cond.is_none());
        assert!(step.is_none());
    }

    #[test]
    fn parses_while_and_flow_keywords() {
        let p = parse("{ int i = 0; while (i < 5) { i = i + 1; if (i == 3) continue; if (i == 4) break; } return i; }")
            .unwrap();
        assert!(matches!(p.body[1].kind, StmtKind::While { .. }));
        assert!(matches!(p.body[2].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn else_if_chains() {
        let p =
            parse("{ int x = 0; if (x > 1) x = 1; else if (x > 0) x = 2; else x = 3; }").unwrap();
        let StmtKind::If { else_, .. } = &p.body[1].kind else {
            panic!()
        };
        assert_eq!(else_.len(), 1);
        assert!(matches!(else_[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("int x = - - 3; int y = !1;").unwrap();
        let StmtKind::Decl { init: Some(e), .. } = &p.body[0].kind else {
            panic!()
        };
        let ExprKind::Unary(UnOp::Neg, inner) = &e.kind else {
            panic!()
        };
        assert!(matches!(inner.kind, ExprKind::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("{ int i = 0 i = 1; }").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{}", err.message);
    }

    #[test]
    fn error_on_bad_field() {
        let err = parse("{ int x = input[0].bogus; }").unwrap_err();
        assert!(err.message.contains("unknown record field"));
    }

    #[test]
    fn error_on_garbage_statement() {
        let err = parse("{ 42; }").unwrap_err();
        assert!(err.message.contains("expected a statement"));
    }

    #[test]
    fn compound_assignments_desugar() {
        let p = parse("{ int x = 1; x += 2; x -= 1; x *= 3; x /= 2; x %= 2; }").unwrap();
        let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem];
        for (stmt, expect_op) in p.body[1..].iter().zip(ops) {
            let StmtKind::Assign { name, value } = &stmt.kind else {
                panic!("expected assignment, got {stmt:?}");
            };
            assert_eq!(name, "x");
            let ExprKind::Binary(op, lhs, _) = &value.kind else {
                panic!("expected binary desugar");
            };
            assert_eq!(*op, expect_op);
            assert!(matches!(&lhs.kind, ExprKind::Var(n) if n == "x"));
        }
    }

    #[test]
    fn compound_assignment_in_for_step() {
        let p = parse("{ int s = 0; for (int i = 0; i < 10; i += 2) { s += i; } }").unwrap();
        assert!(matches!(p.body[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn parses_fig3_filter_shape() {
        let src = r#"
{
    int i = 0;
    if(input[0].value > 2){
        output[i] = input[0];
        i = i + 1;
    }
    if(input[1].value > 10000 && input[2].value < 50e6){
        output[i] = input[1];
        i = i + 1;
        output[i] = input[2];
        i = i + 1;
    }
    if(input[3].value > input[3].last_value_sent){
        output[i] = input[3];
        i = i + 1;
    }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.body.len(), 4); // decl + 3 ifs
    }
}
