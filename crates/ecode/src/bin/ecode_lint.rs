//! `ecode-lint` — run the static filter verifier from the command line.
//!
//! Reads an E-code filter (from a file or stdin), lints it, certifies
//! its worst-case cost, and prints the admission verdict a d-mon would
//! reach at deploy time.
//!
//! ```text
//! ecode-lint [--env NAME,NAME,...] [--budget N] [FILE|-]
//! ```
//!
//! With no `--env` the standard d-proc metric environment is assumed
//! (`LOADAVG,FREEMEM,DISKUSAGE,NET_AVAIL,CACHE_MISS`). Exit status: 0
//! when the filter would be admitted, 1 when the verifier rejects it,
//! 2 on compile errors or bad usage.

use std::io::Read;
use std::process::ExitCode;

use ecode::{vm, CostBound, EnvSpec, Filter, MetricSet};

const USAGE: &str = "usage: ecode-lint [--env NAME,NAME,...] [--budget N] [FILE|-]";

/// Metric names every d-mon exports by default (mirrors
/// `dproc::modules::standard_modules`).
const STANDARD_ENV: &str = "LOADAVG,FREEMEM,DISKUSAGE,NET_AVAIL,CACHE_MISS";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(admitted) => {
            if admitted {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("ecode-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut env_names = STANDARD_ENV.to_string();
    let mut budget = vm::DEFAULT_BUDGET;
    let mut input: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--env" => {
                env_names = it
                    .next()
                    .ok_or_else(|| format!("--env needs a value\n{USAGE}"))?;
            }
            "--budget" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--budget needs a value\n{USAGE}"))?;
                budget = v
                    .parse()
                    .map_err(|_| format!("bad budget {v:?}\n{USAGE}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ if input.is_none() => input = Some(arg),
            _ => return Err(format!("unexpected argument {arg:?}\n{USAGE}")),
        }
    }

    let source = match input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
    };

    let env = EnvSpec::new(
        env_names
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty()),
    );
    let filter = Filter::compile_with_budget(&source, &env, budget)
        .map_err(|e| format!("compile error: {e}"))?;
    print!("{}", report(&filter, &env, budget));
    Ok(filter.admission_error().is_none())
}

/// The full human-readable report for a compiled filter.
fn report(filter: &Filter, env: &EnvSpec, budget: u64) -> String {
    use std::fmt::Write;

    let cert = filter.cert();
    let mut out = String::new();
    for d in &cert.diagnostics {
        writeln!(out, "{d}").unwrap();
    }

    match &cert.cost {
        CostBound::Bounded(n) => {
            writeln!(out, "cost: at most {n} VM instructions (budget {budget})").unwrap();
        }
        CostBound::Unbounded { pos, reason } => {
            writeln!(out, "cost: unbounded (at {pos}): {reason}").unwrap();
        }
    }

    match &cert.reads {
        MetricSet::All => writeln!(out, "reads: all metrics (dynamic input index)").unwrap(),
        MetricSet::Fixed(set) if set.is_empty() => writeln!(out, "reads: nothing").unwrap(),
        MetricSet::Fixed(set) => {
            let names: Vec<String> = set
                .iter()
                .map(|&i| {
                    env.name_of(i)
                        .map_or_else(|| format!("#{i}"), str::to_string)
                })
                .collect();
            writeln!(out, "reads: {}", names.join(", ")).unwrap();
        }
    }
    writeln!(out, "emits: {}", if cert.emits { "yes" } else { "no" }).unwrap();

    match filter.admission_error() {
        None => writeln!(out, "verdict: admitted").unwrap(),
        Some(reason) => writeln!(out, "verdict: rejected — {reason}").unwrap(),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_for_admissible_filter() {
        let env = EnvSpec::new(["LOADAVG"]);
        let f = Filter::compile("{ output[0] = input[LOADAVG]; }", &env).unwrap();
        let r = report(&f, &env, vm::DEFAULT_BUDGET);
        assert!(r.contains("cost: at most"));
        assert!(r.contains("reads: LOADAVG"));
        assert!(r.contains("emits: yes"));
        assert!(r.contains("verdict: admitted"));
    }

    #[test]
    fn report_for_unbounded_filter() {
        let env = EnvSpec::new(["LOADAVG"]);
        let f = Filter::compile("{ while (1) { } }", &env).unwrap();
        let r = report(&f, &env, vm::DEFAULT_BUDGET);
        assert!(r.contains("cost: unbounded"));
        assert!(r.contains("verdict: rejected"));
    }
}
