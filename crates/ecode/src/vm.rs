//! The stack virtual machine executing compiled filters.
//!
//! Values are dynamically typed (`Int`/`Float`) with C-style promotion;
//! the semantic pass guarantees records never reach arithmetic. Every
//! instruction decrements a budget — a kernel executing user-supplied
//! filter code needs exactly this guard against runaway loops.

use crate::ast::Field;
use crate::bytecode::{Chunk, Op};
use crate::error::RuntimeError;
use crate::filter::{FilterOutput, MetricRecord};

/// Default per-execution instruction budget.
pub const DEFAULT_BUDGET: u64 = 100_000;

/// Maximum addressable output slot.
pub const MAX_OUTPUT_SLOTS: usize = 256;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Value {
    I(i64),
    F(f64),
}

impl Value {
    fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    fn as_index(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }
}

/// Reusable per-thread execution buffers — the interpreter runs once
/// per monitoring sample, so per-execution allocations would dominate
/// the event path (and it stays the fallback engine and differential
/// oracle for the compiling backend in [`crate::compile`]).
struct VmScratch {
    stack: Vec<Value>,
    locals: Vec<Value>,
}

thread_local! {
    static VM_SCRATCH: std::cell::RefCell<VmScratch> = const {
        std::cell::RefCell::new(VmScratch {
            stack: Vec::new(),
            locals: Vec::new(),
        })
    };
}

/// Execute `chunk` against `inputs` with the given instruction budget.
pub fn run(
    chunk: &Chunk,
    inputs: &[MetricRecord],
    budget: u64,
) -> Result<FilterOutput, RuntimeError> {
    VM_SCRATCH.with(|s| {
        let mut scratch = s.borrow_mut();
        let VmScratch { stack, locals } = &mut *scratch;
        stack.clear();
        locals.clear();
        locals.resize(chunk.n_locals as usize, Value::I(0));
        let mut outputs = crate::filter::take_slot_buf();
        match run_inner(chunk, inputs, budget, stack, locals, &mut outputs) {
            Ok((accept, executed)) => Ok(FilterOutput::new(outputs, accept, executed)),
            Err(e) => {
                crate::filter::put_slot_buf(outputs);
                Err(e)
            }
        }
    })
}

fn run_inner(
    chunk: &Chunk,
    inputs: &[MetricRecord],
    budget: u64,
    stack: &mut Vec<Value>,
    locals: &mut [Value],
    outputs: &mut Vec<Option<MetricRecord>>,
) -> Result<(bool, u64), RuntimeError> {
    let mut pc: usize = 0;
    let mut remaining = budget;
    let mut executed: u64 = 0;

    macro_rules! pop {
        () => {
            stack
                .pop()
                .ok_or(RuntimeError::Internal("stack underflow"))?
        };
    }

    macro_rules! arith {
        ($int:expr, $float:expr) => {{
            let r = pop!();
            let l = pop!();
            let v = match (l, r) {
                (Value::I(a), Value::I(b)) => $int(a, b)?,
                (a, b) => Value::F($float(a.as_f64(), b.as_f64())),
            };
            stack.push(v);
        }};
    }

    macro_rules! cmp {
        ($op:tt) => {{
            let r = pop!();
            let l = pop!();
            let res = match (l, r) {
                (Value::I(a), Value::I(b)) => a $op b,
                (a, b) => a.as_f64() $op b.as_f64(),
            };
            stack.push(Value::I(res as i64));
        }};
    }

    let input_at = |idx: i64| -> Result<&MetricRecord, RuntimeError> {
        if idx < 0 || idx as usize >= inputs.len() {
            return Err(RuntimeError::InputIndexOutOfRange {
                index: idx,
                len: inputs.len(),
            });
        }
        Ok(&inputs[idx as usize])
    };

    while pc < chunk.ops.len() {
        if remaining == 0 {
            return Err(RuntimeError::BudgetExhausted { budget });
        }
        remaining -= 1;
        executed += 1;
        let op = chunk.ops[pc];
        pc += 1;
        match op {
            Op::ConstI(v) => stack.push(Value::I(v)),
            Op::ConstF(v) => stack.push(Value::F(v)),
            Op::Load(slot) => stack.push(locals[slot as usize]),
            Op::Store(slot) => {
                let v = pop!();
                locals[slot as usize] = v;
            }
            Op::StoreTrunc(slot) => {
                let v = pop!();
                locals[slot as usize] = Value::I(v.as_f64().trunc() as i64);
            }
            Op::InputField(field) => {
                let idx = pop!().as_index();
                let rec = input_at(idx)?;
                let v = match field {
                    Field::Value => Value::F(rec.value),
                    Field::LastValueSent => Value::F(rec.last_value_sent),
                    Field::Timestamp => Value::F(rec.timestamp),
                    Field::Id => Value::I(rec.id as i64),
                };
                stack.push(v);
            }
            Op::EmitRecord => {
                let in_idx = pop!().as_index();
                let out_idx = pop!().as_index();
                if out_idx < 0 || out_idx as usize >= MAX_OUTPUT_SLOTS {
                    return Err(RuntimeError::OutputIndexOutOfRange { index: out_idx });
                }
                let rec = *input_at(in_idx)?;
                let slot = out_idx as usize;
                if outputs.len() <= slot {
                    outputs.resize(slot + 1, None);
                }
                outputs[slot] = Some(rec);
            }
            Op::EmitField(field) => {
                let value = pop!();
                let out_idx = pop!().as_index();
                if out_idx < 0 || out_idx as usize >= MAX_OUTPUT_SLOTS {
                    return Err(RuntimeError::OutputIndexOutOfRange { index: out_idx });
                }
                let slot = out_idx as usize;
                let rec = outputs
                    .get_mut(slot)
                    .and_then(|r| r.as_mut())
                    .ok_or(RuntimeError::OutputSlotEmpty { index: out_idx })?;
                match field {
                    Field::Value => rec.value = value.as_f64(),
                    Field::LastValueSent => rec.last_value_sent = value.as_f64(),
                    Field::Timestamp => rec.timestamp = value.as_f64(),
                    Field::Id => rec.id = value.as_index() as u32,
                }
            }
            Op::Add => arith!(|a: i64, b: i64| Ok(Value::I(a.wrapping_add(b))), |a, b| a
                + b),
            Op::Sub => arith!(|a: i64, b: i64| Ok(Value::I(a.wrapping_sub(b))), |a, b| a
                - b),
            Op::Mul => arith!(|a: i64, b: i64| Ok(Value::I(a.wrapping_mul(b))), |a, b| a
                * b),
            Op::Div => arith!(
                |a: i64, b: i64| {
                    if b == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(Value::I(a.wrapping_div(b)))
                    }
                },
                |a, b| a / b
            ),
            Op::Rem => arith!(
                |a: i64, b: i64| {
                    if b == 0 {
                        Err(RuntimeError::DivisionByZero)
                    } else {
                        Ok(Value::I(a.wrapping_rem(b)))
                    }
                },
                |a: f64, b: f64| a % b
            ),
            Op::CmpEq => cmp!(==),
            Op::CmpNe => cmp!(!=),
            Op::CmpLt => cmp!(<),
            Op::CmpLe => cmp!(<=),
            Op::CmpGt => cmp!(>),
            Op::CmpGe => cmp!(>=),
            Op::Neg => {
                let v = pop!();
                stack.push(match v {
                    Value::I(a) => Value::I(a.wrapping_neg()),
                    Value::F(a) => Value::F(-a),
                });
            }
            Op::Not => {
                let v = pop!();
                stack.push(Value::I(!v.truthy() as i64));
            }
            Op::Jump(t) => pc = t as usize,
            Op::JumpIfFalse(t) => {
                let v = pop!();
                if !v.truthy() {
                    pc = t as usize;
                }
            }
            Op::JumpIfFalsePeek(t) => {
                let v = *stack
                    .last()
                    .ok_or(RuntimeError::Internal("peek underflow"))?;
                if !v.truthy() {
                    pc = t as usize;
                }
            }
            Op::JumpIfTruePeek(t) => {
                let v = *stack
                    .last()
                    .ok_or(RuntimeError::Internal("peek underflow"))?;
                if v.truthy() {
                    pc = t as usize;
                }
            }
            Op::Pop => {
                pop!();
            }
            Op::Truthy => {
                let v = pop!();
                stack.push(Value::I(v.truthy() as i64));
            }
            Op::ReturnValue => {
                let v = pop!();
                return Ok((v.truthy(), executed));
            }
            Op::ReturnVoid => {
                return Ok((true, executed));
            }
        }
    }
    // Fell off the end without an explicit return: accept.
    Ok((true, executed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EnvSpec;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn exec(src: &str, inputs: &[MetricRecord]) -> Result<FilterOutput, RuntimeError> {
        let env = EnvSpec::new(["A", "B", "C"]);
        let chunk = crate::bytecode::compile(&analyze(&parse(src).unwrap(), &env).unwrap());
        run(&chunk, inputs, DEFAULT_BUDGET)
    }

    fn recs() -> Vec<MetricRecord> {
        vec![
            MetricRecord::new(0, 5.0),
            MetricRecord::new(1, 10.0),
            MetricRecord::new(2, 0.5),
        ]
    }

    #[test]
    fn passthrough_filter_copies_records() {
        let out = exec("{ output[0] = input[A]; output[1] = input[B]; }", &recs()).unwrap();
        let r = out.records();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].value, 5.0);
        assert_eq!(r[1].value, 10.0);
        assert!(out.accept());
    }

    #[test]
    fn conditional_suppression() {
        let out = exec(
            "{ if (input[A].value > 100) { output[0] = input[A]; } }",
            &recs(),
        )
        .unwrap();
        assert!(out.records().is_empty());
    }

    #[test]
    fn for_loop_copies_all_inputs() {
        let out = exec(
            "{ for (int i = 0; i < 3; i = i + 1) { output[i] = input[i]; } }",
            &recs(),
        )
        .unwrap();
        assert_eq!(out.records().len(), 3);
        assert_eq!(out.records()[2].value, 0.5);
    }

    #[test]
    fn while_with_break_and_continue() {
        // Copy only even-indexed inputs.
        let out = exec(
            "{ int i = 0; while (1) { if (i >= 3) break; if (i % 2 == 1) { i = i + 1; continue; } output[i] = input[i]; i = i + 1; } }",
            &recs(),
        )
        .unwrap();
        let r = out.records();
        assert_eq!(r.len(), 2, "slot 1 stays empty and is skipped");
        assert_eq!(r[0].id, 0);
        assert_eq!(r[1].id, 2);
    }

    #[test]
    fn output_field_rewrite_downsamples() {
        let out = exec(
            "{ output[0] = input[B]; output[0].value = input[B].value / 2; }",
            &recs(),
        )
        .unwrap();
        assert_eq!(out.records()[0].value, 5.0);
        assert_eq!(out.records()[0].id, 1, "other fields preserved");
    }

    #[test]
    fn return_zero_suppresses() {
        let out = exec("{ output[0] = input[A]; return 0; }", &recs()).unwrap();
        assert!(!out.accept());
        assert!(out.records_if_accepted().is_empty());
        let out = exec("{ output[0] = input[A]; return 1; }", &recs()).unwrap();
        assert!(out.accept());
        assert_eq!(out.records_if_accepted().len(), 1);
    }

    #[test]
    fn integer_division_truncates_float_divides() {
        let out = exec(
            "{ int i = 7 / 2; double d = 7.0 / 2.0; output[0] = input[A]; output[0].value = i; output[0].last_value_sent = d; }",
            &recs(),
        )
        .unwrap();
        assert_eq!(out.records()[0].value, 3.0);
        assert_eq!(out.records()[0].last_value_sent, 3.5);
    }

    #[test]
    fn division_by_zero_is_runtime_error() {
        let err = exec("{ int x = 1 / 0; }", &recs()).unwrap_err();
        assert_eq!(err, RuntimeError::DivisionByZero);
        let err = exec("{ int x = 1 % 0; }", &recs()).unwrap_err();
        assert_eq!(err, RuntimeError::DivisionByZero);
    }

    #[test]
    fn short_circuit_and_skips_rhs() {
        // If && did not short-circuit, input[99] would be an index error.
        let out = exec(
            "{ if (0 && input[99].value > 0) { output[0] = input[A]; } }",
            &recs(),
        );
        assert!(out.unwrap().records().is_empty());
        let out = exec(
            "{ if (1 || input[99].value > 0) { output[0] = input[A]; } }",
            &recs(),
        );
        assert_eq!(out.unwrap().records().len(), 1);
    }

    #[test]
    fn input_index_out_of_range() {
        let err = exec("{ double v = input[7].value; }", &recs()).unwrap_err();
        assert_eq!(err, RuntimeError::InputIndexOutOfRange { index: 7, len: 3 });
        let err = exec("{ double v = input[-1].value; }", &recs()).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::InputIndexOutOfRange { index: -1, .. }
        ));
    }

    #[test]
    fn output_index_bounds() {
        let err = exec("{ output[-1] = input[A]; }", &recs()).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::OutputIndexOutOfRange { index: -1 }
        ));
        let err = exec("{ output[10000] = input[A]; }", &recs()).unwrap_err();
        assert!(matches!(err, RuntimeError::OutputIndexOutOfRange { .. }));
    }

    #[test]
    fn field_write_to_empty_slot_errors() {
        let err = exec("{ output[0].value = 1; }", &recs()).unwrap_err();
        assert_eq!(err, RuntimeError::OutputSlotEmpty { index: 0 });
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let env = EnvSpec::new(["A"]);
        let chunk =
            crate::bytecode::compile(&analyze(&parse("{ while (1) { } }").unwrap(), &env).unwrap());
        let err = run(&chunk, &[MetricRecord::new(0, 1.0)], 1000).unwrap_err();
        assert_eq!(err, RuntimeError::BudgetExhausted { budget: 1000 });
    }

    #[test]
    fn negation_and_not() {
        let out = exec(
            "{ int a = -5; int b = !0; int c = !3; output[0] = input[A]; output[0].value = a; output[0].last_value_sent = b + c; }",
            &recs(),
        )
        .unwrap();
        assert_eq!(out.records()[0].value, -5.0);
        assert_eq!(out.records()[0].last_value_sent, 1.0);
    }

    #[test]
    fn truncation_on_int_store() {
        let out = exec(
            "{ int x = 2.9; output[0] = input[A]; output[0].value = x; }",
            &recs(),
        )
        .unwrap();
        assert_eq!(out.records()[0].value, 2.0);
    }

    #[test]
    fn executed_instruction_count_reported() {
        let out = exec("{ int x = 1; }", &recs()).unwrap();
        assert_eq!(out.instructions(), 3); // ConstI, Store, ReturnVoid
    }

    #[test]
    fn timestamp_and_id_fields_readable() {
        let mut r = recs();
        r[0].timestamp = 12.5;
        let out = exec(
            "{ output[0] = input[A]; output[0].value = input[A].timestamp + input[B].id; }",
            &r,
        )
        .unwrap();
        assert_eq!(out.records()[0].value, 13.5);
    }
}
