//! Hand-written lexer for E-code.

use crate::error::CompileError;
use crate::token::{Pos, Tok, Token};

/// Tokenize `src`, producing a token stream ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = if c.is_ascii_digit() {
                self.number(pos)?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else {
                self.symbol(pos)?
            };
            out.push(Token { tok, pos });
        }
    }

    /// Skip whitespace and both comment styles (`//` and `/* */`).
    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(start, "unterminated comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, CompileError> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // Fractional part — but not `.field` access on an int literal
        // (E-code has no methods on ints, so `1.value` is not a thing; a
        // dot followed by a digit is fractional).
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        // Exponent: `50e6`, `1.5E-3`
        if matches!(self.peek(), Some('e') | Some('E')) {
            let has_sign = matches!(self.peek2(), Some('+') | Some('-'));
            let digit_at = if has_sign { self.i + 2 } else { self.i + 1 };
            if matches!(self.chars.get(digit_at), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if has_sign {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| CompileError::new(pos, format!("bad float literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| CompileError::new(pos, format!("integer literal `{text}` overflows")))
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        match text.as_str() {
            "int" => Tok::KwInt,
            "double" => Tok::KwDouble,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "for" => Tok::KwFor,
            "while" => Tok::KwWhile,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "input" => Tok::KwInput,
            "output" => Tok::KwOutput,
            _ => Tok::Ident(text),
        }
    }

    fn symbol(&mut self, pos: Pos) -> Result<Tok, CompileError> {
        let c = self.bump().expect("symbol() called at eof");
        let two = |lexer: &mut Lexer<'a>, tok: Tok| {
            lexer.bump();
            Ok(tok)
        };
        match c {
            '(' => Ok(Tok::LParen),
            ')' => Ok(Tok::RParen),
            '{' => Ok(Tok::LBrace),
            '}' => Ok(Tok::RBrace),
            '[' => Ok(Tok::LBracket),
            ']' => Ok(Tok::RBracket),
            ';' => Ok(Tok::Semi),
            ',' => Ok(Tok::Comma),
            '.' => Ok(Tok::Dot),
            '+' if self.peek() == Some('=') => two(self, Tok::PlusAssign),
            '+' => Ok(Tok::Plus),
            '-' if self.peek() == Some('=') => two(self, Tok::MinusAssign),
            '-' => Ok(Tok::Minus),
            '*' if self.peek() == Some('=') => two(self, Tok::StarAssign),
            '*' => Ok(Tok::Star),
            '/' if self.peek() == Some('=') => two(self, Tok::SlashAssign),
            '/' => Ok(Tok::Slash),
            '%' if self.peek() == Some('=') => two(self, Tok::PercentAssign),
            '%' => Ok(Tok::Percent),
            '=' if self.peek() == Some('=') => two(self, Tok::Eq),
            '=' => Ok(Tok::Assign),
            '!' if self.peek() == Some('=') => two(self, Tok::Ne),
            '!' => Ok(Tok::Not),
            '<' if self.peek() == Some('=') => two(self, Tok::Le),
            '<' => Ok(Tok::Lt),
            '>' if self.peek() == Some('=') => two(self, Tok::Ge),
            '>' => Ok(Tok::Gt),
            '&' if self.peek() == Some('&') => two(self, Tok::AndAnd),
            '|' if self.peek() == Some('|') => two(self, Tok::OrOr),
            other => Err(CompileError::new(
                pos,
                format!("unexpected character `{other}`"),
            )),
        }
    }
}

// Keep a reference to the raw source for future diagnostics without
// triggering dead-code warnings.
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lexer(at {}, {} bytes)", self.pos(), self.src.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_fig3_fragment() {
        let t = toks("if(input[LOADAVG].value > 2){ output[i] = input[LOADAVG]; }");
        assert_eq!(
            t,
            vec![
                Tok::KwIf,
                Tok::LParen,
                Tok::KwInput,
                Tok::LBracket,
                Tok::Ident("LOADAVG".into()),
                Tok::RBracket,
                Tok::Dot,
                Tok::Ident("value".into()),
                Tok::Gt,
                Tok::Int(2),
                Tok::RParen,
                Tok::LBrace,
                Tok::KwOutput,
                Tok::LBracket,
                Tok::Ident("i".into()),
                Tok::RBracket,
                Tok::Assign,
                Tok::KwInput,
                Tok::LBracket,
                Tok::Ident("LOADAVG".into()),
                Tok::RBracket,
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("50e6")[0], Tok::Float(50e6));
        assert_eq!(toks("1.5E-3")[0], Tok::Float(1.5e-3));
        assert_eq!(toks("2e+2")[0], Tok::Float(200.0));
        // `e` not followed by digits is separate ident
        assert_eq!(toks("2e")[..2], [Tok::Int(2), Tok::Ident("e".into())]);
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(toks("3.25")[0], Tok::Float(3.25));
        assert_eq!(toks("42")[0], Tok::Int(42));
        // `1.` without digits is int then dot (field access style)
        assert_eq!(
            toks("1.x")[..3],
            [Tok::Int(1), Tok::Dot, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || = < > !")[..10],
            [
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Assign,
                Tok::Lt,
                Tok::Gt,
                Tok::Not
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("1 // line comment\n /* block\n comment */ 2");
        assert_eq!(t, vec![Tok::Int(1), Tok::Int(2), Tok::Eof]);
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = lex("/* never ends").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_char_errors_with_pos() {
        let err = lex("int x = 1;\n@").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.col, 1);
        assert!(err.message.contains('@'));
    }

    #[test]
    fn positions_track_lines_and_cols() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos::new(1, 1));
        assert_eq!(tokens[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn keywords_vs_identifiers() {
        let t = toks("if iffy int integer input inputs");
        assert_eq!(
            t[..6],
            [
                Tok::KwIf,
                Tok::Ident("iffy".into()),
                Tok::KwInt,
                Tok::Ident("integer".into()),
                Tok::KwInput,
                Tok::Ident("inputs".into())
            ]
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("overflows"));
    }
}
