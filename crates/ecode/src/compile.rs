//! The compiling backend: certified filters become specialized closures.
//!
//! The stack VM in [`crate::vm`] stays the semantic reference — this
//! module lowers a [`Chunk`] into a register-based linear form (see
//! [`crate::regalloc`] for the depth analysis that turns stack slots
//! into registers), fuses adjacent instructions into superinstructions
//! (compare-branch, field-load-arith), and executes the result over
//! untagged `u64` registers when type inference proves every value
//! monomorphic. Deployment wraps the code in a closure with the budget
//! folded in, so the hot path is `closure(inputs)` with zero setup.
//!
//! # Why this is bit-identical to the interpreter
//!
//! * **Register mapping.** The bytecode compiler only emits code whose
//!   stack depth is consistent at every join, so stack slot `i` *is*
//!   register `n_locals + i`; the lowering is one register instruction
//!   per stack instruction with the same operand order, and anything the
//!   depth analysis cannot prove falls back to the interpreter.
//! * **Budget and instruction counts.** Every superinstruction carries
//!   the summed cost of its constituents and the executor charges it
//!   atomically (`remaining < cost` ⇒ `BudgetExhausted`). Fused
//!   sequences are built only from constituents that cannot raise a
//!   runtime error (constant input indices are proven in range against
//!   the environment arity the cert's read set was checked against, and
//!   int division by a constant zero is never fused), so when the VM
//!   would exhaust its budget partway through the sequence no other
//!   error could have fired first — the only observable difference,
//!   the partial `executed` count, dies with the error (`FilterOutput`
//!   reports counts only on success, where both engines executed the
//!   identical instruction multiset).
//! * **Value representation.** Type inference tracks the VM's dynamic
//!   tags (`double y = 2;` holds an *int* and `y / 2` is integer
//!   division). Only programs where every read has a single possible
//!   tag compile; each instruction then bakes in its operand types, so
//!   raw `u64` registers (`i64` bits or `f64` bits) reproduce tagged
//!   semantics exactly, including wrapping int arithmetic, C promotion,
//!   saturating float→int casts, and NaN comparisons.
//!
//! Uncertified filters (unbounded cost), polymorphic programs, and
//! inconsistent stacks all return `None` from [`compile_filter`] and run
//! on the interpreter; the differential suite pins both engines to the
//! same outputs, errors, and instruction counts.

use std::cell::RefCell;

use crate::ast::Field;
use crate::bytecode::{Chunk, Op};
use crate::error::RuntimeError;
use crate::filter::{self, Filter, FilterOutput, MetricRecord};
use crate::regalloc::{self, Reg, RegMap, Ty2, TypeInfo};
use crate::vm::MAX_OUTPUT_SLOTS;

/// Resolved scalar type of a register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sc {
    /// Integer bits (`i64`).
    I,
    /// Float bits (`f64`).
    F,
}

/// Binary operator kind shared by plain and fused instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bo {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Bo {
    fn is_cmp(self) -> bool {
        matches!(self, Bo::Eq | Bo::Ne | Bo::Lt | Bo::Le | Bo::Gt | Bo::Ge)
    }

    fn from_op(op: Op) -> Option<Bo> {
        Some(match op {
            Op::Add => Bo::Add,
            Op::Sub => Bo::Sub,
            Op::Mul => Bo::Mul,
            Op::Div => Bo::Div,
            Op::Rem => Bo::Rem,
            Op::CmpEq => Bo::Eq,
            Op::CmpNe => Bo::Ne,
            Op::CmpLt => Bo::Lt,
            Op::CmpLe => Bo::Le,
            Op::CmpGt => Bo::Gt,
            Op::CmpGe => Bo::Ge,
            _ => return None,
        })
    }
}

/// A constant operand captured into a fused instruction.
#[derive(Debug, Clone, Copy)]
enum KConst {
    I(i64),
    F(f64),
}

/// One register instruction. Targets index the instruction vector.
#[derive(Debug, Clone, Copy)]
enum Inst {
    ConstI {
        dst: Reg,
        v: i64,
    },
    ConstF {
        dst: Reg,
        v: f64,
    },
    Mov {
        dst: Reg,
        src: Reg,
    },
    Trunc {
        dst: Reg,
        src: Reg,
        t: Sc,
    },
    /// Dynamic input index — error-capable, never fused.
    Field {
        dst: Reg,
        idx: Reg,
        t: Sc,
        field: Field,
    },
    /// Fused `ConstI`+`InputField` with the index proven in range.
    FieldC {
        dst: Reg,
        idx: u32,
        field: Field,
    },
    /// Fused field load + constant arithmetic/comparison.
    FieldArithC {
        dst: Reg,
        idx: u32,
        field: Field,
        op: Bo,
        rhs: KConst,
    },
    Bin {
        op: Bo,
        dst: Reg,
        a: Reg,
        b: Reg,
        a_t: Sc,
        b_t: Sc,
    },
    Neg {
        dst: Reg,
        src: Reg,
        t: Sc,
    },
    Not {
        dst: Reg,
        src: Reg,
        t: Sc,
    },
    Truthy {
        dst: Reg,
        src: Reg,
        t: Sc,
    },
    EmitRecord {
        out: Reg,
        out_t: Sc,
        inp: Reg,
        inp_t: Sc,
    },
    EmitField {
        out: Reg,
        out_t: Sc,
        val: Reg,
        val_t: Sc,
        field: Field,
    },
    Jump {
        target: u32,
    },
    /// `dead` marks a consuming test (`JumpIfFalse`) whose register is
    /// free afterwards — the precondition for compare-branch fusion.
    BranchFalse {
        src: Reg,
        t: Sc,
        target: u32,
        dead: bool,
    },
    BranchTrue {
        src: Reg,
        t: Sc,
        target: u32,
    },
    /// Fused comparison + consuming false-branch.
    CmpBranchFalse {
        op: Bo,
        a: Reg,
        b: Reg,
        a_t: Sc,
        b_t: Sc,
        target: u32,
    },
    /// Fused field load + constant comparison + consuming false-branch.
    FieldCmpCBranchFalse {
        idx: u32,
        field: Field,
        op: Bo,
        rhs: KConst,
        target: u32,
    },
    /// `Pop` (still costs one instruction) and unreachable slots.
    Nop,
    ReturnValue {
        src: Reg,
        t: Sc,
    },
    ReturnVoid,
}

/// An instruction plus the number of stack-VM instructions it stands
/// for — the unit of budget charging and `executed` accounting.
#[derive(Debug, Clone, Copy)]
struct ROp {
    inst: Inst,
    cost: u8,
}

/// A lowered, fused register program.
struct RegCode {
    ops: Vec<ROp>,
    n_regs: u16,
    /// Environment arity the constant-index range proofs assume.
    n_inputs: usize,
}

/// The specialized execution closure: inputs in, output or error out,
/// budget and code captured.
type ExecFn = dyn Fn(&[MetricRecord]) -> Result<FilterOutput, RuntimeError> + Send + Sync;

/// A filter specialized into a ready-to-run closure: budget folded in,
/// registers untagged, superinstructions fused.
pub struct CompiledFilter {
    exec: Box<ExecFn>,
    n_inputs: usize,
    n_ops: usize,
    n_fused: usize,
}

impl CompiledFilter {
    /// Execute against one input record per environment metric.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the environment size —
    /// the same contract as [`Filter::run`], and the guard that makes
    /// compile-time index range proofs sound.
    pub fn run(&self, inputs: &[MetricRecord]) -> Result<FilterOutput, RuntimeError> {
        assert_eq!(
            inputs.len(),
            self.n_inputs,
            "filter expects one record per environment metric"
        );
        (self.exec)(inputs)
    }

    /// Number of register instructions.
    pub fn instruction_count(&self) -> usize {
        self.n_ops
    }

    /// How many of them are fused superinstructions.
    pub fn superinstruction_count(&self) -> usize {
        self.n_fused
    }
}

impl std::fmt::Debug for CompiledFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledFilter")
            .field("n_inputs", &self.n_inputs)
            .field("n_ops", &self.n_ops)
            .field("n_fused", &self.n_fused)
            .finish()
    }
}

/// Compile an admitted filter into a specialized closure, or `None`
/// when it must stay on the interpreter (uncertified cost, polymorphic
/// values, or a stack shape the register mapping cannot prove).
pub fn compile_filter(f: &Filter) -> Option<CompiledFilter> {
    if f.admission_error().is_some() {
        return None;
    }
    compile_chunk(f.chunk(), f.env().len(), f.budget())
}

/// Compile a raw chunk (test/bench entry — [`compile_filter`] is the
/// deployment path, which also requires the admission cert).
pub fn compile_chunk(chunk: &Chunk, n_inputs: usize, budget: u64) -> Option<CompiledFilter> {
    let code = lower(chunk, n_inputs)?;
    let n_ops = code.ops.len();
    let n_fused = code.ops.iter().filter(|o| o.cost > 1).count();
    Some(CompiledFilter {
        exec: Box::new(move |inputs| run_code(&code, inputs, budget)),
        n_inputs,
        n_ops,
        n_fused,
    })
}

fn sc(t: Ty2) -> Option<Sc> {
    match t {
        Ty2::I => Some(Sc::I),
        Ty2::F => Some(Sc::F),
        Ty2::Bot | Ty2::Top => None,
    }
}

fn field_sc(field: Field) -> Sc {
    match field {
        Field::Id => Sc::I,
        _ => Sc::F,
    }
}

/// Lower a chunk to fused register code. `None` ⇒ interpreter fallback.
fn lower(chunk: &Chunk, n_inputs: usize) -> Option<RegCode> {
    let rm = regalloc::map_registers(chunk)?;
    let ti = regalloc::infer_types(chunk, &rm);
    let one = lower_one_to_one(chunk, &rm, &ti)?;
    let ops = fuse(chunk, one, n_inputs);
    Some(RegCode {
        ops,
        n_regs: rm.n_regs,
        n_inputs,
    })
}

/// Lower each stack op to exactly one register instruction (cost 1,
/// same indices, targets still in chunk coordinates). `None` when a
/// read operand is polymorphic (`Top`) or unwritten (`Bot`).
fn lower_one_to_one(chunk: &Chunk, rm: &RegMap, ti: &TypeInfo) -> Option<Vec<ROp>> {
    let nl = rm.n_locals;
    let mut out = Vec::with_capacity(chunk.ops.len());
    for (pc, &op) in chunk.ops.iter().enumerate() {
        let Some(d) = rm.depth_before[pc] else {
            // Unreachable: keep the slot so indices line up.
            out.push(ROp {
                inst: Inst::Nop,
                cost: 1,
            });
            continue;
        };
        let tys = &ti.before[pc];
        let top = |k: u16| nl + d - k; // k=1 → topmost operand register
        let rd = |r: Reg| sc(tys[r as usize]); // type of a read
        let inst = match op {
            Op::ConstI(v) => Inst::ConstI { dst: top(0), v },
            Op::ConstF(v) => Inst::ConstF { dst: top(0), v },
            Op::Load(s) => Inst::Mov {
                dst: top(0),
                src: s,
            },
            Op::Store(s) => Inst::Mov {
                dst: s,
                src: top(1),
            },
            Op::StoreTrunc(s) => Inst::Trunc {
                dst: s,
                src: top(1),
                t: rd(top(1))?,
            },
            Op::InputField(field) => Inst::Field {
                dst: top(1),
                idx: top(1),
                t: rd(top(1))?,
                field,
            },
            Op::EmitRecord => Inst::EmitRecord {
                out: top(2),
                out_t: rd(top(2))?,
                inp: top(1),
                inp_t: rd(top(1))?,
            },
            Op::EmitField(field) => Inst::EmitField {
                out: top(2),
                out_t: rd(top(2))?,
                val: top(1),
                val_t: rd(top(1))?,
                field,
            },
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::CmpEq
            | Op::CmpNe
            | Op::CmpLt
            | Op::CmpLe
            | Op::CmpGt
            | Op::CmpGe => Inst::Bin {
                op: Bo::from_op(op).expect("binary op"),
                dst: top(2),
                a: top(2),
                b: top(1),
                a_t: rd(top(2))?,
                b_t: rd(top(1))?,
            },
            Op::Neg => Inst::Neg {
                dst: top(1),
                src: top(1),
                t: rd(top(1))?,
            },
            Op::Not => Inst::Not {
                dst: top(1),
                src: top(1),
                t: rd(top(1))?,
            },
            Op::Truthy => Inst::Truthy {
                dst: top(1),
                src: top(1),
                t: rd(top(1))?,
            },
            Op::Jump(t) => Inst::Jump { target: t },
            Op::JumpIfFalse(t) => Inst::BranchFalse {
                src: top(1),
                t: rd(top(1))?,
                target: t,
                dead: true,
            },
            Op::JumpIfFalsePeek(t) => Inst::BranchFalse {
                src: top(1),
                t: rd(top(1))?,
                target: t,
                dead: false,
            },
            Op::JumpIfTruePeek(t) => Inst::BranchTrue {
                src: top(1),
                t: rd(top(1))?,
                target: t,
            },
            Op::Pop => Inst::Nop,
            Op::ReturnValue => Inst::ReturnValue {
                src: top(1),
                t: rd(top(1))?,
            },
            Op::ReturnVoid => Inst::ReturnVoid,
        };
        out.push(ROp { inst, cost: 1 });
    }
    Some(out)
}

/// Peephole fusion over the 1:1 lowering. Superinstructions never span
/// a jump target (so every target still begins an instruction) and are
/// built only from error-free constituents — see the module docs for
/// why that makes atomic budget charging exact.
fn fuse(chunk: &Chunk, one: Vec<ROp>, n_inputs: usize) -> Vec<ROp> {
    let n = one.len();
    let mut is_target = vec![false; n];
    for &op in &chunk.ops {
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfFalsePeek(t) | Op::JumpIfTruePeek(t)
                if (t as usize) < n =>
            {
                is_target[t as usize] = true;
            }
            _ => {}
        }
    }
    let in_range = |v: i64| v >= 0 && (v as u64) < n_inputs as u64;
    // Int division/remainder by a constant is safe to fuse only when
    // the constant is a nonzero int or either side is a float.
    let safe_arith = |op: Bo, a_t: Sc, rhs: KConst| match op {
        Bo::Div | Bo::Rem => !(a_t == Sc::I && matches!(rhs, KConst::I(0))),
        _ => true,
    };

    let mut fused: Vec<ROp> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        map[i] = fused.len() as u32;
        let free = |k: usize| i + k < n && !is_target[i + k];
        let mut consumed = 1;
        let mut rop = one[i];
        'fused: {
            // All patterns start with a constant in-range input index
            // feeding a field load, or a comparison feeding a branch.
            if let Inst::ConstI { dst: c, v } = one[i].inst {
                if in_range(v) && free(1) {
                    if let Inst::Field {
                        dst, idx, field, ..
                    } = one[i + 1].inst
                    {
                        if dst == c && idx == c {
                            let fidx = v as u32;
                            // Try the longer field-arith forms first.
                            if free(2) && free(3) {
                                let rhs = match one[i + 2].inst {
                                    Inst::ConstI { dst, v } if dst == c + 1 => Some(KConst::I(v)),
                                    Inst::ConstF { dst, v } if dst == c + 1 => Some(KConst::F(v)),
                                    _ => None,
                                };
                                if let (Some(rhs), Inst::Bin { op, dst, a, b, .. }) =
                                    (rhs, one[i + 3].inst)
                                {
                                    if dst == c
                                        && a == c
                                        && b == c + 1
                                        && safe_arith(op, field_sc(field), rhs)
                                    {
                                        if op.is_cmp() && free(4) {
                                            if let Inst::BranchFalse {
                                                src,
                                                target,
                                                dead: true,
                                                ..
                                            } = one[i + 4].inst
                                            {
                                                if src == c {
                                                    rop = ROp {
                                                        inst: Inst::FieldCmpCBranchFalse {
                                                            idx: fidx,
                                                            field,
                                                            op,
                                                            rhs,
                                                            target,
                                                        },
                                                        cost: 5,
                                                    };
                                                    consumed = 5;
                                                    break 'fused;
                                                }
                                            }
                                        }
                                        rop = ROp {
                                            inst: Inst::FieldArithC {
                                                dst: c,
                                                idx: fidx,
                                                field,
                                                op,
                                                rhs,
                                            },
                                            cost: 4,
                                        };
                                        consumed = 4;
                                        break 'fused;
                                    }
                                }
                            }
                            rop = ROp {
                                inst: Inst::FieldC {
                                    dst: c,
                                    idx: fidx,
                                    field,
                                },
                                cost: 2,
                            };
                            consumed = 2;
                            break 'fused;
                        }
                    }
                }
            }
            if let Inst::Bin {
                op,
                dst,
                a,
                b,
                a_t,
                b_t,
            } = one[i].inst
            {
                if op.is_cmp() && free(1) {
                    if let Inst::BranchFalse {
                        src,
                        target,
                        dead: true,
                        ..
                    } = one[i + 1].inst
                    {
                        if src == dst {
                            rop = ROp {
                                inst: Inst::CmpBranchFalse {
                                    op,
                                    a,
                                    b,
                                    a_t,
                                    b_t,
                                    target,
                                },
                                cost: 2,
                            };
                            consumed = 2;
                            break 'fused;
                        }
                    }
                }
            }
        }
        for k in 1..consumed {
            map[i + k] = fused.len() as u32;
        }
        fused.push(rop);
        i += consumed;
    }
    map[n] = fused.len() as u32;
    // Rewrite targets from chunk coordinates to fused coordinates.
    for rop in &mut fused {
        let (Inst::Jump { target }
        | Inst::BranchFalse { target, .. }
        | Inst::BranchTrue { target, .. }
        | Inst::CmpBranchFalse { target, .. }
        | Inst::FieldCmpCBranchFalse { target, .. }) = &mut rop.inst
        else {
            continue;
        };
        *target = map[*target as usize];
    }
    fused
}

// ---------------------------------------------------------------------
// Execution over untagged registers.

#[inline]
fn get_i(regs: &[u64], r: Reg) -> i64 {
    regs[r as usize] as i64
}

#[inline]
fn get_f(regs: &[u64], r: Reg) -> f64 {
    f64::from_bits(regs[r as usize])
}

#[inline]
fn get_as_f(regs: &[u64], r: Reg, t: Sc) -> f64 {
    match t {
        Sc::I => get_i(regs, r) as f64,
        Sc::F => get_f(regs, r),
    }
}

/// The VM's `Value::as_index`: ints verbatim, floats via saturating cast.
#[inline]
fn get_idx(regs: &[u64], r: Reg, t: Sc) -> i64 {
    match t {
        Sc::I => get_i(regs, r),
        Sc::F => get_f(regs, r) as i64,
    }
}

#[inline]
fn truthy(regs: &[u64], r: Reg, t: Sc) -> bool {
    match t {
        Sc::I => get_i(regs, r) != 0,
        Sc::F => get_f(regs, r) != 0.0,
    }
}

#[inline]
fn set_i(regs: &mut [u64], r: Reg, v: i64) {
    regs[r as usize] = v as u64;
}

#[inline]
fn set_f(regs: &mut [u64], r: Reg, v: f64) {
    regs[r as usize] = v.to_bits();
}

#[inline]
fn field_bits(rec: &MetricRecord, field: Field) -> u64 {
    match field {
        Field::Value => rec.value.to_bits(),
        Field::LastValueSent => rec.last_value_sent.to_bits(),
        Field::Timestamp => rec.timestamp.to_bits(),
        Field::Id => (rec.id as i64) as u64,
    }
}

#[inline]
fn bin_ii(op: Bo, a: i64, b: i64) -> Result<i64, RuntimeError> {
    Ok(match op {
        Bo::Add => a.wrapping_add(b),
        Bo::Sub => a.wrapping_sub(b),
        Bo::Mul => a.wrapping_mul(b),
        Bo::Div => {
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        Bo::Rem => {
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        Bo::Eq => (a == b) as i64,
        Bo::Ne => (a != b) as i64,
        Bo::Lt => (a < b) as i64,
        Bo::Le => (a <= b) as i64,
        Bo::Gt => (a > b) as i64,
        Bo::Ge => (a >= b) as i64,
    })
}

#[inline]
fn arith_f(op: Bo, a: f64, b: f64) -> f64 {
    match op {
        Bo::Add => a + b,
        Bo::Sub => a - b,
        Bo::Mul => a * b,
        Bo::Div => a / b,
        Bo::Rem => a % b,
        _ => unreachable!("comparison routed through cmp_f"),
    }
}

#[inline]
fn cmp_f(op: Bo, a: f64, b: f64) -> bool {
    match op {
        Bo::Eq => a == b,
        Bo::Ne => a != b,
        Bo::Lt => a < b,
        Bo::Le => a <= b,
        Bo::Gt => a > b,
        Bo::Ge => a >= b,
        _ => unreachable!("arithmetic routed through arith_f"),
    }
}

/// Fused field-op-constant evaluation shared by `FieldArithC` and
/// `FieldCmpCBranchFalse`. Returns raw result bits plus its scalar type.
#[inline]
fn field_const_bin(
    rec: &MetricRecord,
    field: Field,
    op: Bo,
    rhs: KConst,
) -> Result<u64, RuntimeError> {
    match (field_sc(field), rhs) {
        (Sc::I, KConst::I(k)) => Ok(bin_ii(op, field_bits(rec, field) as i64, k)? as u64),
        (ft, rhs) => {
            let a = match ft {
                Sc::I => (field_bits(rec, field) as i64) as f64,
                Sc::F => f64::from_bits(field_bits(rec, field)),
            };
            let b = match rhs {
                KConst::I(k) => k as f64,
                KConst::F(v) => v,
            };
            Ok(if op.is_cmp() {
                (cmp_f(op, a, b) as i64) as u64
            } else {
                arith_f(op, a, b).to_bits()
            })
        }
    }
}

thread_local! {
    /// Register scratch reused across executions (the compiled-path
    /// analogue of the interpreter's VM scratch).
    static REG_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn run_code(
    code: &RegCode,
    inputs: &[MetricRecord],
    budget: u64,
) -> Result<FilterOutput, RuntimeError> {
    assert_eq!(
        inputs.len(),
        code.n_inputs,
        "filter expects one record per environment metric"
    );
    REG_SCRATCH.with(|s| {
        let mut regs = s.borrow_mut();
        regs.clear();
        regs.resize(code.n_regs as usize, 0);
        let mut outputs = filter::take_slot_buf();
        match exec(code, inputs, budget, &mut regs, &mut outputs) {
            Ok((accept, executed)) => Ok(FilterOutput::new(outputs, accept, executed)),
            Err(e) => {
                filter::put_slot_buf(outputs);
                Err(e)
            }
        }
    })
}

#[allow(clippy::too_many_lines)]
fn exec(
    code: &RegCode,
    inputs: &[MetricRecord],
    budget: u64,
    regs: &mut [u64],
    outputs: &mut Vec<Option<MetricRecord>>,
) -> Result<(bool, u64), RuntimeError> {
    let ops = &code.ops;
    let mut pc: usize = 0;
    let mut remaining = budget;
    let mut executed: u64 = 0;

    let input_at = |idx: i64| -> Result<&MetricRecord, RuntimeError> {
        if idx < 0 || idx as usize >= inputs.len() {
            return Err(RuntimeError::InputIndexOutOfRange {
                index: idx,
                len: inputs.len(),
            });
        }
        Ok(&inputs[idx as usize])
    };

    while pc < ops.len() {
        let op = ops[pc];
        let cost = op.cost as u64;
        if remaining < cost {
            return Err(RuntimeError::BudgetExhausted { budget });
        }
        remaining -= cost;
        executed += cost;
        pc += 1;
        match op.inst {
            Inst::ConstI { dst, v } => set_i(regs, dst, v),
            Inst::ConstF { dst, v } => set_f(regs, dst, v),
            Inst::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
            Inst::Trunc { dst, src, t } => {
                set_i(regs, dst, get_as_f(regs, src, t).trunc() as i64);
            }
            Inst::Field { dst, idx, t, field } => {
                let rec = input_at(get_idx(regs, idx, t))?;
                regs[dst as usize] = field_bits(rec, field);
            }
            Inst::FieldC { dst, idx, field } => {
                regs[dst as usize] = field_bits(&inputs[idx as usize], field);
            }
            Inst::FieldArithC {
                dst,
                idx,
                field,
                op,
                rhs,
            } => {
                regs[dst as usize] = field_const_bin(&inputs[idx as usize], field, op, rhs)?;
            }
            Inst::Bin {
                op,
                dst,
                a,
                b,
                a_t,
                b_t,
            } => {
                if a_t == Sc::I && b_t == Sc::I {
                    let r = bin_ii(op, get_i(regs, a), get_i(regs, b))?;
                    set_i(regs, dst, r);
                } else {
                    let x = get_as_f(regs, a, a_t);
                    let y = get_as_f(regs, b, b_t);
                    if op.is_cmp() {
                        set_i(regs, dst, cmp_f(op, x, y) as i64);
                    } else {
                        set_f(regs, dst, arith_f(op, x, y));
                    }
                }
            }
            Inst::Neg { dst, src, t } => match t {
                Sc::I => set_i(regs, dst, get_i(regs, src).wrapping_neg()),
                Sc::F => set_f(regs, dst, -get_f(regs, src)),
            },
            Inst::Not { dst, src, t } => {
                let v = !truthy(regs, src, t);
                set_i(regs, dst, v as i64);
            }
            Inst::Truthy { dst, src, t } => {
                let v = truthy(regs, src, t);
                set_i(regs, dst, v as i64);
            }
            Inst::EmitRecord {
                out,
                out_t,
                inp,
                inp_t,
            } => {
                let in_idx = get_idx(regs, inp, inp_t);
                let out_idx = get_idx(regs, out, out_t);
                if out_idx < 0 || out_idx as usize >= MAX_OUTPUT_SLOTS {
                    return Err(RuntimeError::OutputIndexOutOfRange { index: out_idx });
                }
                let rec = *input_at(in_idx)?;
                let slot = out_idx as usize;
                if outputs.len() <= slot {
                    outputs.resize(slot + 1, None);
                }
                outputs[slot] = Some(rec);
            }
            Inst::EmitField {
                out,
                out_t,
                val,
                val_t,
                field,
            } => {
                let out_idx = get_idx(regs, out, out_t);
                if out_idx < 0 || out_idx as usize >= MAX_OUTPUT_SLOTS {
                    return Err(RuntimeError::OutputIndexOutOfRange { index: out_idx });
                }
                let slot = out_idx as usize;
                let rec = outputs
                    .get_mut(slot)
                    .and_then(|r| r.as_mut())
                    .ok_or(RuntimeError::OutputSlotEmpty { index: out_idx })?;
                match field {
                    Field::Value => rec.value = get_as_f(regs, val, val_t),
                    Field::LastValueSent => rec.last_value_sent = get_as_f(regs, val, val_t),
                    Field::Timestamp => rec.timestamp = get_as_f(regs, val, val_t),
                    Field::Id => rec.id = get_idx(regs, val, val_t) as u32,
                }
            }
            Inst::Jump { target } => pc = target as usize,
            Inst::BranchFalse { src, t, target, .. } => {
                if !truthy(regs, src, t) {
                    pc = target as usize;
                }
            }
            Inst::BranchTrue { src, t, target } => {
                if truthy(regs, src, t) {
                    pc = target as usize;
                }
            }
            Inst::CmpBranchFalse {
                op,
                a,
                b,
                a_t,
                b_t,
                target,
            } => {
                let res = if a_t == Sc::I && b_t == Sc::I {
                    bin_ii(op, get_i(regs, a), get_i(regs, b))? != 0
                } else {
                    cmp_f(op, get_as_f(regs, a, a_t), get_as_f(regs, b, b_t))
                };
                if !res {
                    pc = target as usize;
                }
            }
            Inst::FieldCmpCBranchFalse {
                idx,
                field,
                op,
                rhs,
                target,
            } => {
                let bits = field_const_bin(&inputs[idx as usize], field, op, rhs)?;
                if bits == 0 {
                    pc = target as usize;
                }
            }
            Inst::Nop => {}
            Inst::ReturnValue { src, t } => {
                return Ok((truthy(regs, src, t), executed));
            }
            Inst::ReturnVoid => return Ok((true, executed)),
        }
    }
    Ok((true, executed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EnvSpec;
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::vm;

    fn chunk_for(src: &str, env: &EnvSpec) -> Chunk {
        crate::bytecode::compile(&analyze(&parse(src).unwrap(), env).unwrap())
    }

    fn recs() -> Vec<MetricRecord> {
        vec![
            MetricRecord::new(0, 5.0),
            MetricRecord::new(1, 10.0),
            MetricRecord::new(2, 0.5),
        ]
    }

    /// Run both engines and require bit-identical results: outputs,
    /// accept flag, instruction counts, and error values.
    fn differential(src: &str, inputs: &[MetricRecord], budget: u64) {
        let env = EnvSpec::new(["A", "B", "C"]);
        let chunk = chunk_for(src, &env);
        let interp = vm::run(&chunk, inputs, budget);
        let compiled =
            compile_chunk(&chunk, 3, budget).unwrap_or_else(|| panic!("expected {src} to compile"));
        let fast = compiled.run(inputs);
        assert_eq!(interp, fast, "engines diverge on {src}");
    }

    const CASES: &[&str] = &[
        "{ output[0] = input[A]; output[1] = input[B]; }",
        "{ if (input[A].value > 100) { output[0] = input[A]; } }",
        "{ for (int i = 0; i < 3; i = i + 1) { output[i] = input[i]; } }",
        "{ int i = 0; while (1) { if (i >= 3) break; if (i % 2 == 1) { i = i + 1; continue; } output[i] = input[i]; i = i + 1; } }",
        "{ output[0] = input[B]; output[0].value = input[B].value / 2; }",
        "{ output[0] = input[A]; return 0; }",
        "{ output[0] = input[A]; return 1; }",
        "{ int i = 7 / 2; double d = 7.0 / 2.0; output[0] = input[A]; output[0].value = i; output[0].last_value_sent = d; }",
        "{ int x = 1 / 0; }",
        "{ int x = 1 % 0; }",
        "{ if (0 && input[99].value > 0) { output[0] = input[A]; } }",
        "{ if (1 || input[99].value > 0) { output[0] = input[A]; } }",
        "{ double v = input[7].value; }",
        "{ output[-1] = input[A]; }",
        "{ output[10000] = input[A]; }",
        "{ output[0].value = 1; }",
        "{ int a = -5; int b = !0; int c = !3; output[0] = input[A]; output[0].value = a; output[0].last_value_sent = b + c; }",
        "{ int x = 2.9; output[0] = input[A]; output[0].value = x; }",
        "{ int x = 1; }",
        "{ output[0] = input[A]; output[0].value = input[A].timestamp + input[B].id; }",
        "{ output[0] = input[A]; output[0].id = input[B].value; }",
        "{ double v = input[-1].value; }",
        "{ int big = 1; for (int i = 0; i < 62; i = i + 1) { big = big * 2; } int t = big * big; output[0] = input[A]; output[0].value = t; }",
    ];

    #[test]
    fn differential_fixed_cases() {
        for src in CASES {
            differential(src, &recs(), vm::DEFAULT_BUDGET);
        }
    }

    #[test]
    fn differential_under_tight_budgets() {
        // Sweep every budget from 0 to enough — exercises exhaustion at
        // every instruction boundary, including mid-superinstruction.
        for src in CASES {
            for budget in 0..200 {
                differential(src, &recs(), budget);
            }
        }
    }

    #[test]
    fn budget_exhaustion_in_loop_matches() {
        let env = EnvSpec::new(["A"]);
        let chunk = chunk_for("{ while (1) { } }", &env);
        let inputs = [MetricRecord::new(0, 1.0)];
        let compiled = compile_chunk(&chunk, 1, 1000).unwrap();
        assert_eq!(
            compiled.run(&inputs).unwrap_err(),
            RuntimeError::BudgetExhausted { budget: 1000 }
        );
    }

    #[test]
    fn fig3_compiles_with_superinstructions() {
        let f = Filter::compile(crate::filter::FIG3_SOURCE, &crate::filter::fig3_env()).unwrap();
        let c = compile_filter(&f).expect("fig3 is monomorphic and certified");
        assert!(
            c.superinstruction_count() >= 2,
            "fig3 should fuse compare-branches and field loads, got {c:?}"
        );
        // And the compiled fig3 agrees with the interpreter on the
        // scenarios the filter tests pin.
        for inputs in [
            [
                MetricRecord::new(0, 1.0),
                MetricRecord::new(1, 500.0),
                MetricRecord::new(2, 400e6),
                MetricRecord::new(3, 100.0).with_last_sent(200.0),
            ],
            [
                MetricRecord::new(0, 9.0),
                MetricRecord::new(1, 99_999.0),
                MetricRecord::new(2, 1e6),
                MetricRecord::new(3, 1e9).with_last_sent(0.0),
            ],
        ] {
            assert_eq!(f.run(&inputs), c.run(&inputs));
        }
    }

    #[test]
    fn polymorphic_program_falls_back() {
        // `y` holds an int tag on one path and a float tag on the other,
        // then gets read: the type dataflow must refuse to specialize.
        let env = EnvSpec::new(["A"]);
        let chunk = chunk_for(
            "{ double y = 2; if (input[A].value > 1) { y = 2.5; } double z = y + 1; }",
            &env,
        );
        assert!(compile_chunk(&chunk, 1, vm::DEFAULT_BUDGET).is_none());
    }

    #[test]
    fn uncertified_filter_is_not_compiled() {
        // Unbounded loop: admission fails, so deployment compilation
        // must decline even though lowering itself would succeed.
        let env = EnvSpec::new(["A"]);
        let f = Filter::compile("{ while (1) { } }", &env).unwrap();
        assert!(f.admission_error().is_some());
        assert!(compile_filter(&f).is_none());
    }

    #[test]
    fn instruction_counts_match_interpreter_exactly() {
        let env = EnvSpec::new(["A", "B", "C"]);
        for src in CASES {
            let chunk = chunk_for(src, &env);
            let (Ok(i), Ok(c)) = (
                vm::run(&chunk, &recs(), vm::DEFAULT_BUDGET),
                compile_chunk(&chunk, 3, vm::DEFAULT_BUDGET)
                    .unwrap()
                    .run(&recs()),
            ) else {
                continue;
            };
            assert_eq!(i.instructions(), c.instructions(), "{src}");
        }
    }

    #[test]
    fn compiled_filter_closure_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledFilter>();
    }
}
