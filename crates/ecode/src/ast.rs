//! Abstract syntax tree for E-code.

use crate::token::Pos;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Fields of a metric record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Current metric value.
    Value,
    /// Value most recently sent on the channel.
    LastValueSent,
    /// Sample timestamp (seconds).
    Timestamp,
    /// Metric id (index in the environment).
    Id,
}

impl Field {
    /// Parse a field name.
    pub fn from_name(name: &str) -> Option<Field> {
        match name {
            "value" => Some(Field::Value),
            "last_value_sent" => Some(Field::LastValueSent),
            "timestamp" => Some(Field::Timestamp),
            "id" => Some(Field::Id),
            _ => None,
        }
    }
}

/// Declared variable types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Position of the expression's first token.
    pub pos: Pos,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference (or metric constant, resolved in sema).
    Var(String),
    /// `input[index]` — a whole record (only valid on the right of
    /// `output[...] = ...`).
    InputRecord(Box<Expr>),
    /// `input[index].field`.
    InputField(Box<Expr>, Field),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
}

/// A statement with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Position of the statement's first token.
    pub pos: Pos,
    /// The statement itself.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `int x = e;` / `double y;`
    Decl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `x = e;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `output[i] = input[j];`
    OutputRecord {
        /// Output slot index.
        index: Expr,
        /// Source record (`input[...]`).
        record: Expr,
    },
    /// `output[i].field = e;`
    OutputField {
        /// Output slot index.
        index: Expr,
        /// Which field to overwrite.
        field: Field,
        /// New field value.
        value: Expr,
    },
    /// `if (cond) then else else_`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (empty if absent).
        else_: Vec<Stmt>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (true if absent).
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return;` or `return e;` — ends the filter; a non-zero / true value
    /// means "submit the outputs", zero means "suppress everything".
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Bare block `{ ... }`.
    Block(Vec<Stmt>),
}

/// A whole filter: a statement list (the paper writes filters as a single
/// braced block).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_names_parse() {
        assert_eq!(Field::from_name("value"), Some(Field::Value));
        assert_eq!(
            Field::from_name("last_value_sent"),
            Some(Field::LastValueSent)
        );
        assert_eq!(Field::from_name("timestamp"), Some(Field::Timestamp));
        assert_eq!(Field::from_name("id"), Some(Field::Id));
        assert_eq!(Field::from_name("bogus"), None);
    }
}
