//! Interval abstract interpretation over the resolved IR.
//!
//! A single forward walk tracks, per local slot, either an integer
//! interval, an exact float constant, or Top. It powers two lints:
//! `if` conditions that are provably always true/false, and integer
//! division/modulo whose divisor is (or may be) zero. Loops are handled
//! conservatively: every slot assigned anywhere inside the loop is
//! widened to Top before the body is examined, so no claim depends on
//! iteration count.

use std::collections::BTreeSet;

use super::{Diagnostic, LintKind, Severity};
use crate::ast::{BinOp, Ty, UnOp};
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};

/// Largest magnitude where i64→f64 conversion is exact; beyond it the
/// analysis degrades to Top instead of making inexact claims.
const EXACT: i128 = 1 << 53;

#[derive(Debug, Clone, Copy, PartialEq)]
enum AbsVal {
    /// Integer in `lo..=hi` (inclusive, both within i64).
    Int(i128, i128),
    /// Exactly this float.
    FConst(f64),
    /// Anything.
    Top,
}

impl AbsVal {
    fn singleton(self) -> Option<i128> {
        match self {
            AbsVal::Int(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// Definite truthiness, if known.
    fn truthy(self) -> Option<bool> {
        match self {
            AbsVal::Int(lo, hi) => {
                if lo > 0 || hi < 0 {
                    Some(true)
                } else if lo == 0 && hi == 0 {
                    Some(false)
                } else {
                    None
                }
            }
            AbsVal::FConst(v) => Some(v != 0.0),
            AbsVal::Top => None,
        }
    }

    /// Exact `(lo, hi)` bounds as f64, when representable exactly.
    fn bounds(self) -> Option<(f64, f64)> {
        match self {
            AbsVal::Int(lo, hi) if lo.abs() <= EXACT && hi.abs() <= EXACT => {
                Some((lo as f64, hi as f64))
            }
            AbsVal::FConst(v) => Some((v, v)),
            _ => None,
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Int(a, b), AbsVal::Int(c, d)) => AbsVal::Int(a.min(c), b.max(d)),
            (AbsVal::FConst(x), AbsVal::FConst(y)) if x == y => AbsVal::FConst(x),
            _ => AbsVal::Top,
        }
    }
}

/// Clamp an i128 interval back into i64 (the VM wraps outside it, so
/// anything wider becomes Top).
fn int_iv(lo: i128, hi: i128) -> AbsVal {
    if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
        AbsVal::Top
    } else {
        AbsVal::Int(lo, hi)
    }
}

fn bool_iv(b: Option<bool>) -> AbsVal {
    match b {
        Some(true) => AbsVal::Int(1, 1),
        Some(false) => AbsVal::Int(0, 0),
        None => AbsVal::Int(0, 1),
    }
}

struct Walker {
    env: Vec<AbsVal>,
    diags: Vec<Diagnostic>,
}

/// Run the interval lints over a resolved (unfolded) program.
pub fn lint(prog: &RProgram) -> Vec<Diagnostic> {
    let mut w = Walker {
        env: vec![AbsVal::Top; prog.n_locals as usize],
        diags: Vec::new(),
    };
    w.stmts(&prog.body);
    w.diags
}

/// Every slot stored anywhere inside `stmts`, including nested control
/// flow and loop init/step statements.
fn assigned_slots(stmts: &[RStmt], out: &mut BTreeSet<u16>) {
    for s in stmts {
        match &s.kind {
            RStmtKind::Store { slot, .. } => {
                out.insert(*slot);
            }
            RStmtKind::If { then, else_, .. } => {
                assigned_slots(then, out);
                assigned_slots(else_, out);
            }
            RStmtKind::Loop {
                init, step, body, ..
            } => {
                if let Some(init) = init {
                    assigned_slots(std::slice::from_ref(init), out);
                }
                if let Some(step) = step {
                    assigned_slots(std::slice::from_ref(step), out);
                }
                assigned_slots(body, out);
            }
            RStmtKind::Block(body) => assigned_slots(body, out),
            RStmtKind::OutputRecord { .. }
            | RStmtKind::OutputField { .. }
            | RStmtKind::Return(_)
            | RStmtKind::Break
            | RStmtKind::Continue => {}
        }
    }
}

impl Walker {
    fn stmts(&mut self, stmts: &[RStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &RStmt) {
        match &stmt.kind {
            RStmtKind::Store {
                slot,
                value,
                truncate,
                ..
            } => {
                let mut v = self.eval(value);
                if *truncate {
                    v = match v {
                        AbsVal::FConst(f) if f.abs() <= EXACT as f64 => {
                            let t = f.trunc() as i128;
                            AbsVal::Int(t, t)
                        }
                        AbsVal::Int(lo, hi) => AbsVal::Int(lo, hi),
                        _ => AbsVal::Top,
                    };
                }
                self.env[*slot as usize] = v;
            }
            RStmtKind::OutputRecord { index, input_index } => {
                self.eval(index);
                self.eval(input_index);
            }
            RStmtKind::OutputField { index, value, .. } => {
                self.eval(index);
                self.eval(value);
            }
            RStmtKind::If { cond, then, else_ } => {
                let c = self.eval(cond);
                if let Some(t) = c.truthy() {
                    self.diags.push(Diagnostic {
                        pos: cond.pos,
                        kind: LintKind::ConstantCondition,
                        severity: Severity::Warning,
                        message: format!(
                            "condition is always {}; the {} branch never runs",
                            if t { "true" } else { "false" },
                            if t { "else" } else { "then" },
                        ),
                    });
                }
                let saved = self.env.clone();
                self.stmts(then);
                let after_then = std::mem::replace(&mut self.env, saved);
                self.stmts(else_);
                for (slot, t) in after_then.into_iter().enumerate() {
                    self.env[slot] = self.env[slot].join(t);
                }
            }
            RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let mut assigned = BTreeSet::new();
                assigned_slots(body, &mut assigned);
                if let Some(step) = step {
                    assigned_slots(std::slice::from_ref(step), &mut assigned);
                }
                for &slot in &assigned {
                    self.env[slot as usize] = AbsVal::Top;
                }
                // No constant-condition lint on loop conditions: `while
                // (1) { ... break; }` is idiomatic, and the cost
                // certificate already polices non-terminating loops.
                if let Some(c) = cond {
                    self.eval(c);
                }
                let widened = self.env.clone();
                self.stmts(body);
                if let Some(step) = step {
                    self.stmt(step);
                }
                // The loop may run zero times; every widened fact is the
                // only safe post-state.
                self.env = widened;
            }
            RStmtKind::Return(value) => {
                if let Some(v) = value {
                    self.eval(v);
                }
            }
            RStmtKind::Break | RStmtKind::Continue => {}
            RStmtKind::Block(body) => self.stmts(body),
        }
    }

    fn eval(&mut self, e: &RExpr) -> AbsVal {
        match &e.kind {
            RExprKind::ConstI(v) => AbsVal::Int(*v as i128, *v as i128),
            RExprKind::ConstF(v) => AbsVal::FConst(*v),
            RExprKind::Local(slot) => self.env[*slot as usize],
            RExprKind::InputField(index, _) => {
                self.eval(index);
                AbsVal::Top
            }
            RExprKind::Unary(op, inner) => {
                let v = self.eval(inner);
                match op {
                    UnOp::Neg => match v {
                        AbsVal::Int(lo, hi) => int_iv(-hi, -lo),
                        AbsVal::FConst(f) => AbsVal::FConst(-f),
                        AbsVal::Top => AbsVal::Top,
                    },
                    UnOp::Not => bool_iv(v.truthy().map(|t| !t)),
                }
            }
            RExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs);
                let r = self.eval(rhs);
                if matches!(op, BinOp::Div | BinOp::Rem) && e.ty == Ty::Int {
                    self.check_divisor(rhs, r);
                }
                self.binary(*op, l, r)
            }
        }
    }

    fn check_divisor(&mut self, rhs: &RExpr, r: AbsVal) {
        match r {
            AbsVal::Int(0, 0) => self.diags.push(Diagnostic {
                pos: rhs.pos,
                kind: LintKind::PossibleDivisionByZero,
                severity: Severity::Warning,
                message: "integer division by zero: this always fails at run time".to_string(),
            }),
            AbsVal::Int(lo, hi) if lo <= 0 && 0 <= hi => self.diags.push(Diagnostic {
                pos: rhs.pos,
                kind: LintKind::PossibleDivisionByZero,
                severity: Severity::Note,
                message: format!("divisor ranges over {lo}..={hi}, which includes zero"),
            }),
            _ => {}
        }
    }

    fn binary(&mut self, op: BinOp, l: AbsVal, r: AbsVal) -> AbsVal {
        use BinOp::*;
        match op {
            And => match (l.truthy(), r.truthy()) {
                (Some(false), _) | (_, Some(false)) => AbsVal::Int(0, 0),
                (Some(true), Some(true)) => AbsVal::Int(1, 1),
                _ => AbsVal::Int(0, 1),
            },
            Or => match (l.truthy(), r.truthy()) {
                (Some(true), _) | (_, Some(true)) => AbsVal::Int(1, 1),
                (Some(false), Some(false)) => AbsVal::Int(0, 0),
                _ => AbsVal::Int(0, 1),
            },
            Eq | Ne | Lt | Le | Gt | Ge => {
                let (Some((llo, lhi)), Some((rlo, rhi))) = (l.bounds(), r.bounds()) else {
                    return AbsVal::Int(0, 1);
                };
                let verdict = match op {
                    Lt => cmp_verdict(lhi < rlo, llo >= rhi),
                    Le => cmp_verdict(lhi <= rlo, llo > rhi),
                    Gt => cmp_verdict(llo > rhi, lhi <= rlo),
                    Ge => cmp_verdict(llo >= rhi, lhi < rlo),
                    Eq => cmp_verdict(
                        llo == lhi && rlo == rhi && llo == rlo,
                        lhi < rlo || llo > rhi,
                    ),
                    Ne => cmp_verdict(
                        lhi < rlo || llo > rhi,
                        llo == lhi && rlo == rhi && llo == rlo,
                    ),
                    _ => unreachable!(),
                };
                bool_iv(verdict)
            }
            Add | Sub | Mul => match (l, r) {
                (AbsVal::Int(a, b), AbsVal::Int(c, d)) => match op {
                    Add => int_iv(a + c, b + d),
                    Sub => int_iv(a - d, b - c),
                    Mul => {
                        let corners = [a * c, a * d, b * c, b * d];
                        int_iv(
                            corners.iter().copied().min().unwrap(),
                            corners.iter().copied().max().unwrap(),
                        )
                    }
                    _ => unreachable!(),
                },
                (AbsVal::FConst(x), AbsVal::FConst(y)) => AbsVal::FConst(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    _ => unreachable!(),
                }),
                _ => AbsVal::Top,
            },
            Div | Rem => match (l.singleton(), r.singleton()) {
                (Some(a), Some(b)) if b != 0 => {
                    let v = match op {
                        Div => a / b,
                        _ => a % b,
                    };
                    int_iv(v, v)
                }
                _ => AbsVal::Top,
            },
        }
    }
}

fn cmp_verdict(definitely_true: bool, definitely_false: bool) -> Option<bool> {
    if definitely_true {
        Some(true)
    } else if definitely_false {
        Some(false)
    } else {
        None
    }
}
