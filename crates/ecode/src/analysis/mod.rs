//! Static analysis over the resolved filter IR: cost certification,
//! dataflow diagnostics, and metric read-set extraction.
//!
//! The paper compiles operator-supplied E-code and runs it inside the
//! monitoring path — kernel-resident in the original dproc. Running
//! untrusted code there needs the same discipline an in-kernel eBPF
//! verifier applies: prove, *before* admission, that every execution
//! terminates within a budget, and learn what the program touches so the
//! host can specialize around it. This module is that verifier:
//!
//! * [`certify`] runs on the **folded** program (exactly what the
//!   bytecode compiler sees) and produces a [`FilterCert`]: a worst-case
//!   instruction bound mirroring the VM's per-op budget accounting, the
//!   set of metric indices the filter reads, and whether it can emit
//!   records at all. Loops must have inferable trip counts (affine
//!   induction variables over constant bounds); anything else is
//!   [`CostBound::Unbounded`] and the deployment layer rejects it.
//! * [`lint`] runs on the **unfolded** program (so constant conditions
//!   the optimizer would erase are still visible) and reports
//!   [`Diagnostic`]s with source positions: use of a variable before
//!   initialization, unreachable statements, always-true/false
//!   conditions, possible integer division by zero, stores whose value
//!   is overwritten before any use, and filters that can never emit.
//!
//! Both run automatically in [`crate::Filter::compile`]; the result is
//! attached to the [`crate::Filter`].

mod cfg;
mod cost;
mod dataflow;
mod effects;
mod interval;
mod readset;

use std::collections::BTreeSet;
use std::fmt;

use crate::sema::RProgram;
use crate::token::Pos;

pub use cost::CostBound;
pub use effects::{EffectSummary, MemoClass};

/// How serious a diagnostic is. Lints never block deployment (that is
/// the cost certificate's job); severity is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Almost certainly a mistake.
    Warning,
    /// Worth a look.
    Note,
}

/// What a diagnostic is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// A variable may be read while still holding its implicit zero.
    UseBeforeInit,
    /// Statement can never execute.
    UnreachableCode,
    /// `if` condition is provably always true or always false.
    ConstantCondition,
    /// Integer division or modulo whose divisor may be zero.
    PossibleDivisionByZero,
    /// Stored value is overwritten on every path before being read.
    DeadStore,
    /// The filter contains no reachable `output[...] = input[...];`.
    NeverEmits,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UseBeforeInit => "use-before-init",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::ConstantCondition => "constant-condition",
            LintKind::PossibleDivisionByZero => "possible-division-by-zero",
            LintKind::DeadStore => "dead-store",
            LintKind::NeverEmits => "never-emits",
        };
        f.write_str(s)
    }
}

/// One finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where in the filter source.
    pub pos: Pos,
    /// Category.
    pub kind: LintKind,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Note => "note",
        };
        write!(f, "{sev}[{}] at {}: {}", self.kind, self.pos, self.message)
    }
}

/// The set of metric input indices a filter reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSet {
    /// At least one `input[...]` index is not a compile-time constant —
    /// assume everything is read.
    All,
    /// Exactly these indices (empty = reads nothing).
    Fixed(BTreeSet<usize>),
}

impl MetricSet {
    /// The empty read set.
    pub fn empty() -> Self {
        MetricSet::Fixed(BTreeSet::new())
    }

    /// Whether metric `index` may be read.
    pub fn contains(&self, index: usize) -> bool {
        match self {
            MetricSet::All => true,
            MetricSet::Fixed(s) => s.contains(&index),
        }
    }

    /// Add one index.
    pub fn insert(&mut self, index: usize) {
        if let MetricSet::Fixed(s) = self {
            s.insert(index);
        }
    }

    /// Collapse to [`MetricSet::All`].
    pub fn make_all(&mut self) {
        *self = MetricSet::All;
    }
}

/// The certificate attached to every compiled filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterCert {
    /// Worst-case VM instruction count, or why none could be proven.
    pub cost: CostBound,
    /// Metric indices the filter may read.
    pub reads: MetricSet,
    /// Whether any reachable statement emits an output record.
    pub emits: bool,
    /// Whether the publisher's shared-filter memo may serve this filter
    /// at all: proven false when the filter reads or writes the
    /// per-subscriber `last_value_sent` state, in which case it must be
    /// evaluated once per subscriber.
    pub memo_safe: bool,
    /// The full effect summary behind `memo_safe`: write-set,
    /// state-dependence flags, and the sharing class.
    pub effects: EffectSummary,
    /// Lint findings (advisory; never block deployment by themselves).
    pub diagnostics: Vec<Diagnostic>,
}

impl FilterCert {
    /// True when a finite worst-case instruction bound was proven.
    pub fn is_certified(&self) -> bool {
        matches!(self.cost, CostBound::Bounded(_))
    }

    /// The proven bound, if any.
    pub fn bound(&self) -> Option<u64> {
        match self.cost {
            CostBound::Bounded(n) => Some(n),
            CostBound::Unbounded { .. } => None,
        }
    }

    /// Why this filter must be refused under `budget`, or `None` when it
    /// is admissible. The string is what travels back over the control
    /// channel on rejection.
    pub fn admission_error(&self, budget: u64) -> Option<String> {
        match &self.cost {
            CostBound::Unbounded { pos, reason } => {
                Some(format!("filter cost is unbounded (at {pos}): {reason}"))
            }
            CostBound::Bounded(n) if *n > budget => Some(format!(
                "filter worst-case cost {n} exceeds the instruction budget {budget}"
            )),
            CostBound::Bounded(_) => None,
        }
    }
}

/// Lint a resolved (unfolded) program. Runs the CFG/dataflow pass and
/// the interval walk, merges their findings, and sorts by position.
pub fn lint(prog: &RProgram) -> Vec<Diagnostic> {
    let graph = cfg::Cfg::build(prog);
    let mut diags = dataflow::lint(prog, &graph);
    diags.extend(interval::lint(prog));
    diags.sort_by_key(|d| (d.pos.line, d.pos.col, d.kind));
    diags.dedup_by(|a, b| a.pos == b.pos && a.kind == b.kind);
    diags
}

/// Certify a **folded** program: worst-case cost bound plus read/emit
/// sets. Run this on exactly the program the bytecode compiler compiles,
/// or the bound will not cover the emitted instruction stream.
pub fn certify(prog: &RProgram) -> FilterCert {
    let (reads, emits) = readset::scan(prog);
    let effects = effects::scan(prog);
    FilterCert {
        cost: cost::bound_program(prog),
        reads,
        emits,
        memo_safe: effects.memo_safe(),
        effects,
        diagnostics: Vec::new(),
    }
}

/// Full analysis as [`crate::Filter::compile`] runs it: lint the
/// unfolded program, certify the folded one, attach the lints to the
/// certificate.
pub fn analyze_for_deploy(unfolded: &RProgram, folded: &RProgram) -> FilterCert {
    let mut cert = certify(folded);
    cert.diagnostics = lint(unfolded);
    cert
}

#[cfg(test)]
mod tests;
