//! Metric read-set and emit-set extraction.
//!
//! Walks the folded program and records which `input[...]` indices the
//! filter can touch. Indices that are compile-time constants go into a
//! [`MetricSet::Fixed`]; a single dynamic index (e.g. `input[i]` in a
//! loop) collapses the set to [`MetricSet::All`]. DMon uses the result
//! to skip sampling modules no deployed filter reads.

use super::MetricSet;
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};

/// `(reads, emits)` of a folded program.
pub fn scan(prog: &RProgram) -> (MetricSet, bool) {
    let mut scanner = Scanner {
        reads: MetricSet::empty(),
        emits: false,
    };
    scanner.stmts(&prog.body);
    (scanner.reads, scanner.emits)
}

struct Scanner {
    reads: MetricSet,
    emits: bool,
}

impl Scanner {
    fn stmts(&mut self, stmts: &[RStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &RStmt) {
        match &stmt.kind {
            RStmtKind::Store { value, .. } => self.expr(value),
            RStmtKind::OutputRecord { index, input_index } => {
                self.emits = true;
                self.expr(index);
                self.input_index(input_index);
            }
            RStmtKind::OutputField { index, value, .. } => {
                self.expr(index);
                self.expr(value);
            }
            RStmtKind::If { cond, then, else_ } => {
                self.expr(cond);
                self.stmts(then);
                self.stmts(else_);
            }
            RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(cond) = cond {
                    self.expr(cond);
                }
                if let Some(step) = step {
                    self.stmt(step);
                }
                self.stmts(body);
            }
            RStmtKind::Return(value) => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            RStmtKind::Break | RStmtKind::Continue => {}
            RStmtKind::Block(body) => self.stmts(body),
        }
    }

    fn expr(&mut self, e: &RExpr) {
        match &e.kind {
            RExprKind::ConstI(_) | RExprKind::ConstF(_) | RExprKind::Local(_) => {}
            RExprKind::InputField(index, _) => self.input_index(index),
            RExprKind::Binary(_, l, r) => {
                self.expr(l);
                self.expr(r);
            }
            RExprKind::Unary(_, inner) => self.expr(inner),
        }
    }

    /// Record a read of `input[index]` (whole record or field).
    fn input_index(&mut self, index: &RExpr) {
        match index.kind {
            RExprKind::ConstI(v) if v >= 0 => self.reads.insert(v as usize),
            // Dynamic or negative index: assume anything may be read.
            _ => {
                self.reads.make_all();
                self.expr(index);
            }
        }
    }
}
