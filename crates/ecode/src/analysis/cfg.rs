//! Control-flow graph construction over the resolved IR.
//!
//! The IR is structured (no `goto`), so the CFG is built by a single
//! recursive lowering: statements become [`Atom`]s (read/write/emit
//! events with positions) grouped into basic blocks, and `if`/loops/
//! `break`/`continue`/`return` become edges. Conditions that are literal
//! constants prune their dead edge at construction time, which is what
//! lets the reachability pass see through `while (1) { }` and `if (0)`.

use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};
use crate::token::Pos;

/// One dataflow-relevant event inside a basic block.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Source position of the originating statement or expression.
    pub pos: Pos,
    /// Local slots read.
    pub reads: Vec<u16>,
    /// Local slot written, with the `synthetic` flag of the store.
    pub write: Option<(u16, bool)>,
    /// True for `output[i] = input[j];`.
    pub emits: bool,
}

/// A basic block: straight-line atoms plus successor edges.
#[derive(Debug, Default)]
pub struct Block {
    /// Events in execution order.
    pub atoms: Vec<Atom>,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// The graph. Block 0 is the entry; [`Cfg::exit`] is the single exit.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks, indexed by id.
    pub blocks: Vec<Block>,
    /// Exit block id.
    pub exit: usize,
}

impl Cfg {
    /// Build the CFG of a resolved program.
    pub fn build(prog: &RProgram) -> Cfg {
        let mut b = Builder {
            blocks: vec![Block::default(), Block::default()],
            cur: 0,
            loops: Vec::new(),
        };
        let exit = 1;
        b.stmts(&prog.body);
        b.edge(b.cur, exit);
        Cfg {
            blocks: b.blocks,
            exit,
        }
    }

    /// Block ids reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id], true) {
                continue;
            }
            stack.extend(self.blocks[id].succs.iter().copied());
        }
        seen
    }

    /// Predecessor lists for every block.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(id);
            }
        }
        preds
    }
}

/// Truthiness of a condition that is a literal constant.
fn const_truthy(e: &RExpr) -> Option<bool> {
    match e.kind {
        RExprKind::ConstI(v) => Some(v != 0),
        RExprKind::ConstF(v) => Some(v != 0.0),
        _ => None,
    }
}

/// Collect every local slot read by an expression.
pub fn expr_reads(e: &RExpr, out: &mut Vec<u16>) {
    match &e.kind {
        RExprKind::ConstI(_) | RExprKind::ConstF(_) => {}
        RExprKind::Local(slot) => out.push(*slot),
        RExprKind::InputField(index, _) => expr_reads(index, out),
        RExprKind::Binary(_, l, r) => {
            expr_reads(l, out);
            expr_reads(r, out);
        }
        RExprKind::Unary(_, inner) => expr_reads(inner, out),
    }
}

struct Builder {
    blocks: Vec<Block>,
    cur: usize,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succs.push(to);
    }

    fn push_atom(&mut self, atom: Atom) {
        self.blocks[self.cur].atoms.push(atom);
    }

    fn read_atom(&mut self, pos: Pos, exprs: &[&RExpr]) {
        let mut reads = Vec::new();
        for e in exprs {
            expr_reads(e, &mut reads);
        }
        self.push_atom(Atom {
            pos,
            reads,
            write: None,
            emits: false,
        });
    }

    fn stmts(&mut self, stmts: &[RStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &RStmt) {
        match &stmt.kind {
            RStmtKind::Store {
                slot,
                value,
                synthetic,
                ..
            } => {
                let mut reads = Vec::new();
                expr_reads(value, &mut reads);
                self.push_atom(Atom {
                    pos: stmt.pos,
                    reads,
                    write: Some((*slot, *synthetic)),
                    emits: false,
                });
            }
            RStmtKind::OutputRecord { index, input_index } => {
                let mut reads = Vec::new();
                expr_reads(index, &mut reads);
                expr_reads(input_index, &mut reads);
                self.push_atom(Atom {
                    pos: stmt.pos,
                    reads,
                    write: None,
                    emits: true,
                });
            }
            RStmtKind::OutputField { index, value, .. } => {
                self.read_atom(stmt.pos, &[index, value]);
            }
            RStmtKind::If { cond, then, else_ } => {
                self.read_atom(cond.pos, &[cond]);
                let from = self.cur;
                let then_b = self.new_block();
                let else_b = self.new_block();
                let join = self.new_block();
                match const_truthy(cond) {
                    Some(true) => self.edge(from, then_b),
                    Some(false) => self.edge(from, else_b),
                    None => {
                        self.edge(from, then_b);
                        self.edge(from, else_b);
                    }
                }
                self.cur = then_b;
                self.stmts(then);
                self.edge(self.cur, join);
                self.cur = else_b;
                self.stmts(else_);
                self.edge(self.cur, join);
                self.cur = join;
            }
            RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let check = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let exit_b = self.new_block();
                self.edge(self.cur, check);
                self.cur = check;
                match cond {
                    Some(c) => {
                        self.read_atom(c.pos, &[c]);
                        match const_truthy(c) {
                            Some(true) => self.edge(check, body_b),
                            Some(false) => self.edge(check, exit_b),
                            None => {
                                self.edge(check, body_b);
                                self.edge(check, exit_b);
                            }
                        }
                    }
                    None => self.edge(check, body_b),
                }
                self.cur = body_b;
                self.loops.push((step_b, exit_b));
                self.stmts(body);
                self.loops.pop();
                self.edge(self.cur, step_b);
                self.cur = step_b;
                if let Some(step) = step {
                    self.stmt(step);
                }
                self.edge(self.cur, check);
                self.cur = exit_b;
            }
            RStmtKind::Return(value) => {
                if let Some(v) = value {
                    self.read_atom(stmt.pos, &[v]);
                } else {
                    self.read_atom(stmt.pos, &[]);
                }
                // Exit is always block 1; anything after is unreachable.
                self.edge(self.cur, 1);
                self.cur = self.new_block();
            }
            RStmtKind::Break => {
                let (_, brk) = *self.loops.last().expect("break outside loop survived sema");
                self.read_atom(stmt.pos, &[]);
                self.edge(self.cur, brk);
                self.cur = self.new_block();
            }
            RStmtKind::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .expect("continue outside loop survived sema");
                self.read_atom(stmt.pos, &[]);
                self.edge(self.cur, cont);
                self.cur = self.new_block();
            }
            RStmtKind::Block(stmts) => self.stmts(stmts),
        }
    }
}
