//! Static worst-case instruction-cost bounds.
//!
//! The VM charges one budget unit per executed instruction, so a sound
//! cost bound is a count of emitted ops along the worst path, with loops
//! multiplied by an inferred trip count. The per-construct costs below
//! mirror [`crate::bytecode`]'s emission exactly (e.g. an `if` with an
//! `else` pays one extra `Jump` on the then-path; a loop pays its
//! condition once more than its body). Loops must be *affine*: an
//! integer induction variable with a known entry value, stepped by a
//! nonzero constant exactly once per iteration, compared against a
//! loop-invariant constant. Anything else — `while (1)`, float
//! induction, conditional increments, increments skippable by
//! `continue` — yields [`CostBound::Unbounded`] with the offending
//! position, and the deployment layer refuses the filter.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::BinOp;
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};
use crate::token::Pos;

/// Result of cost certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostBound {
    /// Worst-case VM instruction count (saturating).
    Bounded(u64),
    /// No finite bound could be proven.
    Unbounded {
        /// Position of the construct that defeated the analysis.
        pos: Pos,
        /// Why.
        reason: String,
    },
}

/// Bound guaranteeing no i64 wraparound in induction arithmetic: entry
/// value, limit, and step must all fit in +/-2^31.
const AFFINE_MAG: i128 = 1 << 31;

type ConstEnv = BTreeMap<u16, i64>;
type Unbound = (Pos, String);

/// Compute the worst-case instruction bound of a **folded** program.
pub fn bound_program(prog: &RProgram) -> CostBound {
    let mut env = ConstEnv::new();
    match cost_stmts(&prog.body, &mut env) {
        // +1 for the trailing ReturnVoid the compiler always appends.
        Ok(c) => CostBound::Bounded(c.saturating_add(1)),
        Err((pos, reason)) => CostBound::Unbounded { pos, reason },
    }
}

fn cost_stmts(stmts: &[RStmt], env: &mut ConstEnv) -> Result<u64, Unbound> {
    let mut total: u64 = 0;
    for s in stmts {
        total = total.saturating_add(cost_stmt(s, env)?);
    }
    Ok(total)
}

fn cost_stmt(stmt: &RStmt, env: &mut ConstEnv) -> Result<u64, Unbound> {
    match &stmt.kind {
        RStmtKind::Store {
            slot,
            value,
            truncate,
            ..
        } => {
            let c = expr_cost(value);
            match (!truncate).then(|| eval_const(value, env)).flatten() {
                Some(v) => {
                    env.insert(*slot, v);
                }
                None => {
                    env.remove(slot);
                }
            }
            Ok(c.saturating_add(1))
        }
        RStmtKind::OutputRecord { index, input_index } => Ok(expr_cost(index)
            .saturating_add(expr_cost(input_index))
            .saturating_add(1)),
        RStmtKind::OutputField { index, value, .. } => Ok(expr_cost(index)
            .saturating_add(expr_cost(value))
            .saturating_add(1)),
        RStmtKind::If { cond, then, else_ } => {
            let mut env_then = env.clone();
            let mut then_cost = cost_stmts(then, &mut env_then)?;
            if !else_.is_empty() {
                // The then-path executes one extra Jump over the else.
                then_cost = then_cost.saturating_add(1);
            }
            let else_cost = cost_stmts(else_, env)?;
            // Keep only facts both branches agree on.
            env.retain(|slot, v| env_then.get(slot).copied() == Some(*v));
            Ok(expr_cost(cond)
                .saturating_add(1) // JumpIfFalse
                .saturating_add(then_cost.max(else_cost)))
        }
        RStmtKind::Loop {
            init,
            cond,
            step,
            body,
        } => cost_loop(
            stmt.pos,
            init.as_deref(),
            cond.as_ref(),
            step.as_deref(),
            body,
            env,
        ),
        RStmtKind::Return(value) => Ok(value.as_ref().map_or(0, expr_cost).saturating_add(1)),
        RStmtKind::Break | RStmtKind::Continue => Ok(1),
        RStmtKind::Block(body) => cost_stmts(body, env),
    }
}

#[allow(clippy::too_many_lines)]
fn cost_loop(
    pos: Pos,
    init: Option<&RStmt>,
    cond: Option<&RExpr>,
    step: Option<&RStmt>,
    body: &[RStmt],
    env: &mut ConstEnv,
) -> Result<u64, Unbound> {
    let init_cost = match init {
        Some(init) => cost_stmt(init, env)?,
        None => 0,
    };
    let Some(cond) = cond else {
        return Err((pos, "loop has no exit condition".to_string()));
    };

    // Slots mutated anywhere inside the loop are not invariant.
    let mut assigned = BTreeSet::new();
    collect_stores(body, &mut assigned);
    if let Some(step) = step {
        collect_stores(std::slice::from_ref(step), &mut assigned);
    }
    let mut invariant = env.clone();
    invariant.retain(|slot, _| !assigned.contains(slot));

    // A truthy constant condition can only be exited via `break`, which
    // the bound does not credit — `while (1) { ... }` is uncertifiable. A
    // falsy one means the body never runs: pay init plus one check.
    let const_cond = match &cond.kind {
        RExprKind::ConstI(v) => Some(*v != 0),
        RExprKind::ConstF(v) => Some(*v != 0.0),
        _ => None,
    };
    if let Some(truthy) = const_cond {
        if truthy {
            return Err((
                cond.pos,
                "loop condition is a constant and never becomes false".to_string(),
            ));
        }
        return Ok(init_cost.saturating_add(expr_cost(cond)).saturating_add(1));
    }

    // Recognize `slot CMP limit` (or reversed) with a loop-invariant
    // constant limit.
    let (op, slot, limit) = match &cond.kind {
        RExprKind::Binary(op, l, r) => match (&l.kind, &r.kind) {
            (RExprKind::Local(s), _) if assigned.contains(s) => match eval_const(r, &invariant) {
                Some(k) => (*op, *s, k),
                None => {
                    return Err((
                        cond.pos,
                        "loop limit is not a loop-invariant constant".to_string(),
                    ))
                }
            },
            (_, RExprKind::Local(s)) if assigned.contains(s) => match eval_const(l, &invariant) {
                Some(k) => (flip(*op), *s, k),
                None => {
                    return Err((
                        cond.pos,
                        "loop limit is not a loop-invariant constant".to_string(),
                    ))
                }
            },
            _ => {
                return Err((
                    cond.pos,
                    "loop condition is not an induction-variable comparison".to_string(),
                ))
            }
        },
        _ => {
            return Err((
                cond.pos,
                "loop condition is not an induction-variable comparison".to_string(),
            ))
        }
    };

    let Some(entry) = env.get(&slot).copied() else {
        return Err((
            cond.pos,
            "induction variable has no known constant entry value".to_string(),
        ));
    };

    // Exactly one store to the induction variable, stepping it by a
    // nonzero constant. It must run on every iteration: either it is the
    // loop step (which `continue` still reaches), or it is a top-level
    // body statement in a body with no `continue`.
    let delta = find_affine_step(slot, step, body, &invariant, cond.pos)?;

    let trips = trip_count(op, entry as i128, limit as i128, delta as i128).ok_or_else(|| {
        (
            cond.pos,
            format!("induction from {entry} step {delta} never crosses limit {limit}"),
        )
    })?;

    // Cost the body/step with invariant-only facts (nested loops may
    // rely on them; mutated slots must not be trusted).
    let mut inner = invariant.clone();
    let body_cost = cost_stmts(body, &mut inner)?;
    let step_cost = match step {
        Some(step) => cost_stmt(step, &mut inner)?,
        None => 0,
    };

    // T trips execute: (T+1) condition checks (+JumpIfFalse), T bodies,
    // T steps, T back-edge Jumps.
    let per_check = expr_cost(cond).saturating_add(1);
    let per_iter = body_cost.saturating_add(step_cost).saturating_add(1);
    let total = init_cost
        .saturating_add(per_check.saturating_mul(trips.saturating_add(1)))
        .saturating_add(per_iter.saturating_mul(trips));

    // After the loop, only invariant facts survive.
    env.retain(|slot, _| !assigned.contains(slot));
    Ok(total)
}

/// Find the single affine step of the induction variable and return its
/// per-iteration delta.
fn find_affine_step(
    slot: u16,
    step: Option<&RStmt>,
    body: &[RStmt],
    invariant: &ConstEnv,
    cond_pos: Pos,
) -> Result<i64, Unbound> {
    let mut stores_in_body = BTreeSet::new();
    collect_stores(body, &mut stores_in_body);
    let mut stores_in_step = BTreeSet::new();
    if let Some(step) = step {
        collect_stores(std::slice::from_ref(step), &mut stores_in_step);
    }
    let in_body = stores_in_body.contains(&slot);
    let in_step = stores_in_step.contains(&slot);

    let candidate: &RStmt = match (in_step, in_body) {
        (true, false) => step.expect("store set nonempty implies step present"),
        (false, true) => {
            if contains_continue(body) {
                return Err((
                    cond_pos,
                    "`continue` may skip the induction-variable update".to_string(),
                ));
            }
            // Must be a top-level statement of the body (not conditional).
            body.iter()
                .find(|s| matches!(&s.kind, RStmtKind::Store { slot: st, .. } if *st == slot))
                .ok_or_else(|| {
                    (
                        cond_pos,
                        "induction-variable update is conditional".to_string(),
                    )
                })?
        }
        (true, true) => {
            return Err((
                cond_pos,
                "induction variable is updated more than once per iteration".to_string(),
            ))
        }
        (false, false) => {
            return Err((
                cond_pos,
                "loop condition reads a variable the loop never updates".to_string(),
            ))
        }
    };
    // The update must be the only store to the slot inside its container;
    // count them.
    let mut count = 0usize;
    count_stores_to(body, slot, &mut count);
    if let Some(step) = step {
        count_stores_to(std::slice::from_ref(step), slot, &mut count);
    }
    if count != 1 {
        return Err((
            cond_pos,
            "induction variable is updated more than once per iteration".to_string(),
        ));
    }

    let RStmtKind::Store {
        value, truncate, ..
    } = &candidate.kind
    else {
        return Err((
            cond_pos,
            "induction-variable update is not a store".to_string(),
        ));
    };
    if *truncate {
        return Err((
            candidate.pos,
            "induction variable is stepped through a float truncation".to_string(),
        ));
    }
    let delta = match &value.kind {
        RExprKind::Binary(BinOp::Add, l, r) => match (&l.kind, &r.kind) {
            (RExprKind::Local(s), _) if *s == slot => eval_const(r, invariant),
            (_, RExprKind::Local(s)) if *s == slot => eval_const(l, invariant),
            _ => None,
        },
        RExprKind::Binary(BinOp::Sub, l, r) => match &l.kind {
            RExprKind::Local(s) if *s == slot => eval_const(r, invariant).map(|v| -v),
            _ => None,
        },
        _ => None,
    };
    match delta {
        Some(d) if d != 0 => Ok(d),
        Some(_) => Err((
            candidate.pos,
            "induction variable is stepped by zero".to_string(),
        )),
        None => Err((
            candidate.pos,
            "induction-variable update is not `var = var +/- constant`".to_string(),
        )),
    }
}

/// Trip count of `for (s = entry; s OP limit; s += delta)`, or `None`
/// when the loop provably never terminates (or could only terminate by
/// wrapping, which the magnitude guard excludes).
fn trip_count(op: BinOp, entry: i128, limit: i128, delta: i128) -> Option<u64> {
    if entry.abs() > AFFINE_MAG || limit.abs() > AFFINE_MAG || delta.abs() > AFFINE_MAG {
        return None;
    }
    let t = |x: i128| -> Option<u64> { u64::try_from(x.max(0)).ok() };
    let ceil_div = |a: i128, b: i128| (a + b - 1) / b;
    match op {
        BinOp::Lt => {
            if entry >= limit {
                Some(0)
            } else if delta > 0 {
                t(ceil_div(limit - entry, delta))
            } else {
                None
            }
        }
        BinOp::Le => {
            if entry > limit {
                Some(0)
            } else if delta > 0 {
                t((limit - entry) / delta + 1)
            } else {
                None
            }
        }
        BinOp::Gt => {
            if entry <= limit {
                Some(0)
            } else if delta < 0 {
                t(ceil_div(entry - limit, -delta))
            } else {
                None
            }
        }
        BinOp::Ge => {
            if entry < limit {
                Some(0)
            } else if delta < 0 {
                t((entry - limit) / (-delta) + 1)
            } else {
                None
            }
        }
        BinOp::Ne => {
            let diff = limit - entry;
            if diff == 0 {
                Some(0)
            } else if diff % delta == 0 && diff / delta > 0 {
                t(diff / delta)
            } else {
                None
            }
        }
        BinOp::Eq => Some(u64::from(entry == limit)),
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn collect_stores(stmts: &[RStmt], out: &mut BTreeSet<u16>) {
    for s in stmts {
        match &s.kind {
            RStmtKind::Store { slot, .. } => {
                out.insert(*slot);
            }
            RStmtKind::If { then, else_, .. } => {
                collect_stores(then, out);
                collect_stores(else_, out);
            }
            RStmtKind::Loop {
                init, step, body, ..
            } => {
                if let Some(init) = init {
                    collect_stores(std::slice::from_ref(init), out);
                }
                if let Some(step) = step {
                    collect_stores(std::slice::from_ref(step), out);
                }
                collect_stores(body, out);
            }
            RStmtKind::Block(body) => collect_stores(body, out),
            _ => {}
        }
    }
}

fn count_stores_to(stmts: &[RStmt], slot: u16, out: &mut usize) {
    for s in stmts {
        match &s.kind {
            RStmtKind::Store { slot: st, .. } if *st == slot => {
                *out += 1;
            }
            RStmtKind::If { then, else_, .. } => {
                count_stores_to(then, slot, out);
                count_stores_to(else_, slot, out);
            }
            RStmtKind::Loop {
                init, step, body, ..
            } => {
                if let Some(init) = init {
                    count_stores_to(std::slice::from_ref(init), slot, out);
                }
                if let Some(step) = step {
                    count_stores_to(std::slice::from_ref(step), slot, out);
                }
                count_stores_to(body, slot, out);
            }
            RStmtKind::Block(body) => count_stores_to(body, slot, out),
            _ => {}
        }
    }
}

fn contains_continue(stmts: &[RStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        RStmtKind::Continue => true,
        RStmtKind::If { then, else_, .. } => contains_continue(then) || contains_continue(else_),
        RStmtKind::Block(body) => contains_continue(body),
        // `continue` inside a nested loop targets that loop, not ours.
        _ => false,
    })
}

/// Evaluate an integer-constant expression under known slot constants.
fn eval_const(e: &RExpr, env: &ConstEnv) -> Option<i64> {
    match &e.kind {
        RExprKind::ConstI(v) => Some(*v),
        RExprKind::Local(slot) => env.get(slot).copied(),
        RExprKind::Unary(crate::ast::UnOp::Neg, inner) => {
            eval_const(inner, env).map(i64::wrapping_neg)
        }
        RExprKind::Binary(op, l, r) => {
            let a = eval_const(l, env)?;
            let b = eval_const(r, env)?;
            match op {
                BinOp::Add => Some(a.wrapping_add(b)),
                BinOp::Sub => Some(a.wrapping_sub(b)),
                BinOp::Mul => Some(a.wrapping_mul(b)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Worst-case instruction count of evaluating an expression, matching
/// the bytecode compiler's emission op for op.
pub fn expr_cost(e: &RExpr) -> u64 {
    match &e.kind {
        RExprKind::ConstI(_) | RExprKind::ConstF(_) | RExprKind::Local(_) => 1,
        RExprKind::InputField(index, _) => expr_cost(index).saturating_add(1),
        RExprKind::Unary(_, inner) => expr_cost(inner).saturating_add(1),
        RExprKind::Binary(op, l, r) => {
            let base = expr_cost(l).saturating_add(expr_cost(r));
            match op {
                // Worst path: lhs, peek-jump, pop, rhs, truthy.
                BinOp::And | BinOp::Or => base.saturating_add(3),
                _ => base.saturating_add(1),
            }
        }
    }
}
