//! Effect analysis: output write-set, state-dependence, and the memo
//! classification that gates the publisher's shared-filter memo.
//!
//! The VM itself is a pure function of its inputs — a filter cannot
//! touch anything outside its locals and output slots. The *only*
//! per-subscriber state a publisher feeds in is each metric's
//! `last_value_sent`, which differs between subscribers of the same
//! channel. Sharing one VM run across subscribers (the per-poll memo in
//! d-mon) is therefore sound exactly when the output is provably
//! independent of that field. This pass proves it, or refuses to.
//!
//! Three classes fall out of the walk:
//!
//! * [`MemoClass::Shared`] — the filter neither reads
//!   `last_value_sent` nor emits whole records (a whole-record emit
//!   copies the per-subscriber field into the output). Its result is
//!   identical for every subscriber within a poll, so one run keyed on
//!   the source fingerprint alone serves them all.
//! * [`MemoClass::SnapshotKeyed`] — the filter emits whole records but
//!   never *reads* `last_value_sent`: its decisions are shared, but the
//!   emitted bytes embed per-subscriber state, so a shared run is sound
//!   only under full input-snapshot equality.
//! * [`MemoClass::Bypass`] — the filter reads or writes
//!   `last_value_sent`; its behaviour is genuinely per-subscriber and
//!   the memo must be bypassed entirely.
//!
//! The walk is conservative: any syntactic occurrence counts, reachable
//! or not. A dead `last_value_sent` read costs sharing, never
//! soundness.

use super::MetricSet;
use crate::ast::Field;
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};

/// How a publisher may share one evaluation of this filter across the
/// subscribers that deployed identical source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoClass {
    /// Output provably independent of per-subscriber state: share on
    /// the source fingerprint alone.
    Shared,
    /// Decisions are state-independent but emitted records copy
    /// per-subscriber state: share only under input-snapshot equality.
    SnapshotKeyed,
    /// Reads or writes per-subscriber state: never share.
    Bypass,
}

impl MemoClass {
    /// Human-readable label (shell `lint` output).
    pub fn label(self) -> &'static str {
        match self {
            MemoClass::Shared => "shared",
            MemoClass::SnapshotKeyed => "snapshot-keyed",
            MemoClass::Bypass => "per-subscriber",
        }
    }
}

/// What a filter can do to the world, as proven by the static walk.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectSummary {
    /// Output slot indices the filter may write (`output[i] = ...` and
    /// `output[i].field = ...`). [`MetricSet::All`] when any slot index
    /// is not a compile-time constant.
    pub writes: MetricSet,
    /// Reads `input[...].last_value_sent` somewhere.
    pub reads_last_sent: bool,
    /// Writes `output[...].last_value_sent` somewhere.
    pub writes_last_sent: bool,
    /// Emits a whole input record (`output[i] = input[j];`), which
    /// copies the per-subscriber `last_value_sent` field verbatim.
    pub copies_records: bool,
    /// The sharing verdict derived from the flags above.
    pub memo: MemoClass,
}

impl EffectSummary {
    /// True when the memo may serve this filter at all (any class but
    /// [`MemoClass::Bypass`]). Mirrored as `FilterCert::memo_safe`.
    pub fn memo_safe(&self) -> bool {
        self.memo != MemoClass::Bypass
    }

    /// True when repeated evaluation against the same snapshot is
    /// indistinguishable from a single one. Every filter is — the VM
    /// holds no persistent state — but the flag is part of the
    /// certificate so the deploy layer asserts it rather than assumes
    /// it.
    pub fn idempotent(&self) -> bool {
        true
    }
}

/// Scan a folded program for its effect summary.
pub fn scan(prog: &RProgram) -> EffectSummary {
    let mut scanner = Scanner {
        writes: MetricSet::empty(),
        reads_last_sent: false,
        writes_last_sent: false,
        copies_records: false,
    };
    scanner.stmts(&prog.body);
    let memo = if scanner.reads_last_sent || scanner.writes_last_sent {
        MemoClass::Bypass
    } else if scanner.copies_records {
        MemoClass::SnapshotKeyed
    } else {
        MemoClass::Shared
    };
    EffectSummary {
        writes: scanner.writes,
        reads_last_sent: scanner.reads_last_sent,
        writes_last_sent: scanner.writes_last_sent,
        copies_records: scanner.copies_records,
        memo,
    }
}

struct Scanner {
    writes: MetricSet,
    reads_last_sent: bool,
    writes_last_sent: bool,
    copies_records: bool,
}

impl Scanner {
    fn stmts(&mut self, stmts: &[RStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &RStmt) {
        match &stmt.kind {
            RStmtKind::Store { value, .. } => self.expr(value),
            RStmtKind::OutputRecord { index, input_index } => {
                self.copies_records = true;
                self.write_index(index);
                self.expr(input_index);
            }
            RStmtKind::OutputField {
                index,
                field,
                value,
            } => {
                if *field == Field::LastValueSent {
                    self.writes_last_sent = true;
                }
                self.write_index(index);
                self.expr(value);
            }
            RStmtKind::If { cond, then, else_ } => {
                self.expr(cond);
                self.stmts(then);
                self.stmts(else_);
            }
            RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                if let Some(cond) = cond {
                    self.expr(cond);
                }
                if let Some(step) = step {
                    self.stmt(step);
                }
                self.stmts(body);
            }
            RStmtKind::Return(value) => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            RStmtKind::Break | RStmtKind::Continue => {}
            RStmtKind::Block(body) => self.stmts(body),
        }
    }

    fn expr(&mut self, e: &RExpr) {
        match &e.kind {
            RExprKind::ConstI(_) | RExprKind::ConstF(_) | RExprKind::Local(_) => {}
            RExprKind::InputField(index, field) => {
                if *field == Field::LastValueSent {
                    self.reads_last_sent = true;
                }
                self.expr(index);
            }
            RExprKind::Binary(_, l, r) => {
                self.expr(l);
                self.expr(r);
            }
            RExprKind::Unary(_, inner) => self.expr(inner),
        }
    }

    /// Record a write to `output[index]`.
    fn write_index(&mut self, index: &RExpr) {
        match index.kind {
            RExprKind::ConstI(v) if v >= 0 => self.writes.insert(v as usize),
            _ => {
                self.writes.make_all();
                self.expr(index);
            }
        }
    }
}
