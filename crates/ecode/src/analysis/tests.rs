use super::*;
use crate::filter::{fig3_env, EnvSpec, MetricRecord, FIG3_SOURCE};
use crate::opt::fold_program;
use crate::parser::parse;
use crate::sema::analyze;
use crate::vm;

fn env() -> EnvSpec {
    EnvSpec::new(["A", "B", "C"])
}

fn resolved(src: &str) -> RProgram {
    analyze(&parse(src).unwrap(), &env()).unwrap()
}

fn lints(src: &str) -> Vec<Diagnostic> {
    lint(&resolved(src))
}

fn deploy_cert(src: &str) -> FilterCert {
    let unfolded = resolved(src);
    let folded = fold_program(unfolded.clone());
    analyze_for_deploy(&unfolded, &folded)
}

fn find(diags: &[Diagnostic], kind: LintKind) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.kind == kind).collect()
}

// ---- dataflow lints -------------------------------------------------

#[test]
fn use_before_init_flagged_with_span() {
    let src =
        "{ int x;\n  if (input[A].value > 1) { x = 1; }\n  int y = x;\n  output[0] = input[A]; }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::UseBeforeInit);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].pos.line, 3, "the read of x is on line 3");
    assert!(hits[0].message.contains("`x`"), "{}", hits[0].message);
}

#[test]
fn initialized_on_all_paths_is_clean() {
    let src = "{ int x;\n  if (input[A].value > 1) { x = 1; } else { x = 2; }\n  output[0] = input[A];\n  output[0].value = x; }";
    assert!(find(&lints(src), LintKind::UseBeforeInit).is_empty());
}

#[test]
fn assignment_before_read_is_clean() {
    let src = "{ int x; x = 5; output[0] = input[A]; output[0].value = x; }";
    assert!(find(&lints(src), LintKind::UseBeforeInit).is_empty());
}

#[test]
fn unreachable_after_return_flagged_with_span() {
    let src = "{ output[0] = input[A];\n  return 1;\n  output[1] = input[B]; }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::UnreachableCode);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].pos.line, 3);
}

#[test]
fn unreachable_region_reported_once() {
    let src = "{ output[0] = input[A];\n  return 1;\n  int a = 1;\n  int b = 2;\n  a = b; }";
    let hits_count = find(&lints(src), LintKind::UnreachableCode).len();
    assert_eq!(hits_count, 1, "one report per unreachable region");
}

#[test]
fn code_after_infinite_loop_is_unreachable() {
    let src = "{ while (1) { output[0] = input[A]; }\n  output[1] = input[B]; }";
    let hits = find(&lints(src), LintKind::UnreachableCode).len();
    assert_eq!(hits, 1);
}

#[test]
fn dead_store_flagged_with_span() {
    let src = "{ int x = 1;\n  x = 2;\n  output[0] = input[A];\n  output[0].value = x; }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::DeadStore);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].pos.line, 1, "the overwritten store is on line 1");
    assert_eq!(hits[0].severity, Severity::Note);
}

#[test]
fn store_read_on_one_path_is_not_dead() {
    let src = "{ int x = 1;\n  if (input[A].value > 1) { output[0] = input[A]; output[0].value = x; }\n  x = 2;\n  output[1] = input[B];\n  output[1].value = x; }";
    assert!(find(&lints(src), LintKind::DeadStore).is_empty());
}

#[test]
fn store_reaching_program_end_is_not_dead() {
    // The trailing `i = i + 1` never gets read again, but it survives to
    // program exit — flagging it would make Figure 3 noisy.
    let src = "{ int i = 0; output[0] = input[A]; i = i + 1; }";
    assert!(find(&lints(src), LintKind::DeadStore).is_empty());
}

#[test]
fn never_emits_flagged() {
    let diags = lints("{ int x = 1; x = x + 1; }");
    assert_eq!(find(&diags, LintKind::NeverEmits).len(), 1);
}

#[test]
fn emitting_filter_not_flagged() {
    let diags = lints("{ output[0] = input[A]; }");
    assert!(find(&diags, LintKind::NeverEmits).is_empty());
}

#[test]
fn emit_only_in_dead_branch_still_counts_as_never_emits() {
    let diags = lints("{ if (0) { output[0] = input[A]; } }");
    assert_eq!(find(&diags, LintKind::NeverEmits).len(), 1, "{diags:?}");
}

// ---- interval lints -------------------------------------------------

#[test]
fn derived_constant_condition_flagged_with_span() {
    let src = "{ int x = 5;\n  if (x > 3) { output[0] = input[A]; } }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::ConstantCondition);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].pos.line, 2);
    assert!(
        hits[0].message.contains("always true"),
        "{}",
        hits[0].message
    );
}

#[test]
fn always_false_condition_flagged() {
    let src = "{ int x = 1; int y = 2;\n  if (x + 1 > y + 5) { output[0] = input[A]; } }";
    let hits_msgs: Vec<String> = find(&lints(src), LintKind::ConstantCondition)
        .iter()
        .map(|d| d.message.clone())
        .collect();
    assert_eq!(hits_msgs.len(), 1);
    assert!(hits_msgs[0].contains("always false"));
}

#[test]
fn data_dependent_condition_not_flagged() {
    let src = "{ if (input[A].value > 2) { output[0] = input[A]; } }";
    assert!(find(&lints(src), LintKind::ConstantCondition).is_empty());
}

#[test]
fn loop_modified_variable_not_assumed_constant() {
    // i changes in the loop; `if (i > 2)` inside must not be "constant".
    let src = "{ for (int i = 0; i < 5; i = i + 1) { if (i > 2) { output[0] = input[A]; } } }";
    assert!(find(&lints(src), LintKind::ConstantCondition).is_empty());
}

#[test]
fn literal_division_by_zero_is_warning_with_span() {
    let src = "{ output[0] = input[A];\n  int x = 7 / 0;\n  output[0].value = x; }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::PossibleDivisionByZero);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].pos.line, 2);
}

#[test]
fn zero_containing_range_divisor_is_note() {
    let src = "{ int n = 0;\n  if (input[A].value > 1) { n = 2; }\n  int y = 4 / n;\n  output[0] = input[A];\n  output[0].value = y; }";
    let diags = lints(src);
    let hits = find(&diags, LintKind::PossibleDivisionByZero);
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].severity, Severity::Note);
    assert_eq!(hits[0].pos.line, 3);
}

#[test]
fn nonzero_divisor_not_flagged() {
    let src = "{ int n = 2;\n  if (input[A].value > 1) { n = 4; }\n  int y = 8 / n;\n  output[0] = input[A];\n  output[0].value = y; }";
    assert!(find(&lints(src), LintKind::PossibleDivisionByZero).is_empty());
}

#[test]
fn float_division_by_zero_not_flagged() {
    // The VM's float lane divides by zero without error (IEEE inf).
    let src = "{ double d = 1.0 / 0.0; output[0] = input[A]; output[0].value = d; }";
    assert!(find(&lints(src), LintKind::PossibleDivisionByZero).is_empty());
}

#[test]
fn fig3_lints_clean() {
    let p = analyze(&parse(FIG3_SOURCE).unwrap(), &fig3_env()).unwrap();
    let diags = lint(&p);
    assert!(diags.is_empty(), "Figure 3 must lint clean: {diags:?}");
}

// ---- cost certification ---------------------------------------------

/// Worst-case observed instruction count must never exceed the bound.
fn assert_bound_covers(src: &str, env: &EnvSpec, input_sets: &[Vec<MetricRecord>]) -> u64 {
    let unfolded = analyze(&parse(src).unwrap(), env).unwrap();
    let folded = fold_program(unfolded);
    let cert = certify(&folded);
    let bound = cert
        .bound()
        .unwrap_or_else(|| panic!("{src} must certify: {:?}", cert.cost));
    let chunk = crate::bytecode::compile(&folded);
    for inputs in input_sets {
        let out = vm::run(&chunk, inputs, bound.max(1))
            .unwrap_or_else(|e| panic!("certified filter failed under its own bound: {e} ({src})"));
        assert!(
            out.instructions() <= bound,
            "{src}: executed {} > bound {bound}",
            out.instructions()
        );
    }
    bound
}

fn abc_inputs() -> Vec<Vec<MetricRecord>> {
    vec![
        vec![
            MetricRecord::new(0, 0.0),
            MetricRecord::new(1, 0.0),
            MetricRecord::new(2, 0.0),
        ],
        vec![
            MetricRecord::new(0, 100.0),
            MetricRecord::new(1, -3.0),
            MetricRecord::new(2, 7.5),
        ],
    ]
}

#[test]
fn straight_line_bound_is_exact() {
    let src = "{ int x = 1; output[0] = input[A]; }";
    let folded = fold_program(resolved(src));
    let cert = certify(&folded);
    // ConstI, Store, ConstI, ConstI, EmitRecord, ReturnVoid = 6.
    assert_eq!(cert.bound(), Some(6));
}

#[test]
fn for_loop_bound_covers_execution() {
    let src = "{ int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } output[0] = input[A]; output[0].value = s; }";
    assert_bound_covers(src, &env(), &abc_inputs());
}

#[test]
fn while_loop_with_affine_induction_certifies() {
    let src = "{ int i = 0; while (i < 3) { output[i] = input[i]; i = i + 1; } }";
    assert_bound_covers(src, &env(), &abc_inputs());
}

#[test]
fn countdown_loop_certifies() {
    let src = "{ int i = 3; while (i > 0) { i = i - 1; } output[0] = input[A]; }";
    assert_bound_covers(src, &env(), &abc_inputs());
}

#[test]
fn nested_loops_multiply() {
    let src = "{ int s = 0; for (int i = 0; i < 4; i = i + 1) { for (int j = 0; j < 5; j = j + 1) { s = s + 1; } } output[0] = input[A]; output[0].value = s; }";
    let bound = assert_bound_covers(src, &env(), &abc_inputs());
    assert!(bound >= 20, "at least the 4x5 inner bodies: {bound}");
}

#[test]
fn loop_limit_from_earlier_constant_certifies() {
    let src = "{ int n = 6; int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + 1; } output[0] = input[A]; output[0].value = s; }";
    assert_bound_covers(src, &env(), &abc_inputs());
}

#[test]
fn continue_with_step_update_certifies() {
    let src = "{ int s = 0; for (int i = 0; i < 6; i = i + 1) { if (i % 2 == 0) { continue; } s = s + 1; } output[0] = input[A]; output[0].value = s; }";
    assert_bound_covers(src, &env(), &abc_inputs());
}

#[test]
fn fig3_certifies_within_default_budget() {
    let unfolded = analyze(&parse(FIG3_SOURCE).unwrap(), &fig3_env()).unwrap();
    let folded = fold_program(unfolded);
    let cert = certify(&folded);
    let bound = cert.bound().expect("Figure 3 must certify");
    assert!(
        bound <= vm::DEFAULT_BUDGET,
        "Figure 3 bound {bound} must fit the default budget"
    );
    assert!(cert.admission_error(vm::DEFAULT_BUDGET).is_none());
    // And the bound covers real executions, including the all-clauses-fire
    // case.
    let chunk = crate::bytecode::compile(&fold_program(
        analyze(&parse(FIG3_SOURCE).unwrap(), &fig3_env()).unwrap(),
    ));
    let busy = [
        MetricRecord::new(0, 9.0),
        MetricRecord::new(1, 99_999.0),
        MetricRecord::new(2, 1e6),
        MetricRecord::new(3, 1e9),
    ];
    let out = vm::run(&chunk, &busy, bound).unwrap();
    assert!(out.instructions() <= bound);
}

#[test]
fn infinite_while_is_unbounded_with_position() {
    let src = "{\n  while (1) { }\n}";
    let folded = fold_program(resolved(src));
    let cert = certify(&folded);
    let CostBound::Unbounded { pos, reason } = &cert.cost else {
        panic!("while(1) must not certify");
    };
    assert_eq!(pos.line, 2);
    assert!(reason.contains("constant"), "{reason}");
    assert!(cert.admission_error(vm::DEFAULT_BUDGET).is_some());
}

#[test]
fn conditional_induction_update_is_unbounded() {
    let src = "{ int i = 0; while (i < 10) { if (input[A].value > 1) { i = i + 1; } } }";
    assert!(!deploy_cert(src).is_certified());
}

#[test]
fn continue_skipping_body_update_is_unbounded() {
    let src = "{ int i = 0; while (i < 10) { if (input[A].value > 1) { continue; } i = i + 1; } }";
    assert!(!deploy_cert(src).is_certified());
}

#[test]
fn wrong_direction_step_is_unbounded() {
    let src = "{ for (int i = 0; i < 10; i = i - 1) { } }";
    assert!(!deploy_cert(src).is_certified());
}

#[test]
fn non_constant_limit_is_unbounded() {
    let src = "{ int i = 0; while (i < input[A].id) { i = i + 1; } }";
    assert!(!deploy_cert(src).is_certified());
}

#[test]
fn zero_trip_loop_certifies_cheap() {
    let src = "{ for (int i = 5; i < 5; i = i + 1) { output[0] = input[A]; } }";
    let folded = fold_program(resolved(src));
    let cert = certify(&folded);
    let bound = cert.bound().expect("zero-trip loop is bounded");
    // init + one condition check + jump bookkeeping + final return only.
    assert!(bound < 12, "{bound}");
}

#[test]
fn over_budget_bound_is_rejected_by_admission() {
    // 5000 iterations: bounded (~65k ops), but far beyond a budget of 100.
    let src =
        "{ int s = 0; for (int i = 0; i < 5000; i = i + 1) { s = s + 1; } output[0] = input[A]; }";
    let cert = deploy_cert(src);
    assert!(cert.is_certified());
    let err = cert.admission_error(100).expect("must exceed budget 100");
    assert!(err.contains("exceeds"), "{err}");
    assert!(cert.admission_error(vm::DEFAULT_BUDGET).is_none());
}

// ---- read sets ------------------------------------------------------

#[test]
fn fig3_read_set_is_all_four_metrics() {
    let folded = fold_program(analyze(&parse(FIG3_SOURCE).unwrap(), &fig3_env()).unwrap());
    let cert = certify(&folded);
    assert!(cert.emits);
    let MetricSet::Fixed(s) = &cert.reads else {
        panic!("Figure 3 indices are constants");
    };
    let got: Vec<usize> = s.iter().copied().collect();
    assert_eq!(got, vec![0, 1, 2, 3]);
}

#[test]
fn partial_read_set_lists_only_touched_metrics() {
    let src = "{ if (input[C].value > 2) { output[0] = input[C]; } }";
    let cert = deploy_cert(src);
    assert!(cert.reads.contains(2));
    assert!(!cert.reads.contains(0));
    assert!(!cert.reads.contains(1));
}

#[test]
fn dynamic_index_collapses_to_all() {
    let src = "{ for (int i = 0; i < 3; i = i + 1) { output[i] = input[i]; } }";
    let cert = deploy_cert(src);
    assert_eq!(cert.reads, MetricSet::All);
    assert!(cert.reads.contains(17));
}

#[test]
fn no_input_reads_is_empty_set() {
    let cert = deploy_cert("{ int x = 1; x = x + 1; }");
    assert_eq!(cert.reads, MetricSet::empty());
    assert!(!cert.reads.contains(0));
    assert!(!cert.emits);
}

#[test]
fn dead_branch_reads_drop_out_after_folding() {
    // Certification runs on the folded program: the read inside `if (0)`
    // is gone, so the read set is empty.
    let cert = deploy_cert("{ if (0) { output[0] = input[B]; } }");
    assert_eq!(cert.reads, MetricSet::empty());
    assert!(!cert.emits);
}

// ---- plumbing -------------------------------------------------------

#[test]
fn diagnostics_sorted_and_deduped() {
    let src = "{ int x = 1; x = 2;\n  if (0) { output[0] = input[A]; } }";
    let diags = lints(src);
    for w in diags.windows(2) {
        assert!(
            (w[0].pos.line, w[0].pos.col) <= (w[1].pos.line, w[1].pos.col),
            "sorted by position"
        );
    }
}

#[test]
fn diagnostic_display_format() {
    let d = Diagnostic {
        pos: Pos::new(3, 7),
        kind: LintKind::DeadStore,
        severity: Severity::Note,
        message: "value stored to `x` is overwritten".to_string(),
    };
    let s = d.to_string();
    assert!(s.contains("note[dead-store]"), "{s}");
    assert!(s.contains("3:7"), "{s}");
}

#[test]
fn cert_attached_by_filter_compile() {
    let f = crate::Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
    assert!(f.cert().is_certified());
    assert!(f.cert().emits);
    assert!(f.cert().diagnostics.is_empty());
}

// ---- effect pass ----------------------------------------------------

#[test]
fn pure_non_emitting_filter_is_shared_class() {
    let cert = deploy_cert("{ int x = 0; if (input[A].value > 1) { x = 2; } }");
    assert!(cert.memo_safe);
    assert_eq!(cert.effects.memo, MemoClass::Shared);
    assert!(!cert.effects.reads_last_sent);
    assert!(!cert.effects.copies_records);
    assert_eq!(cert.effects.writes, MetricSet::empty());
    assert!(cert.effects.idempotent());
}

#[test]
fn record_emitting_filter_is_snapshot_keyed() {
    let cert = deploy_cert("{ if (input[A].value > 1) { output[0] = input[A]; } }");
    assert!(cert.memo_safe);
    assert_eq!(cert.effects.memo, MemoClass::SnapshotKeyed);
    assert!(cert.effects.copies_records);
    let MetricSet::Fixed(writes) = &cert.effects.writes else {
        panic!("constant slot index should stay fixed");
    };
    assert_eq!(writes.iter().copied().collect::<Vec<_>>(), vec![0]);
}

#[test]
fn last_value_sent_read_forces_bypass() {
    let cert =
        deploy_cert("{ if (input[A].value > input[A].last_value_sent) { output[0] = input[A]; } }");
    assert!(!cert.memo_safe);
    assert_eq!(cert.effects.memo, MemoClass::Bypass);
    assert!(cert.effects.reads_last_sent);
}

#[test]
fn last_value_sent_write_forces_bypass() {
    let cert = deploy_cert("{ output[0] = input[A]; output[0].last_value_sent = 5.0; }");
    assert!(!cert.memo_safe);
    assert!(cert.effects.writes_last_sent);
    assert!(!cert.effects.reads_last_sent);
}

#[test]
fn never_taken_last_value_sent_read_still_forces_bypass() {
    // Conservative: a syntactic occurrence in the folded program
    // suffices; the pass never reasons about which branches run. (A
    // constant-false branch is different — the folder erases it before
    // certification, and with it the read.)
    let cert = deploy_cert("{ if (input[B].value > 1e18) { int x = input[A].last_value_sent; } }");
    assert!(!cert.memo_safe);
}

#[test]
fn dynamic_output_slot_collapses_write_set() {
    let cert = deploy_cert("{ int i; for (i = 0; i < 2; i = i + 1) { output[i] = input[A]; } }");
    assert_eq!(cert.effects.writes, MetricSet::All);
    assert_eq!(cert.effects.memo, MemoClass::SnapshotKeyed);
}

#[test]
fn fig3_is_bypass_class() {
    // Figure 3's CACHE_MISS clause compares against last_value_sent, so
    // the whole filter is per-subscriber.
    let f = crate::Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
    assert!(!f.cert().memo_safe);
    assert_eq!(f.cert().effects.memo, MemoClass::Bypass);
}

#[test]
fn output_field_value_read_of_state_is_caught() {
    // The state read hides inside an output-field value expression.
    let cert = deploy_cert("{ output[0] = input[A]; output[0].value = input[B].last_value_sent; }");
    assert!(!cert.memo_safe);
    assert!(cert.effects.reads_last_sent);
}
