//! CFG-based dataflow lints: use-before-init (reaching synthetic
//! definitions), unreachable code, dead stores (backward liveness), and
//! never-emits.

use std::collections::BTreeSet;

use super::cfg::Cfg;
use super::{Diagnostic, LintKind, Severity};
use crate::sema::RProgram;
use crate::token::Pos;

/// Run every dataflow lint and collect the findings.
pub fn lint(prog: &RProgram, cfg: &Cfg) -> Vec<Diagnostic> {
    let reachable = cfg.reachable();
    let mut diags = Vec::new();
    unreachable_code(cfg, &reachable, &mut diags);
    use_before_init(prog, cfg, &reachable, &mut diags);
    dead_stores(prog, cfg, &reachable, &mut diags);
    never_emits(cfg, &reachable, &mut diags);
    diags
}

fn slot_name(prog: &RProgram, slot: u16) -> &str {
    prog.slot_names
        .get(slot as usize)
        .map_or("?", String::as_str)
}

/// Report the frontier of unreachable blocks: unreachable, non-empty,
/// and with no unreachable predecessor (so one region = one report).
fn unreachable_code(cfg: &Cfg, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let preds = cfg.preds();
    for (id, block) in cfg.blocks.iter().enumerate() {
        if reachable[id] || block.atoms.is_empty() {
            continue;
        }
        if preds[id]
            .iter()
            .any(|&p| !reachable[p] && !cfg.blocks[p].atoms.is_empty())
        {
            continue;
        }
        diags.push(Diagnostic {
            pos: block.atoms[0].pos,
            kind: LintKind::UnreachableCode,
            severity: Severity::Warning,
            message: "statement can never execute".to_string(),
        });
    }
}

/// Forward may-analysis: which slots still hold their implicit zero
/// (their *synthetic* store is a reaching definition). A read of such a
/// slot is a use-before-init.
fn use_before_init(prog: &RProgram, cfg: &Cfg, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len();
    let mut out: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); n];
    let transfer = |input: &BTreeSet<u16>, id: usize| -> BTreeSet<u16> {
        let mut state = input.clone();
        for atom in &cfg.blocks[id].atoms {
            if let Some((slot, synthetic)) = atom.write {
                if synthetic {
                    state.insert(slot);
                } else {
                    state.remove(&slot);
                }
            }
        }
        state
    };
    let preds = cfg.preds();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if !reachable[id] {
                continue;
            }
            let mut input = BTreeSet::new();
            for &p in &preds[id] {
                input.extend(out[p].iter().copied());
            }
            let new_out = transfer(&input, id);
            if new_out != out[id] {
                out[id] = new_out;
                changed = true;
            }
        }
    }
    // Final pass: walk each reachable block from its in-state and flag
    // reads of still-synthetic slots.
    for id in 0..n {
        if !reachable[id] {
            continue;
        }
        let mut state = BTreeSet::new();
        for &p in &preds[id] {
            state.extend(out[p].iter().copied());
        }
        for atom in &cfg.blocks[id].atoms {
            for &slot in &atom.reads {
                if state.contains(&slot) {
                    diags.push(Diagnostic {
                        pos: atom.pos,
                        kind: LintKind::UseBeforeInit,
                        severity: Severity::Warning,
                        message: format!(
                            "variable `{}` may be read before it is assigned (it still holds the implicit zero)",
                            slot_name(prog, slot)
                        ),
                    });
                }
            }
            if let Some((slot, synthetic)) = atom.write {
                if synthetic {
                    state.insert(slot);
                } else {
                    state.remove(&slot);
                }
            }
        }
    }
}

/// Backward may-analyses: `live` = slot may be read before its next
/// redefinition; `escapes` = slot may reach program exit without being
/// redefined. A non-synthetic store to a slot that is neither live nor
/// escaping is guaranteed to be overwritten before any read.
fn dead_stores(prog: &RProgram, cfg: &Cfg, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len();
    let all: BTreeSet<u16> = (0..prog.n_locals).collect();
    let mut inb: Vec<(BTreeSet<u16>, BTreeSet<u16>)> = vec![Default::default(); n];
    inb[cfg.exit] = (BTreeSet::new(), all);
    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..n).rev() {
            if id == cfg.exit {
                continue;
            }
            let mut live = BTreeSet::new();
            let mut escapes = BTreeSet::new();
            for &s in &cfg.blocks[id].succs {
                live.extend(inb[s].0.iter().copied());
                escapes.extend(inb[s].1.iter().copied());
            }
            for atom in cfg.blocks[id].atoms.iter().rev() {
                if let Some((slot, _)) = atom.write {
                    live.remove(&slot);
                    escapes.remove(&slot);
                }
                for &slot in &atom.reads {
                    live.insert(slot);
                }
            }
            if (live.clone(), escapes.clone()) != inb[id] {
                inb[id] = (live, escapes);
                changed = true;
            }
        }
    }
    for (id, block) in cfg.blocks.iter().enumerate() {
        if !reachable[id] || id == cfg.exit {
            continue;
        }
        let mut live = BTreeSet::new();
        let mut escapes = BTreeSet::new();
        for &s in &block.succs {
            live.extend(inb[s].0.iter().copied());
            escapes.extend(inb[s].1.iter().copied());
        }
        for atom in block.atoms.iter().rev() {
            // `live`/`escapes` currently describe the program point just
            // *after* this atom.
            if let Some((slot, synthetic)) = atom.write {
                if !synthetic && !live.contains(&slot) && !escapes.contains(&slot) {
                    diags.push(Diagnostic {
                        pos: atom.pos,
                        kind: LintKind::DeadStore,
                        severity: Severity::Note,
                        message: format!(
                            "value stored to `{}` is overwritten before it is ever read",
                            slot_name(prog, slot)
                        ),
                    });
                }
                live.remove(&slot);
                escapes.remove(&slot);
            }
            for &slot in &atom.reads {
                live.insert(slot);
            }
        }
    }
}

/// Flag filters with no reachable emit statement: they can never place a
/// record on the channel, which usually means the output clause was
/// optimized away or forgotten.
fn never_emits(cfg: &Cfg, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let mut first_pos: Option<Pos> = None;
    for (id, block) in cfg.blocks.iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        for atom in &block.atoms {
            first_pos.get_or_insert(atom.pos);
            if atom.emits {
                return;
            }
        }
    }
    diags.push(Diagnostic {
        pos: first_pos.unwrap_or_default(),
        kind: LintKind::NeverEmits,
        severity: Severity::Warning,
        message: "filter never emits an output record; it will suppress every submission"
            .to_string(),
    });
}
