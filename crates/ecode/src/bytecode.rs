//! Bytecode representation and the compiler from the resolved AST.
//!
//! The original E-code emits native machine code at the publishing host;
//! this reproduction emits a compact bytecode for the stack VM in
//! [`crate::vm`]. The deployment workflow is identical — source string in,
//! executable artifact out, compiled once — and `bench/benches/ecode.rs`
//! quantifies the VM-vs-native execution gap as an ablation.

use crate::ast::{BinOp, Field, Ty, UnOp};
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};

/// One VM instruction. Jump targets are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    ConstI(i64),
    /// Push a float constant.
    ConstF(f64),
    /// Push a local slot's value.
    Load(u16),
    /// Pop into a local slot.
    Store(u16),
    /// Pop, truncate toward zero if float, store into a local slot.
    StoreTrunc(u16),
    /// Pop index; push `input[index].field`.
    InputField(Field),
    /// Pop input index, pop output index; copy `input[i]` into
    /// `output[o]`.
    EmitRecord,
    /// Pop value, pop output index; overwrite a field of `output[o]`.
    EmitField(Field),
    /// Arithmetic (pop rhs, pop lhs, push result).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division when both ints).
    Div,
    /// Remainder.
    Rem,
    /// Comparison; pushes Int 0/1.
    CmpEq,
    /// `!=`
    CmpNe,
    /// `<`
    CmpLt,
    /// `<=`
    CmpLe,
    /// `>`
    CmpGt,
    /// `>=`
    CmpGe,
    /// Arithmetic negation.
    Neg,
    /// Logical not; pushes Int 0/1.
    Not,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if zero.
    JumpIfFalse(u32),
    /// Jump if top of stack is zero, *without* popping (for `&&`).
    JumpIfFalsePeek(u32),
    /// Jump if top of stack is nonzero, *without* popping (for `||`).
    JumpIfTruePeek(u32),
    /// Pop and discard.
    Pop,
    /// Normalize top of stack to Int 0/1 by truthiness (C logical results).
    Truthy,
    /// Pop the accept value and stop.
    ReturnValue,
    /// Stop, accepting the outputs.
    ReturnVoid,
}

/// A compiled filter body.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Number of local slots.
    pub n_locals: u16,
}

impl Chunk {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the chunk has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Human-readable disassembly (one instruction per line).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let _ = writeln!(out, "{i:4}  {op:?}");
        }
        out
    }
}

/// Compile a resolved program to bytecode.
pub fn compile(prog: &RProgram) -> Chunk {
    let mut c = Compiler {
        ops: Vec::new(),
        loops: Vec::new(),
    };
    for stmt in &prog.body {
        c.stmt(stmt);
    }
    c.ops.push(Op::ReturnVoid);
    Chunk {
        ops: c.ops,
        n_locals: prog.n_locals,
    }
}

struct LoopCtx {
    /// Placeholder indices of `break` jumps to patch to the loop end.
    break_patches: Vec<usize>,
    /// Instruction index `continue` jumps to (the step / condition check).
    continue_target_patch: Vec<usize>,
}

struct Compiler {
    ops: Vec<Op>,
    loops: Vec<LoopCtx>,
}

impl Compiler {
    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Emit a jump with a dummy target; returns its index for patching.
    fn emit_patch(&mut self, make: fn(u32) -> Op) -> usize {
        self.ops.push(make(u32::MAX));
        self.ops.len() - 1
    }

    fn patch(&mut self, idx: usize, target: u32) {
        self.ops[idx] = match self.ops[idx] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfFalsePeek(_) => Op::JumpIfFalsePeek(target),
            Op::JumpIfTruePeek(_) => Op::JumpIfTruePeek(target),
            other => panic!("patching non-jump {other:?}"),
        };
    }

    fn stmt(&mut self, stmt: &RStmt) {
        match &stmt.kind {
            RStmtKind::Store {
                slot,
                value,
                truncate,
                ..
            } => {
                self.expr(value);
                self.ops.push(if *truncate {
                    Op::StoreTrunc(*slot)
                } else {
                    Op::Store(*slot)
                });
            }
            RStmtKind::OutputRecord { index, input_index } => {
                self.expr(index);
                self.expr(input_index);
                self.ops.push(Op::EmitRecord);
            }
            RStmtKind::OutputField {
                index,
                field,
                value,
            } => {
                self.expr(index);
                self.expr(value);
                self.ops.push(Op::EmitField(*field));
            }
            RStmtKind::If { cond, then, else_ } => {
                self.expr(cond);
                let to_else = self.emit_patch(Op::JumpIfFalse);
                for s in then {
                    self.stmt(s);
                }
                if else_.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.emit_patch(Op::Jump);
                    let else_start = self.here();
                    self.patch(to_else, else_start);
                    for s in else_ {
                        self.stmt(s);
                    }
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let check = self.here();
                let exit_patch = cond.as_ref().map(|c| {
                    self.expr(c);
                    self.emit_patch(Op::JumpIfFalse)
                });
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_target_patch: Vec::new(),
                });
                for s in body {
                    self.stmt(s);
                }
                // `continue` jumps land here, on the step.
                let step_at = self.here();
                if let Some(step) = step {
                    self.stmt(step);
                }
                self.ops.push(Op::Jump(check));
                let end = self.here();
                let ctx = self.loops.pop().expect("loop context");
                for p in ctx.break_patches {
                    self.patch(p, end);
                }
                for p in ctx.continue_target_patch {
                    self.patch(p, step_at);
                }
                if let Some(p) = exit_patch {
                    self.patch(p, end);
                }
            }
            RStmtKind::Return(value) => match value {
                Some(v) => {
                    self.expr(v);
                    self.ops.push(Op::ReturnValue);
                }
                None => self.ops.push(Op::ReturnVoid),
            },
            RStmtKind::Break => {
                let p = self.emit_patch(Op::Jump);
                self.loops
                    .last_mut()
                    .expect("break outside loop survived sema")
                    .break_patches
                    .push(p);
            }
            RStmtKind::Continue => {
                let p = self.emit_patch(Op::Jump);
                self.loops
                    .last_mut()
                    .expect("continue outside loop survived sema")
                    .continue_target_patch
                    .push(p);
            }
            RStmtKind::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
        }
    }

    fn expr(&mut self, expr: &RExpr) {
        match &expr.kind {
            RExprKind::ConstI(v) => self.ops.push(Op::ConstI(*v)),
            RExprKind::ConstF(v) => self.ops.push(Op::ConstF(*v)),
            RExprKind::Local(slot) => self.ops.push(Op::Load(*slot)),
            RExprKind::InputField(index, field) => {
                self.expr(index);
                self.ops.push(Op::InputField(*field));
            }
            RExprKind::Unary(op, inner) => {
                self.expr(inner);
                self.ops.push(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            RExprKind::Binary(BinOp::And, lhs, rhs) => {
                // Short-circuit, then normalize: C's `&&` yields 0 or 1.
                self.expr(lhs);
                let skip = self.emit_patch(Op::JumpIfFalsePeek);
                self.ops.push(Op::Pop);
                self.expr(rhs);
                let end = self.here();
                self.patch(skip, end);
                self.ops.push(Op::Truthy);
            }
            RExprKind::Binary(BinOp::Or, lhs, rhs) => {
                self.expr(lhs);
                let skip = self.emit_patch(Op::JumpIfTruePeek);
                self.ops.push(Op::Pop);
                self.expr(rhs);
                let end = self.here();
                self.patch(skip, end);
                self.ops.push(Op::Truthy);
            }
            RExprKind::Binary(op, lhs, rhs) => {
                self.expr(lhs);
                self.expr(rhs);
                self.ops.push(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Rem => Op::Rem,
                    BinOp::Eq => Op::CmpEq,
                    BinOp::Ne => Op::CmpNe,
                    BinOp::Lt => Op::CmpLt,
                    BinOp::Le => Op::CmpLe,
                    BinOp::Gt => Op::CmpGt,
                    BinOp::Ge => Op::CmpGe,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                });
            }
        }
    }
}

// Give the compiler access to expression types if ever needed (kept for
// future constant folding; silences the unused-field lint meaningfully).
#[allow(dead_code)]
fn ty_of(e: &RExpr) -> Ty {
    e.ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EnvSpec;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn chunk(src: &str) -> Chunk {
        let env = EnvSpec::new(["A", "B"]);
        compile(&analyze(&parse(src).unwrap(), &env).unwrap())
    }

    #[test]
    fn straight_line_code() {
        let c = chunk("{ int x = 1; x = x + 2; }");
        assert_eq!(
            c.ops,
            vec![
                Op::ConstI(1),
                Op::Store(0),
                Op::Load(0),
                Op::ConstI(2),
                Op::Add,
                Op::Store(0),
                Op::ReturnVoid,
            ]
        );
        assert_eq!(c.n_locals, 1);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn if_without_else_jumps_past_then() {
        let c = chunk("{ int x = 0; if (x > 1) x = 2; }");
        // find the conditional jump and check it targets the final return
        let jif = c
            .ops
            .iter()
            .position(|op| matches!(op, Op::JumpIfFalse(_)))
            .unwrap();
        let Op::JumpIfFalse(target) = c.ops[jif] else {
            unreachable!()
        };
        assert_eq!(target as usize, c.ops.len() - 1, "jumps to ReturnVoid");
    }

    #[test]
    fn if_else_has_two_jumps() {
        let c = chunk("{ int x = 0; if (x > 1) x = 2; else x = 3; }");
        assert!(c.ops.iter().any(|op| matches!(op, Op::Jump(_))));
        assert!(c.ops.iter().any(|op| matches!(op, Op::JumpIfFalse(_))));
    }

    #[test]
    fn and_emits_peek_jump() {
        let c = chunk("{ int x = 1 && 0; }");
        assert!(c.ops.iter().any(|op| matches!(op, Op::JumpIfFalsePeek(_))));
    }

    #[test]
    fn or_emits_peek_jump() {
        let c = chunk("{ int x = 0 || 1; }");
        assert!(c.ops.iter().any(|op| matches!(op, Op::JumpIfTruePeek(_))));
    }

    #[test]
    fn loop_back_edge_exists() {
        let c = chunk("{ for (int i = 0; i < 3; i = i + 1) { } }");
        // The last op before ReturnVoid is the back-edge Jump.
        let back = c
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Jump(t) => Some(*t),
                _ => None,
            })
            .next()
            .expect("back edge");
        assert!((back as usize) < c.ops.len());
    }

    #[test]
    fn no_unpatched_jumps_anywhere() {
        for src in [
            "{ for (int i = 0; i < 3; i = i + 1) { if (i == 1) continue; if (i == 2) break; } }",
            "{ while (1) { break; } }",
            "{ int a = 1 && 2 || 0; if (a) { a = 0; } else { a = 1; } }",
        ] {
            let c = chunk(src);
            for op in &c.ops {
                let target = match op {
                    Op::Jump(t)
                    | Op::JumpIfFalse(t)
                    | Op::JumpIfFalsePeek(t)
                    | Op::JumpIfTruePeek(t) => *t,
                    _ => continue,
                };
                assert!(
                    (target as usize) <= c.ops.len(),
                    "unpatched or wild jump in {src}: {op:?}"
                );
                assert_ne!(target, u32::MAX, "unpatched jump in {src}");
            }
        }
    }

    #[test]
    fn emit_ops_for_outputs() {
        let c = chunk("{ output[0] = input[A]; output[0].value = 1.5; }");
        assert!(c.ops.contains(&Op::EmitRecord));
        assert!(c
            .ops
            .iter()
            .any(|op| matches!(op, Op::EmitField(crate::ast::Field::Value))));
    }

    #[test]
    fn disassembly_lists_all_ops() {
        let c = chunk("{ int x = 1; }");
        let d = c.disassemble();
        assert_eq!(d.lines().count(), c.len());
        assert!(d.contains("ConstI(1)"));
    }
}
