//! Constant folding and dead-branch elimination on the resolved AST.
//!
//! Filters compile once and run on every polling iteration, per
//! subscriber, so shaving instructions matters. This pass:
//!
//! * folds constant arithmetic, comparisons, and logical operations
//!   (respecting C semantics: integer wrapping, promotion, short-circuit
//!   normalization to 0/1),
//! * leaves constant division/modulo *by zero* unfolded so the runtime
//!   error still fires at the right moment,
//! * prunes `if` branches with constant conditions and loops whose
//!   condition is constant-false,
//! * runs automatically inside [`crate::Filter::compile`]; correctness is
//!   pinned by the `folding_preserves_semantics` tests and the
//!   workspace-level property tests (the VM result of a folded program
//!   must match the unfolded one).

use crate::ast::{BinOp, Ty, UnOp};
use crate::sema::{RExpr, RExprKind, RProgram, RStmt, RStmtKind};
use crate::token::Pos;

/// Fold a whole program.
pub fn fold_program(prog: RProgram) -> RProgram {
    RProgram {
        body: prog.body.into_iter().flat_map(fold_stmt).collect(),
        n_locals: prog.n_locals,
        slot_names: prog.slot_names,
    }
}

/// A constant value extracted from a folded expression.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Const {
    I(i64),
    F(f64),
}

impl Const {
    fn truthy(self) -> bool {
        match self {
            Const::I(v) => v != 0,
            Const::F(v) => v != 0.0,
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Const::I(v) => v as f64,
            Const::F(v) => v,
        }
    }

    fn to_expr(self, pos: Pos) -> RExpr {
        match self {
            Const::I(v) => RExpr {
                pos,
                ty: Ty::Int,
                kind: RExprKind::ConstI(v),
            },
            Const::F(v) => RExpr {
                pos,
                ty: Ty::Double,
                kind: RExprKind::ConstF(v),
            },
        }
    }
}

fn as_const(e: &RExpr) -> Option<Const> {
    match e.kind {
        RExprKind::ConstI(v) => Some(Const::I(v)),
        RExprKind::ConstF(v) => Some(Const::F(v)),
        _ => None,
    }
}

fn fold_stmt(stmt: RStmt) -> Vec<RStmt> {
    let pos = stmt.pos;
    let rebuild = |kind: RStmtKind| RStmt { pos, kind };
    match stmt.kind {
        RStmtKind::Store {
            slot,
            value,
            truncate,
            synthetic,
        } => {
            let value = fold_expr(value);
            // A constant double stored into an int slot can truncate now.
            if truncate {
                if let Some(c) = as_const(&value) {
                    let vpos = value.pos;
                    return vec![rebuild(RStmtKind::Store {
                        slot,
                        value: Const::I(c.as_f64().trunc() as i64).to_expr(vpos),
                        truncate: false,
                        synthetic,
                    })];
                }
            }
            vec![rebuild(RStmtKind::Store {
                slot,
                value,
                truncate,
                synthetic,
            })]
        }
        RStmtKind::OutputRecord { index, input_index } => {
            vec![rebuild(RStmtKind::OutputRecord {
                index: fold_expr(index),
                input_index: fold_expr(input_index),
            })]
        }
        RStmtKind::OutputField {
            index,
            field,
            value,
        } => vec![rebuild(RStmtKind::OutputField {
            index: fold_expr(index),
            field,
            value: fold_expr(value),
        })],
        RStmtKind::If { cond, then, else_ } => {
            let cond = fold_expr(cond);
            let then: Vec<RStmt> = then.into_iter().flat_map(fold_stmt).collect();
            let else_: Vec<RStmt> = else_.into_iter().flat_map(fold_stmt).collect();
            match as_const(&cond) {
                Some(c) => {
                    if c.truthy() {
                        then
                    } else {
                        else_
                    }
                }
                None => vec![rebuild(RStmtKind::If { cond, then, else_ })],
            }
        }
        RStmtKind::Loop {
            init,
            cond,
            step,
            body,
        } => {
            let init = init.map(|s| Box::new(first_or_block(fold_stmt(*s), pos)));
            let cond = cond.map(fold_expr);
            let step = step.map(|s| Box::new(first_or_block(fold_stmt(*s), pos)));
            let body: Vec<RStmt> = body.into_iter().flat_map(fold_stmt).collect();
            // A constant-false condition never enters the loop; the init
            // still runs (its declaration scopes away, but side effects on
            // outer slots are impossible for a decl — keep it for slot
            // initialization consistency).
            if let Some(c) = cond.as_ref().and_then(as_const) {
                if !c.truthy() {
                    return match init {
                        Some(init) => vec![*init],
                        None => Vec::new(),
                    };
                }
            }
            vec![rebuild(RStmtKind::Loop {
                init,
                cond,
                step,
                body,
            })]
        }
        RStmtKind::Return(value) => vec![rebuild(RStmtKind::Return(value.map(fold_expr)))],
        RStmtKind::Break => vec![rebuild(RStmtKind::Break)],
        RStmtKind::Continue => vec![rebuild(RStmtKind::Continue)],
        RStmtKind::Block(body) => {
            let body: Vec<RStmt> = body.into_iter().flat_map(fold_stmt).collect();
            if body.is_empty() {
                Vec::new()
            } else {
                vec![rebuild(RStmtKind::Block(body))]
            }
        }
    }
}

fn first_or_block(mut stmts: Vec<RStmt>, pos: Pos) -> RStmt {
    if stmts.len() == 1 {
        stmts.remove(0)
    } else {
        RStmt {
            pos,
            kind: RStmtKind::Block(stmts),
        }
    }
}

fn fold_expr(e: RExpr) -> RExpr {
    let (pos, ty) = (e.pos, e.ty);
    match e.kind {
        RExprKind::ConstI(_) | RExprKind::ConstF(_) | RExprKind::Local(_) => e,
        RExprKind::InputField(index, field) => RExpr {
            pos,
            ty,
            kind: RExprKind::InputField(Box::new(fold_expr(*index)), field),
        },
        RExprKind::Unary(op, inner) => {
            let inner = fold_expr(*inner);
            if let Some(c) = as_const(&inner) {
                let folded = match (op, c) {
                    (UnOp::Neg, Const::I(v)) => Const::I(v.wrapping_neg()),
                    (UnOp::Neg, Const::F(v)) => Const::F(-v),
                    (UnOp::Not, c) => Const::I(!c.truthy() as i64),
                };
                return folded.to_expr(pos);
            }
            RExpr {
                pos,
                ty,
                kind: RExprKind::Unary(op, Box::new(inner)),
            }
        }
        RExprKind::Binary(op, lhs, rhs) => {
            let lhs = fold_expr(*lhs);
            let rhs = fold_expr(*rhs);
            // Short-circuit folding needs only the lhs.
            if matches!(op, BinOp::And | BinOp::Or) {
                if let Some(l) = as_const(&lhs) {
                    return match (op, l.truthy()) {
                        (BinOp::And, false) => Const::I(0).to_expr(pos),
                        (BinOp::Or, true) => Const::I(1).to_expr(pos),
                        // `const_true && rhs` = truthiness of rhs; fold if
                        // rhs is constant too, else keep the normalization.
                        _ => match as_const(&rhs) {
                            Some(r) => Const::I(r.truthy() as i64).to_expr(pos),
                            None => RExpr {
                                pos,
                                ty,
                                kind: RExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                            },
                        },
                    };
                }
            }
            if let (Some(l), Some(r)) = (as_const(&lhs), as_const(&rhs)) {
                if let Some(folded) = fold_binary(op, l, r) {
                    return folded.to_expr(pos);
                }
            }
            RExpr {
                pos,
                ty,
                kind: RExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            }
        }
    }
}

fn fold_binary(op: BinOp, l: Const, r: Const) -> Option<Const> {
    use BinOp::*;
    // Integer lane when both are ints, float lane otherwise — mirroring
    // the VM exactly.
    if let (Const::I(a), Const::I(b)) = (l, r) {
        return Some(match op {
            Add => Const::I(a.wrapping_add(b)),
            Sub => Const::I(a.wrapping_sub(b)),
            Mul => Const::I(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return None; // keep the runtime error
                }
                Const::I(a.wrapping_div(b))
            }
            Rem => {
                if b == 0 {
                    return None;
                }
                Const::I(a.wrapping_rem(b))
            }
            Eq => Const::I((a == b) as i64),
            Ne => Const::I((a != b) as i64),
            Lt => Const::I((a < b) as i64),
            Le => Const::I((a <= b) as i64),
            Gt => Const::I((a > b) as i64),
            Ge => Const::I((a >= b) as i64),
            And => Const::I((a != 0 && b != 0) as i64),
            Or => Const::I((a != 0 || b != 0) as i64),
        });
    }
    let (a, b) = (l.as_f64(), r.as_f64());
    Some(match op {
        Add => Const::F(a + b),
        Sub => Const::F(a - b),
        Mul => Const::F(a * b),
        Div => Const::F(a / b),
        Rem => Const::F(a % b),
        Eq => Const::I((a == b) as i64),
        Ne => Const::I((a != b) as i64),
        Lt => Const::I((a < b) as i64),
        Le => Const::I((a <= b) as i64),
        Gt => Const::I((a > b) as i64),
        Ge => Const::I((a >= b) as i64),
        And => Const::I((a != 0.0 && b != 0.0) as i64),
        Or => Const::I((a != 0.0 || b != 0.0) as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{compile, Op};
    use crate::filter::{EnvSpec, MetricRecord};
    use crate::parser::parse;
    use crate::sema::analyze;
    use crate::vm;

    fn env() -> EnvSpec {
        EnvSpec::new(["A", "B"])
    }

    fn folded_chunk(src: &str) -> crate::bytecode::Chunk {
        compile(&fold_program(
            analyze(&parse(src).unwrap(), &env()).unwrap(),
        ))
    }

    fn unfolded_chunk(src: &str) -> crate::bytecode::Chunk {
        compile(&analyze(&parse(src).unwrap(), &env()).unwrap())
    }

    fn run_both(src: &str) -> (crate::FilterOutput, crate::FilterOutput) {
        let inputs = [MetricRecord::new(0, 3.5), MetricRecord::new(1, -2.0)];
        let a = vm::run(&unfolded_chunk(src), &inputs, 100_000).unwrap();
        let b = vm::run(&folded_chunk(src), &inputs, 100_000).unwrap();
        (a, b)
    }

    #[test]
    fn arithmetic_folds_to_single_const() {
        let c = folded_chunk("{ int x = 2 + 3 * 4 - 1; }");
        assert_eq!(c.ops, vec![Op::ConstI(13), Op::Store(0), Op::ReturnVoid]);
    }

    #[test]
    fn float_promotion_folds() {
        let c = folded_chunk("{ double d = 1 + 0.5; }");
        assert_eq!(c.ops, vec![Op::ConstF(1.5), Op::Store(0), Op::ReturnVoid]);
    }

    #[test]
    fn constant_truncation_folds() {
        let c = folded_chunk("{ int x = 7.9; }");
        assert_eq!(c.ops, vec![Op::ConstI(7), Op::Store(0), Op::ReturnVoid]);
    }

    #[test]
    fn division_by_zero_stays_runtime() {
        let c = folded_chunk("{ int x = 1 / 0; }");
        assert!(c.ops.contains(&Op::Div), "kept for the runtime error");
        let err = vm::run(
            &c,
            &[MetricRecord::new(0, 0.0), MetricRecord::new(1, 0.0)],
            100,
        )
        .unwrap_err();
        assert_eq!(err, crate::RuntimeError::DivisionByZero);
    }

    #[test]
    fn dead_if_branches_pruned() {
        let c = folded_chunk("{ int x = 0; if (1 < 2) { x = 1; } else { x = 2; } }");
        assert!(!c.ops.iter().any(|op| matches!(op, Op::JumpIfFalse(_))));
        assert!(c.ops.contains(&Op::ConstI(1)));
        assert!(!c.ops.contains(&Op::ConstI(2)));
    }

    #[test]
    fn false_loop_disappears() {
        let c = folded_chunk("{ int s = 0; while (0) { s = s + 1; } }");
        assert!(!c.ops.iter().any(|op| matches!(op, Op::Jump(_))));
    }

    #[test]
    fn short_circuit_constants_fold() {
        let c = folded_chunk("{ int a = 0 && 1; int b = 1 || 0; int c = 2 && 3; }");
        let consts: Vec<i64> = c
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::ConstI(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![0, 1, 1], "normalized to 0/1");
    }

    #[test]
    fn non_constant_parts_survive() {
        let c = folded_chunk("{ double v = input[A].value * (2 + 3); }");
        assert!(c.ops.contains(&Op::ConstI(5)));
        assert!(c.ops.contains(&Op::Mul));
        assert!(c.ops.iter().any(|op| matches!(op, Op::InputField(_))));
    }

    #[test]
    fn folding_preserves_semantics() {
        for src in [
            "{ int x = 2 + 3; output[0] = input[A]; output[0].value = x; }",
            "{ if (1 && input[A].value > 2.0) { output[0] = input[B]; } }",
            "{ int s = 0; for (int i = 0; i < 4 * 2; i = i + 1) { s = s + i; } output[0] = input[A]; output[0].value = s; }",
            "{ double d = -(3.0 * 2.0) / 4.0; output[0] = input[A]; output[0].value = d; }",
            "{ int x = !0 + !5; output[0] = input[A]; output[0].value = x; }",
            "{ while (0) { output[0] = input[A]; } }",
            "{ if (0) { output[0] = input[A]; } else { output[0] = input[B]; } }",
        ] {
            let (unopt, opt) = run_both(src);
            assert_eq!(unopt.records(), opt.records(), "src: {src}");
            assert_eq!(unopt.accept(), opt.accept(), "src: {src}");
        }
    }

    #[test]
    fn folding_never_increases_instructions() {
        for (src, env4) in [
            (crate::filter::FIG3_SOURCE, crate::filter::fig3_env()),
            ("{ int x = 1 + 2 + 3 + 4; }", env()),
            (
                "{ if (input[A].value > 1.0) { output[0] = input[A]; } }",
                env(),
            ),
        ] {
            let parsed = parse(src).unwrap();
            let resolved = analyze(&parsed, &env4).unwrap();
            let plain = compile(&resolved).len();
            let opt = compile(&fold_program(resolved)).len();
            assert!(opt <= plain, "{src}: {opt} > {plain}");
        }
    }
}
