//! Register assignment and type inference for the compiling backend.
//!
//! The stack VM's operand stack has a statically known depth at every
//! program point (the bytecode compiler lowers structured control flow,
//! so every join sees the same depth). That turns each stack slot into a
//! *register*: local slot `s` is register `s`, and the value at stack
//! depth `i` is register `n_locals + i`. [`map_registers`] computes the
//! depth before every instruction by abstract interpretation over the
//! CFG and refuses (returns `None`) if any join is inconsistent — the
//! caller then falls back to the interpreter, so this analysis never
//! needs to be complete, only sound.
//!
//! [`infer_types`] runs a second forward dataflow over the same CFG with
//! the per-register lattice `Bot ⊑ {I, F} ⊑ Top`, mirroring the VM's
//! dynamic tags: locals start as `I` (the VM zero-initializes them with
//! `Value::I(0)`), comparisons and `!` produce `I`, record fields produce
//! `F` (`I` for `.id`), and `(I, I)` arithmetic stays `I` while any `F`
//! operand promotes the result. Note dynamic tags are *not* the declared
//! types: `double y = 2;` stores `Value::I(2)` and `y / 2` is then
//! integer division, so the analysis tracks value provenance, never
//! declarations. A program is *monomorphic* when no reachable instruction
//! reads a register whose type is `Top`; only those programs compile to
//! the untagged executor in [`crate::compile`].

use crate::ast::Field;
use crate::bytecode::{Chunk, Op};

/// A register index: locals first, then stack slots.
pub(crate) type Reg = u16;

/// Stack depth before each instruction, plus the register-file size.
pub(crate) struct RegMap {
    /// Depth of the operand stack before `ops[pc]`; `None` = unreachable.
    pub depth_before: Vec<Option<u16>>,
    /// Number of local slots (registers `0..n_locals`).
    pub n_locals: u16,
    /// Total registers: `n_locals + max stack depth`.
    pub n_regs: u16,
}

/// Net stack effect of one opcode (pushes minus pops).
fn stack_delta(op: Op) -> i32 {
    match op {
        Op::ConstI(_) | Op::ConstF(_) | Op::Load(_) => 1,
        Op::Store(_) | Op::StoreTrunc(_) | Op::Pop | Op::JumpIfFalse(_) => -1,
        Op::InputField(_) | Op::Neg | Op::Not | Op::Truthy => 0,
        Op::EmitRecord | Op::EmitField(_) => -2,
        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::CmpEq
        | Op::CmpNe
        | Op::CmpLt
        | Op::CmpLe
        | Op::CmpGt
        | Op::CmpGe => -1,
        Op::Jump(_) | Op::JumpIfFalsePeek(_) | Op::JumpIfTruePeek(_) => 0,
        Op::ReturnValue => -1,
        Op::ReturnVoid => 0,
    }
}

/// Successor pcs of `ops[pc]` (empty for returns).
fn successors(op: Op, pc: usize, out: &mut [usize; 2]) -> usize {
    match op {
        Op::Jump(t) => {
            out[0] = t as usize;
            1
        }
        Op::JumpIfFalse(t) | Op::JumpIfFalsePeek(t) | Op::JumpIfTruePeek(t) => {
            out[0] = pc + 1;
            out[1] = t as usize;
            2
        }
        Op::ReturnValue | Op::ReturnVoid => 0,
        _ => {
            out[0] = pc + 1;
            1
        }
    }
}

/// Compute the stack depth before every instruction. `None` when depths
/// disagree at a join, underflow, or the stack would not fit in `u16` —
/// all of which mean "interpret this one instead".
pub(crate) fn map_registers(chunk: &Chunk) -> Option<RegMap> {
    let n = chunk.ops.len();
    let mut depth_before: Vec<Option<u16>> = vec![None; n];
    if n == 0 {
        return Some(RegMap {
            depth_before,
            n_locals: chunk.n_locals,
            n_regs: chunk.n_locals,
        });
    }
    let mut work = vec![0usize];
    depth_before[0] = Some(0);
    let mut max_depth: u16 = 0;
    while let Some(pc) = work.pop() {
        let d = depth_before[pc]? as i32;
        let op = chunk.ops[pc];
        let after = d + stack_delta(op);
        // Depth *during* the op (operands live below `d`), so `d` itself
        // bounds the register file together with push results.
        let peak = d.max(after);
        if after < 0 || peak > u16::MAX as i32 - 1 {
            return None;
        }
        max_depth = max_depth.max(peak as u16);
        let mut succ = [0usize; 2];
        let ns = successors(op, pc, &mut succ);
        for &s in &succ[..ns] {
            if s >= n {
                return None;
            }
            match depth_before[s] {
                None => {
                    depth_before[s] = Some(after as u16);
                    work.push(s);
                }
                Some(prev) => {
                    if prev as i32 != after {
                        return None;
                    }
                }
            }
        }
    }
    let n_regs = chunk.n_locals.checked_add(max_depth)?;
    Some(RegMap {
        depth_before,
        n_locals: chunk.n_locals,
        n_regs,
    })
}

/// One point in the type lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty2 {
    /// Never written on any path reaching this point.
    Bot,
    /// Always an integer value.
    I,
    /// Always a float value.
    F,
    /// Both tags reach this point — polymorphic.
    Top,
}

impl Ty2 {
    fn join(self, other: Ty2) -> Ty2 {
        match (self, other) {
            (Ty2::Bot, x) | (x, Ty2::Bot) => x,
            (a, b) if a == b => a,
            _ => Ty2::Top,
        }
    }
}

/// The type of a record field as pushed by `InputField`.
pub(crate) fn field_ty(field: Field) -> Ty2 {
    match field {
        Field::Id => Ty2::I,
        _ => Ty2::F,
    }
}

/// Per-instruction register types: `before[pc][reg]` is the type of
/// `reg` on entry to `ops[pc]` (only reachable pcs are meaningful).
pub(crate) struct TypeInfo {
    pub before: Vec<Vec<Ty2>>,
}

/// Forward type dataflow. Always succeeds; polymorphism shows up as
/// `Top` which the lowering pass then rejects on read.
pub(crate) fn infer_types(chunk: &Chunk, rm: &RegMap) -> TypeInfo {
    let n = chunk.ops.len();
    let nr = rm.n_regs as usize;
    let nl = rm.n_locals as usize;
    // Locals start as I(0); stack registers start unwritten.
    let mut entry = vec![Ty2::Bot; nr];
    entry[..nl].fill(Ty2::I);
    let mut before: Vec<Vec<Ty2>> = vec![vec![Ty2::Bot; nr]; n];
    if n == 0 {
        return TypeInfo { before };
    }
    before[0] = entry;
    let mut work = vec![0usize];
    let mut seen = vec![false; n];
    seen[0] = true;
    while let Some(pc) = work.pop() {
        seen[pc] = false;
        let Some(d) = rm.depth_before[pc] else {
            continue;
        };
        let mut state = before[pc].clone();
        let op = chunk.ops[pc];
        // Registers for the top of stack before this op.
        let top = |k: u16| (nl as u16 + d - k) as usize; // k=1 → topmost
        match op {
            Op::ConstI(_) => state[nl + d as usize] = Ty2::I,
            Op::ConstF(_) => state[nl + d as usize] = Ty2::F,
            Op::Load(s) => state[nl + d as usize] = state[s as usize],
            Op::Store(s) => state[s as usize] = state[top(1)],
            Op::StoreTrunc(s) => state[s as usize] = Ty2::I,
            Op::InputField(f) => state[top(1)] = field_ty(f),
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem => {
                let a = state[top(2)];
                let b = state[top(1)];
                state[top(2)] = match (a, b) {
                    (Ty2::I, Ty2::I) => Ty2::I,
                    (Ty2::Top, _) | (_, Ty2::Top) => Ty2::Top,
                    (Ty2::Bot, _) | (_, Ty2::Bot) => Ty2::Bot,
                    _ => Ty2::F,
                };
            }
            Op::CmpEq | Op::CmpNe | Op::CmpLt | Op::CmpLe | Op::CmpGt | Op::CmpGe => {
                state[top(2)] = Ty2::I;
            }
            Op::Neg => {} // same type as operand
            Op::Not | Op::Truthy => state[top(1)] = Ty2::I,
            Op::EmitRecord
            | Op::EmitField(_)
            | Op::Jump(_)
            | Op::JumpIfFalse(_)
            | Op::JumpIfFalsePeek(_)
            | Op::JumpIfTruePeek(_)
            | Op::Pop
            | Op::ReturnValue
            | Op::ReturnVoid => {}
        }
        let mut succ = [0usize; 2];
        let ns = successors(op, pc, &mut succ);
        for &s in &succ[..ns] {
            let mut changed = false;
            for r in 0..nr {
                let j = before[s][r].join(state[r]);
                if j != before[s][r] {
                    before[s][r] = j;
                    changed = true;
                }
            }
            if changed && !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
    }
    TypeInfo { before }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::EnvSpec;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn chunk(src: &str) -> Chunk {
        let env = EnvSpec::new(["A", "B", "C"]);
        crate::bytecode::compile(&analyze(&parse(src).unwrap(), &env).unwrap())
    }

    #[test]
    fn straight_line_depths() {
        let c = chunk("{ int x = 1; x = x + 2; }");
        let rm = map_registers(&c).unwrap();
        // ConstI(1)@d0, Store@d1, Load@d0, ConstI(2)@d1, Add@d2, Store@d1, Ret@d0
        let depths: Vec<u16> = rm.depth_before.iter().map(|d| d.unwrap()).collect();
        assert_eq!(depths, vec![0, 1, 0, 1, 2, 1, 0]);
        assert_eq!(rm.n_regs, rm.n_locals + 2);
    }

    #[test]
    fn joins_are_consistent_for_structured_code() {
        for src in [
            "{ int i = 0; if (input[A].value > 1) { i = 1; } else { i = 2; } }",
            "{ for (int i = 0; i < 3; i = i + 1) { output[i] = input[i]; } }",
            "{ int a = 1 && input[B].value || 0; }",
            "{ int i = 0; while (1) { if (i >= 3) break; i = i + 1; } }",
        ] {
            assert!(map_registers(&chunk(src)).is_some(), "{src}");
        }
    }

    #[test]
    fn dead_code_after_return_is_unreachable() {
        let c = chunk("{ return 1; int x = 0; }");
        let rm = map_registers(&c).unwrap();
        // Ops after ReturnValue never get a depth.
        assert!(rm.depth_before.iter().any(|d| d.is_none()));
    }

    #[test]
    fn types_track_provenance_not_declarations() {
        // `double y = 2;` stores an *int* tag — the analysis must say I.
        let c = chunk("{ double y = 2; y = y / 2; }");
        let rm = map_registers(&c).unwrap();
        let ti = infer_types(&c, &rm);
        // Find the Div; its operands must both be I (integer division!).
        let div_pc = c.ops.iter().position(|o| matches!(o, Op::Div)).unwrap();
        let d = rm.depth_before[div_pc].unwrap() as usize;
        let nl = rm.n_locals as usize;
        assert_eq!(ti.before[div_pc][nl + d - 2], Ty2::I);
        assert_eq!(ti.before[div_pc][nl + d - 1], Ty2::I);
    }

    #[test]
    fn mixed_assignment_goes_top() {
        let c = chunk("{ double y = 2; if (input[A].value > 1) { y = 2.5; } double z = y + 1; }");
        let rm = map_registers(&c).unwrap();
        let ti = infer_types(&c, &rm);
        // After the if-join, local y (slot 0) is Top at the final Load.
        let load_pc = c
            .ops
            .iter()
            .rposition(|o| matches!(o, Op::Load(0)))
            .unwrap();
        assert_eq!(ti.before[load_pc][0], Ty2::Top);
    }

    #[test]
    fn field_types_and_cmp_results() {
        let c = chunk("{ int ok = input[A].id == 0; double v = input[B].value; }");
        let rm = map_registers(&c).unwrap();
        let ti = infer_types(&c, &rm);
        let nl = rm.n_locals as usize;
        // The CmpEq operands: .id is I, constant 0 is I.
        let cmp_pc = c.ops.iter().position(|o| matches!(o, Op::CmpEq)).unwrap();
        let d = rm.depth_before[cmp_pc].unwrap() as usize;
        assert_eq!(ti.before[cmp_pc][nl + d - 2], Ty2::I);
        // The .value store: operand is F.
        let store_pc = c
            .ops
            .iter()
            .rposition(|o| matches!(o, Op::Store(_)))
            .unwrap();
        let d = rm.depth_before[store_pc].unwrap() as usize;
        assert_eq!(ti.before[store_pc][nl + d - 1], Ty2::F);
    }
}
