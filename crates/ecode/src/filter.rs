//! The public filter API: environments, records, compilation, execution.

use crate::analysis::{self, FilterCert};
use crate::bytecode::{self, Chunk};
use crate::error::{CompileError, RuntimeError};
use crate::parser::parse;
use crate::sema::analyze;
use crate::vm;

/// One monitoring sample as seen by a filter: dproc hands the filter the
/// pending value of every metric plus the value last actually sent on the
/// channel (so differential logic like Figure 3's `CACHE_MISS` clause can
/// be written in E-code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricRecord {
    /// Metric id — its index in the [`EnvSpec`].
    pub id: u32,
    /// Current sampled value.
    pub value: f64,
    /// Value most recently submitted to the channel for this metric.
    pub last_value_sent: f64,
    /// Sample time, seconds since simulation start.
    pub timestamp: f64,
}

impl MetricRecord {
    /// A record with zero `last_value_sent` and timestamp.
    pub fn new(id: u32, value: f64) -> Self {
        MetricRecord {
            id,
            value,
            last_value_sent: 0.0,
            timestamp: 0.0,
        }
    }

    /// Builder-style: set `last_value_sent`.
    pub fn with_last_sent(mut self, last: f64) -> Self {
        self.last_value_sent = last;
        self
    }

    /// Builder-style: set the timestamp.
    pub fn with_timestamp(mut self, ts: f64) -> Self {
        self.timestamp = ts;
        self
    }
}

/// The metric environment a filter compiles against: an ordered list of
/// metric names. Names become integer constants in filter source
/// (`input[LOADAVG]`), and positions index the `input[]` array at run
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvSpec {
    metrics: Vec<String>,
}

impl EnvSpec {
    /// Build from an ordered name list.
    pub fn new<I, S>(metrics: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let metrics: Vec<String> = metrics.into_iter().map(Into::into).collect();
        EnvSpec { metrics }
    }

    /// Index of a metric name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.metrics.iter().position(|m| m == name)
    }

    /// Name of a metric index.
    pub fn name_of(&self, index: usize) -> Option<&str> {
        self.metrics.get(index).map(String::as_str)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True if the environment defines no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate over names in index order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.iter().map(String::as_str)
    }
}

/// Result of one filter execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutput {
    slots: Vec<Option<MetricRecord>>,
    accept: bool,
    instructions: u64,
}

impl FilterOutput {
    pub(crate) fn new(slots: Vec<Option<MetricRecord>>, accept: bool, instructions: u64) -> Self {
        FilterOutput {
            slots,
            accept,
            instructions,
        }
    }

    /// Emitted records in slot order (empty slots skipped), regardless of
    /// the accept flag.
    pub fn records(&self) -> Vec<MetricRecord> {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// Whether the filter accepted the submission (`return 0` suppresses).
    pub fn accept(&self) -> bool {
        self.accept
    }

    /// The records to actually submit: empty when suppressed.
    pub fn records_if_accepted(&self) -> Vec<MetricRecord> {
        if self.accept {
            self.records()
        } else {
            Vec::new()
        }
    }

    /// Iterate the records to actually submit without materializing a
    /// vector: emitted slots in order when accepted, nothing when
    /// suppressed. The hot path drains this straight into an arena or a
    /// pooled buffer, so no intermediate `Vec` is built.
    pub fn iter_accepted(&self) -> impl Iterator<Item = MetricRecord> + '_ {
        let accept = self.accept;
        self.slots
            .iter()
            .filter_map(move |s| if accept { *s } else { None })
    }

    /// Instructions the VM executed producing this output.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Consume the output, returning its slot buffer to the thread-local
    /// pool so the next execution on this thread allocates nothing. Call
    /// this after extracting records on a hot path.
    pub fn recycle(self) {
        put_slot_buf(self.slots);
    }
}

thread_local! {
    /// Recycled output-slot buffers shared by the interpreter and the
    /// compiled executor — filters run per sample, so per-execution
    /// `Vec` allocations would dominate the event path.
    static SLOT_POOL: std::cell::RefCell<Vec<Vec<Option<MetricRecord>>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Take an empty output-slot buffer from the thread-local pool.
pub(crate) fn take_slot_buf() -> Vec<Option<MetricRecord>> {
    SLOT_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Return an output-slot buffer to the thread-local pool.
pub(crate) fn put_slot_buf(mut v: Vec<Option<MetricRecord>>) {
    v.clear();
    SLOT_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 16 {
            pool.push(v);
        }
    });
}

/// A compiled, deployable filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    chunk: Chunk,
    env: EnvSpec,
    source: String,
    budget: u64,
    cert: FilterCert,
}

impl Filter {
    /// Compile `source` against `env` with the default instruction budget.
    pub fn compile(source: &str, env: &EnvSpec) -> Result<Filter, CompileError> {
        Self::compile_with_budget(source, env, vm::DEFAULT_BUDGET)
    }

    /// Compile with an explicit per-execution instruction budget.
    pub fn compile_with_budget(
        source: &str,
        env: &EnvSpec,
        budget: u64,
    ) -> Result<Filter, CompileError> {
        let ast = parse(source)?;
        let resolved = analyze(&ast, env)?;
        let folded = crate::opt::fold_program(resolved.clone());
        let cert = analysis::analyze_for_deploy(&resolved, &folded);
        let chunk = bytecode::compile(&folded);
        Ok(Filter {
            chunk,
            env: env.clone(),
            source: source.to_string(),
            budget,
            cert,
        })
    }

    /// Execute against one input record per environment metric.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the environment size — the
    /// deployer (d-mon) always supplies the full record set.
    pub fn run(&self, inputs: &[MetricRecord]) -> Result<FilterOutput, RuntimeError> {
        assert_eq!(
            inputs.len(),
            self.env.len(),
            "filter expects one record per environment metric"
        );
        vm::run(&self.chunk, inputs, self.budget)
    }

    /// The environment this filter was compiled against.
    pub fn env(&self) -> &EnvSpec {
        &self.env
    }

    /// The original source string (what travels over the control channel).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The compiled bytecode.
    pub fn chunk(&self) -> &Chunk {
        &self.chunk
    }

    /// Instruction budget per execution.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The static-analysis certificate: worst-case cost bound, metric
    /// read set, emit flag, and lint diagnostics.
    pub fn cert(&self) -> &FilterCert {
        &self.cert
    }

    /// Why this filter must be refused under its own budget, or `None`
    /// when it is admissible (finite worst-case cost within budget).
    pub fn admission_error(&self) -> Option<String> {
        self.cert.admission_error(self.budget)
    }
}

/// The paper's Figure 3 filter, verbatim (modulo the paper's `input`
/// constants, which this environment defines).
pub const FIG3_SOURCE: &str = r#"
{
    int i = 0;
    if(input[LOADAVG].value > 2){
        output[i] = input[LOADAVG];
        i = i + 1;
    }
    if(input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6){
        output[i] = input[DISKUSAGE];
        i = i + 1;
        output[i] = input[FREEMEM];
        i = i + 1;
    }
    if(input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent){
        output[i] = input[CACHE_MISS];
        i = i + 1;
    }
}
"#;

/// The environment Figure 3 compiles against.
pub fn fig3_env() -> EnvSpec {
    EnvSpec::new(["LOADAVG", "DISKUSAGE", "FREEMEM", "CACHE_MISS"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_lookup() {
        let env = fig3_env();
        assert_eq!(env.len(), 4);
        assert!(!env.is_empty());
        assert_eq!(env.index_of("FREEMEM"), Some(2));
        assert_eq!(env.index_of("NOPE"), None);
        assert_eq!(env.name_of(3), Some("CACHE_MISS"));
        assert_eq!(env.name_of(9), None);
        assert_eq!(env.names().count(), 4);
    }

    #[test]
    fn record_builders() {
        let r = MetricRecord::new(2, 1.5)
            .with_last_sent(1.0)
            .with_timestamp(3.0);
        assert_eq!(r.id, 2);
        assert_eq!(r.value, 1.5);
        assert_eq!(r.last_value_sent, 1.0);
        assert_eq!(r.timestamp, 3.0);
    }

    #[test]
    fn fig3_quiet_system_sends_nothing() {
        let f = Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
        let inputs = [
            MetricRecord::new(0, 1.0),                         // loadavg low
            MetricRecord::new(1, 500.0),                       // disk usage low
            MetricRecord::new(2, 400e6),                       // plenty of memory
            MetricRecord::new(3, 100.0).with_last_sent(200.0), // misses not rising
        ];
        let out = f.run(&inputs).unwrap();
        assert!(out.records().is_empty());
    }

    #[test]
    fn fig3_loaded_system_sends_loadavg() {
        let f = Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
        let inputs = [
            MetricRecord::new(0, 3.0),
            MetricRecord::new(1, 500.0),
            MetricRecord::new(2, 400e6),
            MetricRecord::new(3, 100.0).with_last_sent(200.0),
        ];
        let out = f.run(&inputs).unwrap();
        let recs = out.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, 0);
        assert_eq!(recs[0].value, 3.0);
    }

    #[test]
    fn fig3_disk_and_memory_pressure_sends_both() {
        let f = Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
        let inputs = [
            MetricRecord::new(0, 0.5),
            MetricRecord::new(1, 20_000.0), // heavy disk usage
            MetricRecord::new(2, 10e6),     // < 50 MB free
            MetricRecord::new(3, 0.0),
        ];
        let out = f.run(&inputs).unwrap();
        let recs = out.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, 1);
        assert_eq!(recs[1].id, 2);
    }

    #[test]
    fn fig3_rising_cache_misses_send() {
        let f = Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
        let inputs = [
            MetricRecord::new(0, 0.5),
            MetricRecord::new(1, 0.0),
            MetricRecord::new(2, 400e6),
            MetricRecord::new(3, 5000.0).with_last_sent(100.0),
        ];
        let out = f.run(&inputs).unwrap();
        assert_eq!(out.records().len(), 1);
        assert_eq!(out.records()[0].id, 3);
    }

    #[test]
    fn fig3_everything_firing_packs_slots_densely() {
        let f = Filter::compile(FIG3_SOURCE, &fig3_env()).unwrap();
        let inputs = [
            MetricRecord::new(0, 9.0),
            MetricRecord::new(1, 99_999.0),
            MetricRecord::new(2, 1e6),
            MetricRecord::new(3, 1e9).with_last_sent(0.0),
        ];
        let out = f.run(&inputs).unwrap();
        let ids: Vec<u32> = out.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn compile_error_surfaces() {
        let err = Filter::compile("{ int = ; }", &fig3_env()).unwrap_err();
        assert!(err.to_string().contains("compile error"));
    }

    #[test]
    #[should_panic(expected = "one record per environment metric")]
    fn wrong_input_arity_panics() {
        let f = Filter::compile("{ }", &fig3_env()).unwrap();
        let _ = f.run(&[MetricRecord::new(0, 1.0)]);
    }

    #[test]
    fn filter_accessors() {
        let f = Filter::compile_with_budget("{ int x = 0; }", &fig3_env(), 500).unwrap();
        assert_eq!(f.budget(), 500);
        assert!(f.source().contains("int x"));
        assert!(!f.chunk().is_empty());
        assert_eq!(f.env().len(), 4);
    }

    #[test]
    fn differential_filter_in_ecode() {
        // "send only if the value changed by at least 15% from the last
        // measurement" — the paper's differential filter, expressed in
        // E-code for one metric.
        let env = EnvSpec::new(["CPU"]);
        let src = r#"
{
    double last = input[CPU].last_value_sent;
    double cur = input[CPU].value;
    double delta = cur - last;
    if (delta < 0.0) { delta = -delta; }
    if (delta > last * 0.15 || delta > 0.0 - last * 0.15 && last == 0.0) {
        output[0] = input[CPU];
    }
}
"#;
        let f = Filter::compile(src, &env).unwrap();
        let small_change = [MetricRecord::new(0, 1.05).with_last_sent(1.0)];
        assert!(f.run(&small_change).unwrap().records().is_empty());
        let big_change = [MetricRecord::new(0, 1.5).with_last_sent(1.0)];
        assert_eq!(f.run(&big_change).unwrap().records().len(), 1);
    }
}
