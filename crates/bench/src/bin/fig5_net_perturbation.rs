//! Regenerates Figure 5: Iperf-style available bandwidth between two
//! nodes vs. cluster size, under the three monitoring configurations.
fn main() {
    print!("{}", dproc_bench::harness::fig5_data().render());
}
