//! `chaos_soak` — seeded chaos/soak harness for the overload-robustness
//! machinery.
//!
//! Each seed deterministically composes a hostile scenario — an overload
//! burst (one node's links degraded to a fraction of their capacity under
//! megabyte events and fan-out-tight link queues), optional subscriber churn
//! (crash + revive), a partition window, and a random-loss window — runs
//! it well past the point where every fault has healed, and checks the
//! robustness invariants the design promises:
//!
//! * **bounded**: link queues never exceed their message cap, publisher
//!   outboxes never exceed `OUTBOX_CAP` — sampled every simulated second,
//!   not just at the end;
//! * **accounted**: stream gaps never exceed the frames actually
//!   destroyed (fault drops + queue tail-drops), and tail-drops on a
//!   crash-free run always surface as gaps — loss is observed, never
//!   silent or double-counted;
//! * **re-convergent**: once the last fault heals, every node returns to
//!   ladder level 0, every outbox drains, and every peer is Fresh again;
//! * **deterministic**: the serial scheduler and the sharded parallel
//!   driver (4 threads) produce bit-identical final state.
//!
//! A failing seed prints a one-line repro command, so soak failures are
//! immediately replayable:
//!
//! ```text
//! cargo run -p dproc-bench --bin chaos_soak -- --seed 17
//! ```
//!
//! Modes: no flags runs the full 24-seed soak; `--quick` runs the three
//! fixed smoke seeds CI uses; `--seed N` replays one seed.

use dproc::cluster::{ClusterConfig, ClusterSim};
use dproc::PeerHealth;
use kecho::OUTBOX_CAP;
use simcore::{SimDur, SimTime};
use simnet::{FaultPlan, LinkSpec, NodeId};

/// Per-direction link queue cap (messages): `nodes - 1`, the tightest cap
/// that still admits one full fan-out burst (a publisher submits all of
/// its per-subscriber frames at the same poll instant, so a smaller cap
/// tail-drops every data poll even on an idle fabric — the harness would
/// then be soaking an unsustainable baseline, not testing recovery).
fn queue_cap(nodes: usize) -> usize {
    nodes - 1
}
/// Every composed fault heals at or before this second.
const HEAL_BY_S: u64 = 60;
/// Scenario length: heal time plus a recovery margin long enough for the
/// slowest hysteresis-guarded ladder ascent and outbox drain.
const END_S: u64 = 130;
/// The full soak sweep.
const SOAK_SEEDS: u64 = 24;
/// The fixed `--quick` smoke seeds CI runs on every push.
const SMOKE_SEEDS: [u64; 3] = [1, 7, 13];

/// SplitMix64 — a tiny deterministic generator, so scenario composition
/// needs no external crates and the seed alone fully determines the run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi`.
    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

struct Scenario {
    nodes: usize,
    event_pad: u32,
    plan: FaultPlan,
    has_crash: bool,
    describe: String,
}

/// Deterministically compose a scenario from a seed: always an overload
/// burst, plus coin-flipped churn, partition, and loss windows, all
/// healed by [`HEAL_BY_S`].
fn compose(seed: u64) -> Scenario {
    let mut rng = Rng(seed.wrapping_mul(0x5EED).wrapping_add(0xC0A5));
    let t = SimTime::from_secs;
    let nodes = rng.pick(3, 5) as usize;
    let event_pad = [600_000u32, 1_000_000, 1_500_000][rng.pick(0, 2) as usize];
    let mut plan = FaultPlan::new(seed);
    let mut describe = format!("nodes={nodes} pad={event_pad}");

    // The overload burst: degrade one node's links to 5-15 % of capacity,
    // long enough that queues fill, frames tail-drop, and the ladder has
    // to walk.
    let burst_node = rng.pick(0, nodes as u64 - 1);
    let burst_start = rng.pick(5, 12);
    let burst_end = burst_start + rng.pick(20, 35);
    let severity = rng.pick(85, 95) as f64 / 100.0;
    plan = plan
        .degrade_at(t(burst_start), NodeId(burst_node as usize), severity)
        .heal_link_at(t(burst_end), NodeId(burst_node as usize));
    describe += &format!(" burst=n{burst_node}@{burst_start}..{burst_end}x{severity:.2}");

    // Subscriber churn: crash a different node mid-burst and revive it.
    let has_crash = rng.chance(50);
    if has_crash {
        let victim = (burst_node as usize + 1) % nodes;
        let down = rng.pick(15, 25);
        let up = down + rng.pick(10, 20);
        plan = plan
            .crash_at(t(down), NodeId(victim))
            .revive_at(t(up), NodeId(victim));
        describe += &format!(" crash=n{victim}@{down}..{up}");
    }

    // A short partition between two distinct survivors.
    if rng.chance(40) {
        let a = rng.pick(0, nodes as u64 - 1) as usize;
        let b = (a + 1) % nodes;
        let start = rng.pick(10, 40);
        plan = plan.partition_at(t(start), NodeId(a), NodeId(b)).heal_at(
            t(start + 5),
            NodeId(a),
            NodeId(b),
        );
        describe += &format!(" part=n{a}-n{b}@{start}");
    }

    // A random-loss window over the whole fabric.
    if rng.chance(40) {
        let p = rng.pick(10, 30) as f64 / 100.0;
        let start = rng.pick(10, 50);
        let end = (start + rng.pick(3, 5)).min(HEAL_BY_S);
        plan = plan.loss_at(t(start), p).loss_at(t(end), 0.0);
        describe += &format!(" loss={p:.2}@{start}..{end}");
    }

    Scenario {
        nodes,
        event_pad,
        plan,
        has_crash,
        describe,
    }
}

fn build(s: &Scenario, threads: usize) -> ClusterSim {
    let mut cfg = ClusterConfig::new(s.nodes)
        .poll_period(SimDur::from_secs(1))
        .failure_bounds(SimDur::from_secs(3), SimDur::from_secs(8))
        .event_pad(s.event_pad);
    cfg.link = LinkSpec::fast_ethernet().with_queue(queue_cap(s.nodes), 64 * 1024 * 1024);
    let mut sim = ClusterSim::new(cfg);
    sim.set_threads(threads);
    sim.apply_fault_plan(&s.plan);
    sim.start();
    sim
}

/// Everything observable about a finished run, in comparable form — the
/// serial/parallel determinism check hashes nothing, it compares it all.
fn fingerprint(sim: &ClusterSim) -> String {
    let w = sim.world();
    let mut out = String::new();
    for h in &w.hosts {
        out += &h.proc.render_tree();
    }
    for d in &w.dmons {
        out += &format!("{:?}\n", d.stats);
    }
    out += &format!(
        "mon={} ctl={} lat={} deliv={} payload={} drops={} hwm={:?} fault={:?}",
        w.mon_delivered,
        w.ctl_delivered,
        w.mon_latency_us.len(),
        w.net.deliveries(),
        w.net.payload_bytes(),
        w.net.link_drops(),
        w.net.queue_hwm(),
        w.fault.stats,
    );
    out
}

/// Counters worth surfacing in the per-seed report line.
struct Outcome {
    drops: u64,
    gaps: u64,
    shed: u64,
    max_ladder: u8,
    transitions: u64,
}

/// Run one seed end to end and check every invariant. Returns the
/// violation messages (empty = the seed is green).
fn soak_one(seed: u64) -> (Outcome, Vec<String>) {
    let s = compose(seed);
    let mut bad = Vec::new();
    let mut sim = build(&s, 1);

    // Walk the run a second at a time so the bounded-ness invariants are
    // checked throughout the overload, not just after recovery.
    let mut max_ladder = 0u8;
    for sec in 1..=END_S {
        sim.run_until(SimTime::from_secs(sec));
        let w = sim.world();
        let (hwm, _) = w.net.queue_hwm();
        let cap = queue_cap(s.nodes);
        if hwm > cap {
            bad.push(format!("t={sec}: link queue depth {hwm} over cap {cap}"));
            break;
        }
        for i in 0..s.nodes {
            max_ladder = max_ladder.max(w.dmons[i].ladder_level());
            for j in 0..s.nodes {
                let parked = w.dmons[i].outbox_len(NodeId(j));
                if parked > OUTBOX_CAP {
                    bad.push(format!(
                        "t={sec}: node{i} outbox to node{j} {parked} over cap"
                    ));
                }
            }
        }
    }

    let w = sim.world();
    let drops = w.net.link_drops();
    let lost = w.fault.stats.events_lost;
    let gaps: u64 = w.dmons.iter().map(|d| d.stats.gaps_detected).sum();
    let shed: u64 = w.dmons.iter().map(|d| d.stats.events_shed).sum();
    let transitions: u64 = w.dmons.iter().map(|d| d.stats.ladder_transitions).sum();

    // Exact gap accounting: every gap maps to a frame that was actually
    // destroyed — by a fault (crash/partition/loss) or a queue tail-drop.
    // Shed outbox entries never consumed a sequence number, so they must
    // not surface here.
    if gaps > lost + drops {
        bad.push(format!(
            "gaps {gaps} exceed destroyed frames {lost}+{drops}"
        ));
    }
    // And on a crash-free run the mapping is onto: tail-dropped data
    // frames must be *observed* as gaps, not silently absorbed. (A crash
    // can legitimately swallow evidence — the tracker that would have
    // logged the gap dies with the node.)
    if !s.has_crash && drops > 0 && gaps == 0 {
        bad.push(format!("{drops} tail-drops left no gap evidence"));
    }

    // Re-convergence: every fault healed by HEAL_BY_S, so by END_S the
    // system must be back to full fidelity everywhere.
    for i in 0..s.nodes {
        if !w.is_alive(NodeId(i)) {
            bad.push(format!("node{i} not alive at end"));
        }
        let lvl = w.dmons[i].ladder_level();
        if lvl != 0 {
            bad.push(format!("node{i} stuck at ladder {lvl}"));
        }
        for j in 0..s.nodes {
            if w.dmons[i].outbox_len(NodeId(j)) != 0 {
                bad.push(format!("node{i} outbox to node{j} not drained"));
            }
            if i != j && w.dmons[i].peer_health(NodeId(j)) != Some(PeerHealth::Fresh) {
                bad.push(format!(
                    "node{i} sees node{j} as {:?}, not Fresh",
                    w.dmons[i].peer_health(NodeId(j))
                ));
            }
        }
    }

    // Determinism under overload: the sharded parallel driver must land
    // on bit-identical state.
    let serial_fp = fingerprint(&sim);
    let mut par = build(&s, 4);
    par.run_until(SimTime::from_secs(END_S));
    if fingerprint(&par) != serial_fp {
        bad.push("threads=4 diverged from serial".into());
    }

    println!(
        "seed {seed:>3} {} | {} drops={drops} gaps={gaps} shed={shed} maxladder={max_ladder}",
        if bad.is_empty() { "ok  " } else { "FAIL" },
        s.describe,
    );
    (
        Outcome {
            drops,
            gaps,
            shed,
            max_ladder,
            transitions,
        },
        bad,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed_arg = args
        .iter()
        .position(|a| a == "--seed")
        .map(|i| args[i + 1].parse::<u64>().expect("--seed takes a number"));

    let seeds: Vec<u64> = match (seed_arg, quick) {
        (Some(s), _) => vec![s],
        (None, true) => SMOKE_SEEDS.to_vec(),
        (None, false) => (0..SOAK_SEEDS).collect(),
    };

    let mut failures = 0u32;
    let mut total = Outcome {
        drops: 0,
        gaps: 0,
        shed: 0,
        max_ladder: 0,
        transitions: 0,
    };
    for &seed in &seeds {
        let (o, bad) = soak_one(seed);
        total.drops += o.drops;
        total.gaps += o.gaps;
        total.shed += o.shed;
        total.transitions += o.transitions;
        total.max_ladder = total.max_ladder.max(o.max_ladder);
        for b in &bad {
            eprintln!("  FAIL seed {seed}: {b}");
        }
        if !bad.is_empty() {
            eprintln!("  repro: cargo run -p dproc-bench --bin chaos_soak -- --seed {seed}");
            failures += 1;
        }
    }

    println!(
        "soak: {} seeds, {} drops, {} gaps, {} shed, {} ladder transitions, max ladder {}",
        seeds.len(),
        total.drops,
        total.gaps,
        total.shed,
        total.transitions,
        total.max_ladder
    );
    // Vacuity guard on the sweep itself: a soak that never dropped a
    // frame or moved a ladder is not testing the overload machinery.
    if seeds.len() > 1 && (total.drops == 0 || total.max_ladder == 0) {
        eprintln!("FAIL: soak sweep was vacuous (no drops or no ladder movement)");
        failures += 1;
    }
    if failures > 0 {
        eprintln!("{failures} seed(s) failed");
        std::process::exit(1);
    }
    println!("all seeds green");
}
