//! Regenerates Figure 10: frame latency vs. Iperf network perturbation
//! with ~3 MB events.
fn main() {
    print!("{}", dproc_bench::harness::fig10_data(60).render());
}
