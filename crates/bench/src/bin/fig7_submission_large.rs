//! Regenerates Figure 7: per-iteration submission overhead with ~5 KB
//! monitoring events.
fn main() {
    print!("{}", dproc_bench::harness::fig7_data().render());
}
