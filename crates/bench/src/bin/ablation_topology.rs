//! Ablation: peer-to-peer KECho channels vs. a Supermon-style central
//! concentrator (DESIGN.md §5.4).
//!
//! The paper argues dproc's kernel-to-kernel peer-to-peer messaging
//! "avoids central master collection points (scalability of
//! communications, fault tolerance)". This binary quantifies that on the
//! simulated cluster: the hub's link traffic grows ~quadratically with
//! node count while the busiest peer-to-peer node grows linearly, and
//! end-to-end monitoring latency inflates with the extra hop and the hub
//! queueing.

use dproc::cluster::{ClusterConfig, ClusterSim};
use kecho::Topology;
use simcore::series::{Series, Table};
use simcore::SimTime;
use simnet::NodeId;

fn busiest_node_msgs(sim: &ClusterSim) -> u64 {
    let w = sim.world();
    (0..w.len())
        .map(|i| w.net.uplink(NodeId(i)).messages() + w.net.downlink(NodeId(i)).messages())
        .max()
        .unwrap_or(0)
}

fn run(n: usize, topology: Topology) -> (u64, f64) {
    let mut sim = ClusterSim::new(ClusterConfig::new(n).topology(topology));
    sim.start();
    sim.run_until(SimTime::from_secs(60));
    (busiest_node_msgs(&sim), sim.world().mon_latency_us.mean())
}

fn main() {
    let mut traffic = Table::new(
        "Ablation: busiest node's link messages in 60 s (hot-spot growth)",
        "nodes",
    );
    let mut latency = Table::new("Ablation: mean end-to-end monitoring latency (us)", "nodes");
    let mut p2p_t = Series::new("peer-to-peer");
    let mut hub_t = Series::new("central collector");
    let mut p2p_l = Series::new("peer-to-peer");
    let mut hub_l = Series::new("central collector");
    for n in [2usize, 4, 8, 16, 24] {
        let (t, l) = run(n, Topology::PeerToPeer);
        p2p_t.push(n as f64, t as f64);
        p2p_l.push(n as f64, l);
        let (t, l) = run(n, Topology::Central(NodeId(0)));
        hub_t.push(n as f64, t as f64);
        hub_l.push(n as f64, l);
    }
    traffic.add(p2p_t);
    traffic.add(hub_t);
    latency.add(p2p_l);
    latency.add(hub_l);
    print!("{}", traffic.render());
    println!();
    print!("{}", latency.render());
}
