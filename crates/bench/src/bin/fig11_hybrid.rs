//! Regenerates Figure 11: frame latency vs. combined CPU+network
//! perturbation for dynamic filters driven by CPU-only, network-only,
//! and hybrid (CPU+net+disk) monitoring.
fn main() {
    print!("{}", dproc_bench::harness::fig11_data(60).render());
}
