//! Regenerates Figure 9(a): SmartPointer frame latency over time as
//! linpack threads accumulate at the client (no / static / dynamic
//! filters). Paper-length run: 10 segments of 200 s.
fn main() {
    print!("{}", dproc_bench::harness::fig9a_data(200, 9).render());
}
