//! Regenerates Figure 4: linpack Mflops on one node vs. cluster size,
//! under update periods of 1 s / 2 s and the 15% differential filter.
fn main() {
    print!("{}", dproc_bench::harness::fig4_data().render());
}
