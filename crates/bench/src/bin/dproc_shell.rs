//! `dproc-shell` — an interactive (and scriptable) console for driving a
//! simulated dproc cluster: create nodes, advance time, read `/proc`,
//! write control files, launch workloads, crash nodes.
//!
//! ```text
//! cargo run --release -p dproc-bench --bin dproc_shell
//! dproc> cluster 3 alan maui etna
//! dproc> run 5
//! dproc> cat maui cluster/alan/cpu
//! dproc> ctl alan etna period cpu 2
//! dproc> linpack etna 4
//! dproc> run 60
//! dproc> stats
//! ```
//!
//! Commands also stream from stdin, so sessions are scriptable:
//! `printf 'cluster 2\nrun 10\nstats\n' | cargo run ... --bin dproc_shell`.

use std::io::{self, BufRead, Write};

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::SimDur;
use simnet::NodeId;

/// One parsed shell command.
#[derive(Debug, Clone, PartialEq)]
enum Cmd {
    Cluster {
        n: usize,
        names: Vec<String>,
    },
    Run {
        seconds: f64,
    },
    Cat {
        node: String,
        path: String,
    },
    Ls {
        node: String,
        path: Option<String>,
    },
    Tree {
        node: String,
    },
    Ctl {
        node: String,
        target: String,
        text: String,
    },
    Linpack {
        node: String,
        threads: usize,
    },
    Iperf {
        from: String,
        to: String,
        mbps: f64,
    },
    Kill {
        node: String,
    },
    Revive {
        node: String,
    },
    Partition {
        a: String,
        b: String,
    },
    Heal {
        a: String,
        b: String,
    },
    Loss {
        prob: f64,
    },
    Faults,
    Threads {
        n: usize,
    },
    Racks {
        size: usize,
    },
    Topo,
    Lint {
        source: String,
    },
    Detlint,
    Credits {
        node: String,
    },
    Overload,
    Stats,
    Latency,
    Help,
    Quit,
    Nothing,
}

fn parse(line: &str) -> Result<Cmd, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Cmd::Nothing);
    }
    let mut parts = line.split_whitespace();
    let head = parts.next().expect("non-empty line");
    let rest: Vec<&str> = parts.collect();
    match head {
        "cluster" => {
            let n: usize = rest
                .first()
                .ok_or("usage: cluster <n> [names...]")?
                .parse()
                .map_err(|_| "cluster size must be a number".to_string())?;
            if n == 0 {
                return Err("cluster needs at least one node".into());
            }
            let names: Vec<String> = rest[1..].iter().map(|s| s.to_string()).collect();
            if !names.is_empty() && names.len() != n {
                return Err(format!("expected {n} names, got {}", names.len()));
            }
            Ok(Cmd::Cluster { n, names })
        }
        "run" => {
            let seconds: f64 = rest
                .first()
                .ok_or("usage: run <seconds>")?
                .parse()
                .map_err(|_| "run takes a number of seconds".to_string())?;
            if seconds <= 0.0 {
                return Err("run duration must be positive".into());
            }
            Ok(Cmd::Run { seconds })
        }
        "cat" => match rest[..] {
            [node, path] => Ok(Cmd::Cat {
                node: node.into(),
                path: path.into(),
            }),
            _ => Err("usage: cat <node> <path>".into()),
        },
        "ls" => match rest[..] {
            [node] => Ok(Cmd::Ls {
                node: node.into(),
                path: None,
            }),
            [node, path] => Ok(Cmd::Ls {
                node: node.into(),
                path: Some(path.into()),
            }),
            _ => Err("usage: ls <node> [path]".into()),
        },
        "tree" => match rest[..] {
            [node] => Ok(Cmd::Tree { node: node.into() }),
            _ => Err("usage: tree <node>".into()),
        },
        "ctl" => {
            if rest.len() < 3 {
                return Err("usage: ctl <node> <target> <control command...>".into());
            }
            Ok(Cmd::Ctl {
                node: rest[0].into(),
                target: rest[1].into(),
                text: rest[2..].join(" "),
            })
        }
        "linpack" => match rest[..] {
            [node, threads] => Ok(Cmd::Linpack {
                node: node.into(),
                threads: threads
                    .parse()
                    .map_err(|_| "thread count must be a number".to_string())?,
            }),
            _ => Err("usage: linpack <node> <threads>".into()),
        },
        "iperf" => match rest[..] {
            [from, to, mbps] => Ok(Cmd::Iperf {
                from: from.into(),
                to: to.into(),
                mbps: mbps
                    .parse()
                    .map_err(|_| "rate must be a number of Mbps".to_string())?,
            }),
            _ => Err("usage: iperf <from> <to> <mbps>".into()),
        },
        "kill" => match rest[..] {
            [node] => Ok(Cmd::Kill { node: node.into() }),
            _ => Err("usage: kill <node>".into()),
        },
        "revive" => match rest[..] {
            [node] => Ok(Cmd::Revive { node: node.into() }),
            _ => Err("usage: revive <node>".into()),
        },
        "partition" => match rest[..] {
            [a, b] => Ok(Cmd::Partition {
                a: a.into(),
                b: b.into(),
            }),
            _ => Err("usage: partition <a> <b>".into()),
        },
        "heal" => match rest[..] {
            [a, b] => Ok(Cmd::Heal {
                a: a.into(),
                b: b.into(),
            }),
            _ => Err("usage: heal <a> <b>".into()),
        },
        "loss" => match rest[..] {
            [prob] => Ok(Cmd::Loss {
                prob: prob
                    .parse()
                    .map_err(|_| "loss takes a probability 0..=1".to_string())?,
            }),
            _ => Err("usage: loss <probability>".into()),
        },
        "faults" => Ok(Cmd::Faults),
        "threads" => match rest[..] {
            [n] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| "threads takes a worker count".to_string())?;
                if n == 0 {
                    return Err("threads needs at least one worker".into());
                }
                Ok(Cmd::Threads { n })
            }
            _ => Err("usage: threads <n>".into()),
        },
        "racks" => match rest[..] {
            [size] => {
                if size == "off" {
                    return Ok(Cmd::Racks { size: 0 });
                }
                Ok(Cmd::Racks {
                    size: size
                        .parse()
                        .map_err(|_| "racks takes a rack size (or `off`)".to_string())?,
                })
            }
            _ => Err("usage: racks <size|off>".into()),
        },
        "topo" => Ok(Cmd::Topo),
        "lint" => {
            if rest.is_empty() {
                return Err(
                    "usage: lint <filter source>  (e.g. lint { output[0] = input[LOADAVG]; })"
                        .into(),
                );
            }
            Ok(Cmd::Lint {
                source: rest.join(" "),
            })
        }
        "detlint" => Ok(Cmd::Detlint),
        "credits" => match rest[..] {
            [node] => Ok(Cmd::Credits { node: node.into() }),
            _ => Err("usage: credits <node>".into()),
        },
        "overload" => Ok(Cmd::Overload),
        "stats" => Ok(Cmd::Stats),
        "latency" => Ok(Cmd::Latency),
        "help" | "?" => Ok(Cmd::Help),
        "quit" | "exit" | "q" => Ok(Cmd::Quit),
        other => Err(format!("unknown command `{other}` (try `help`)")),
    }
}

const HELP: &str = "\
cluster <n> [names...]      create an n-node monitored cluster
run <seconds>               advance simulated time
cat <node> <path>           read a /proc entry on a node
ls <node> [path]            list a /proc directory
tree <node>                 render a node's whole /proc tree
ctl <node> <target> <cmd>   write a control command (period/delta/above/
                            below/range/and/clear/window/filter/nofilter)
linpack <node> <threads>    start linpack threads on a node
iperf <from> <to> <mbps>    start a UDP flood between nodes
kill <node>                 crash a node
revive <node>               restart a crashed node (rejoins + resyncs)
partition <a> <b>           sever the path between two nodes
heal <a> <b>                remove a partition
loss <probability>          drop each delivery with this probability
faults                      active faults and drop/detection counters
threads <n>                 worker shards for the next cluster (1 = serial)
racks <size|off>            rack size for the next cluster (off = flat star)
topo                        fabric shape, rack membership, digest flow
lint <filter source>        run the static verifier on an E-code filter
detlint                     replay-safety scan of the workspace sources
credits <node>              a publisher's credit windows, outboxes, chokes
overload                    ladder levels, shed/stall counters, link drops
stats                       per-node d-mon counters
latency                     monitoring latency summary
quit                        leave";

struct Shell {
    sim: Option<ClusterSim>,
    threads: usize,
    /// Rack size for the next `cluster` command; 0 means flat star.
    rack_size: usize,
}

impl Shell {
    fn new() -> Self {
        Shell {
            sim: None,
            threads: 1,
            rack_size: 0,
        }
    }

    /// Live fault injection reaches into the world through `parts()`,
    /// which only the serial driver exposes.
    fn serial_sim(&mut self, what: &str) -> Result<&mut ClusterSim, String> {
        let sim = self.sim.as_mut().ok_or("no cluster yet")?;
        if sim.threads() > 1 {
            return Err(format!(
                "{what} needs the serial driver — run `threads 1` and rebuild the cluster"
            ));
        }
        Ok(sim)
    }

    fn node(&self, name: &str) -> Result<NodeId, String> {
        let sim = self
            .sim
            .as_ref()
            .ok_or("no cluster yet (try `cluster 3`)")?;
        sim.world()
            .node_by_name(name)
            .or_else(|| {
                name.parse::<usize>()
                    .ok()
                    .filter(|&i| i < sim.world().len())
                    .map(NodeId)
            })
            .ok_or_else(|| format!("unknown node `{name}`"))
    }

    /// Execute one command. `Ok(None)` means quit; `Err` is a user error
    /// to report (the shell keeps running).
    fn exec(&mut self, cmd: Cmd) -> Result<Option<String>, String> {
        self.exec_inner(cmd).map(|out| out.map(|s| s.to_string()))
    }

    fn exec_inner(&mut self, cmd: Cmd) -> Result<Option<String>, String> {
        match cmd {
            Cmd::Nothing => Ok(Some(String::new())),
            Cmd::Help => Ok(Some(HELP.to_string())),
            Cmd::Quit => Ok(None),
            Cmd::Cluster { n, names } => {
                let mut cfg = if names.is_empty() {
                    ClusterConfig::new(n)
                } else {
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    ClusterConfig::named(&refs)
                };
                if self.rack_size > 0 {
                    cfg = cfg.racks(self.rack_size);
                }
                let mut sim = ClusterSim::new(cfg);
                sim.set_threads(self.threads);
                sim.start();
                let names: Vec<String> = sim.world().hosts.iter().map(|h| h.name.clone()).collect();
                let shards = sim.shards();
                let n_racks = sim.world().placement.n_racks();
                self.sim = Some(sim);
                let mut up = String::from("cluster up");
                if n_racks > 1 {
                    up.push_str(&format!(" in {n_racks} racks"));
                }
                if shards > 1 {
                    up.push_str(&format!(" on {shards} shards"));
                }
                Ok(Some(format!("{up}: {}", names.join(", "))))
            }
            Cmd::Run { seconds } => match &mut self.sim {
                Some(sim) => {
                    sim.run_for(SimDur::from_secs_f64(seconds));
                    Ok(Some(format!("t = {}", sim.now())))
                }
                None => Err("no cluster yet".into()),
            },
            Cmd::Cat { node, path } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_ref().expect("checked");
                match sim.world().hosts[id.0].proc.read(&path) {
                    Ok(content) => Ok(Some(content.to_string())),
                    Err(e) => Err(format!("cat: {e}")),
                }
            }
            Cmd::Ls { node, path } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_ref().expect("checked");
                let fs = &sim.world().hosts[id.0].proc;
                let entries = match path {
                    Some(p) => fs.list(&p).map_err(|e| format!("ls: {e}"))?,
                    None => fs.list_root(),
                };
                Ok(Some(entries.join("\n")))
            }
            Cmd::Tree { node } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_ref().expect("checked");
                Ok(Some(sim.world().hosts[id.0].proc.render_tree()))
            }
            Cmd::Ctl { node, target, text } => {
                let id = self.node(&node)?;
                // Validate locally so typos surface immediately.
                if let Err(e) = dproc::control::parse_control(&text) {
                    return Err(format!("ctl: {e}"));
                }
                let sim = self.sim.as_mut().expect("checked");
                sim.write_control(id, &target, &text);
                Ok(Some(format!(
                    "queued for {target} (applies at its next poll)"
                )))
            }
            Cmd::Linpack { node, threads } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_mut().expect("checked");
                sim.start_linpack(id, threads);
                Ok(Some(format!(
                    "{threads} linpack thread(s) running on {node}"
                )))
            }
            Cmd::Iperf { from, to, mbps } => {
                let f = self.node(&from)?;
                let t = self.node(&to)?;
                let sim = self.sim.as_mut().expect("checked");
                sim.start_iperf(f, t, mbps * 1e6);
                Ok(Some(format!("flooding {from} -> {to} at {mbps} Mbps")))
            }
            Cmd::Kill { node } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_mut().expect("checked");
                sim.world_mut().kill_node(id);
                Ok(Some(format!("{node} is down")))
            }
            Cmd::Revive { node } => {
                let id = self.node(&node)?;
                let sim = self.serial_sim("revive")?;
                if sim.world().is_alive(id) {
                    return Err(format!("{node} is already alive"));
                }
                let (w, s) = sim.parts();
                w.revive_node(s, id);
                Ok(Some(format!(
                    "{node} is back (epoch {}), polls resume next period",
                    w.dmons[id.0].epoch()
                )))
            }
            Cmd::Partition { a, b } => {
                let ia = self.node(&a)?;
                let ib = self.node(&b)?;
                if ia == ib {
                    return Err("cannot partition a node from itself".into());
                }
                let sim = self.serial_sim("partition")?;
                let (w, s) = sim.parts();
                w.apply_fault(s, &simnet::FaultAction::Partition(ia, ib));
                Ok(Some(format!("{a} <-/-> {b}")))
            }
            Cmd::Heal { a, b } => {
                let ia = self.node(&a)?;
                let ib = self.node(&b)?;
                let sim = self.serial_sim("heal")?;
                let (w, s) = sim.parts();
                w.apply_fault(s, &simnet::FaultAction::Heal(ia, ib));
                Ok(Some(format!("{a} <---> {b}")))
            }
            Cmd::Loss { prob } => {
                if !(0.0..=1.0).contains(&prob) {
                    return Err("probability must be in 0..=1".into());
                }
                let sim = self.serial_sim("loss")?;
                let (w, s) = sim.parts();
                w.apply_fault(s, &simnet::FaultAction::Loss(prob));
                Ok(Some(format!("network-wide loss probability = {prob}")))
            }
            Cmd::Faults => match &self.sim {
                Some(sim) => {
                    let w = sim.world();
                    let mut out = String::new();
                    let parts = w.fault.partitions();
                    if parts.is_empty() {
                        out.push_str("partitions: none\n");
                    } else {
                        let list: Vec<String> = parts
                            .iter()
                            .map(|(a, b)| {
                                format!("{} <-/-> {}", w.hosts[a.0].name, w.hosts[b.0].name)
                            })
                            .collect();
                        out.push_str(&format!("partitions: {}\n", list.join(", ")));
                    }
                    out.push_str(&format!("loss probability: {}\n", w.fault.loss_prob()));
                    let fs = w.fault.stats;
                    out.push_str(&format!(
                        "drops: {} total ({} partition, {} loss, {} crash)\n",
                        fs.events_lost, fs.partition_drops, fs.loss_drops, fs.crash_drops
                    ));
                    out.push_str(
                        "node           gaps  hb_sent  hb_recv  hb_miss  suspected  evicted  resyncs\n",
                    );
                    for i in 0..w.len() {
                        let d = &w.dmons[i].stats;
                        out.push_str(&format!(
                            "{:<12} {:>6} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
                            w.hosts[i].name,
                            d.gaps_detected,
                            d.heartbeats_sent,
                            d.heartbeats_received,
                            d.heartbeats_missed,
                            d.nodes_suspected,
                            d.nodes_evicted,
                            d.resyncs,
                        ));
                    }
                    Ok(Some(out))
                }
                None => Err("no cluster yet".into()),
            },
            Cmd::Threads { n } => {
                self.threads = n;
                let note = if self.sim.is_some() {
                    " (applies when the next `cluster` is built)"
                } else {
                    ""
                };
                Ok(Some(format!("threads = {n}{note}")))
            }
            Cmd::Racks { size } => {
                self.rack_size = size;
                let note = if self.sim.is_some() {
                    " (applies when the next `cluster` is built)"
                } else {
                    ""
                };
                Ok(Some(if size == 0 {
                    format!("topology = flat star{note}")
                } else {
                    format!("topology = racks of {size}{note}")
                }))
            }
            Cmd::Topo => match &self.sim {
                Some(sim) => {
                    let w = sim.world();
                    let p = &w.placement;
                    if p.is_star() {
                        return Ok(Some(format!(
                            "flat star: {} node(s) on one switch, no aggregation tier",
                            w.len()
                        )));
                    }
                    let mut out = format!(
                        "hierarchical: {} nodes in {} racks behind a spine\n",
                        p.len(),
                        p.n_racks()
                    );
                    for (k, rack) in p.racks().enumerate() {
                        let agg = p.aggregator(k);
                        let members: Vec<&str> =
                            rack.range().map(|i| w.hosts[i].name.as_str()).collect();
                        let up = w.net.switch_uplink(k);
                        let down = w.net.switch_downlink(k);
                        out.push_str(&format!(
                            "rack {k}: aggregator {}; members: {}\n        spine up {} msgs ({} drops), down {} msgs ({} drops)\n",
                            w.hosts[agg.0].name,
                            members.join(", "),
                            up.messages(),
                            up.drops(),
                            down.messages(),
                            down.drops(),
                        ));
                    }
                    let sent: u64 = w.dmons.iter().map(|d| d.stats.digests_sent).sum();
                    let recv: u64 = w.dmons.iter().map(|d| d.stats.digests_received).sum();
                    let records: u64 = w.dmons.iter().map(|d| d.stats.digest_records).sum();
                    out.push_str(&format!(
                        "digests: {sent} sent, {recv} received, {records} records"
                    ));
                    Ok(Some(out))
                }
                None => Err("no cluster yet".into()),
            },
            Cmd::Lint { source } => Ok(Some(lint_report(&source)?)),
            Cmd::Detlint => Ok(Some(detlint_report()?)),
            Cmd::Credits { node } => {
                let id = self.node(&node)?;
                let sim = self.sim.as_ref().expect("checked");
                let w = sim.world();
                let d = &w.dmons[id.0];
                let mut out = format!("{node} as publisher, per subscriber stream:\n");
                out.push_str("subscriber     credits  parked  choked\n");
                for i in 0..w.len() {
                    if i == id.0 {
                        continue;
                    }
                    let sub = NodeId(i);
                    out.push_str(&format!(
                        "{:<12} {:>9} {:>7} {:>7}\n",
                        w.hosts[i].name,
                        d.credits_for(sub),
                        d.outbox_len(sub),
                        d.choked_toward(sub),
                    ));
                }
                out.push_str(&format!(
                    "shed {} events, {} credit-stalled polls",
                    d.stats.events_shed, d.stats.credits_stalled
                ));
                Ok(Some(out))
            }
            Cmd::Overload => match &self.sim {
                Some(sim) => {
                    let w = sim.world();
                    let mut out = String::new();
                    out.push_str("node          ladder  transitions  shed  stalled_polls\n");
                    for i in 0..w.len() {
                        let d = &w.dmons[i];
                        out.push_str(&format!(
                            "{:<12} {:>7} {:>12} {:>5} {:>14}\n",
                            w.hosts[i].name,
                            d.ladder_level(),
                            d.stats.ladder_transitions,
                            d.stats.events_shed,
                            d.stats.credits_stalled,
                        ));
                    }
                    let (hwm, _) = w.net.queue_hwm();
                    out.push_str(&format!(
                        "network: {} link tail-drops, queue high-water {} msgs",
                        w.net.link_drops(),
                        hwm
                    ));
                    Ok(Some(out))
                }
                None => Err("no cluster yet".into()),
            },
            Cmd::Stats => match &self.sim {
                Some(sim) => {
                    let mut out = String::new();
                    out.push_str(
                        "node           sent    recv  ctl  filters_err  rejected  skipped  alive\n",
                    );
                    let w = sim.world();
                    for i in 0..w.len() {
                        let d = &w.dmons[i];
                        out.push_str(&format!(
                            "{:<12} {:>6} {:>7} {:>4} {:>12} {:>9} {:>8} {:>6}\n",
                            w.hosts[i].name,
                            d.stats.events_sent,
                            d.stats.events_received,
                            d.stats.control_handled,
                            d.stats.filter_errors,
                            d.stats.filters_rejected,
                            d.stats.modules_skipped,
                            w.is_alive(NodeId(i)),
                        ));
                    }
                    Ok(Some(out))
                }
                None => Err("no cluster yet".into()),
            },
            Cmd::Latency => match &self.sim {
                Some(sim) => {
                    let s = &sim.world().mon_latency_us;
                    if s.is_empty() {
                        Ok(Some("no monitoring deliveries yet".into()))
                    } else {
                        Ok(Some(format!(
                            "monitoring latency: mean {:.0} us, p50 {:.0}, p99 {:.0}, max {:.0} ({} events)",
                            s.mean(),
                            s.percentile(50.0),
                            s.percentile(99.0),
                            s.max(),
                            s.len()
                        )))
                    }
                }
                None => Err("no cluster yet".into()),
            },
        }
    }
}

/// Run the static verifier on filter source against the standard d-mon
/// metric environment; the report matches what a publisher would decide
/// at deploy time.
fn lint_report(source: &str) -> Result<String, String> {
    use ecode::{vm, CostBound, EnvSpec, Filter, MetricSet};

    let names: Vec<&str> = dproc::modules::standard_modules()
        .iter()
        .map(|m| m.metric_name())
        .collect();
    let env = EnvSpec::new(names);
    let filter = Filter::compile(source, &env).map_err(|e| format!("lint: compile error: {e}"))?;
    let cert = filter.cert();
    let mut out = String::new();
    for d in &cert.diagnostics {
        out.push_str(&format!("{d}\n"));
    }
    match &cert.cost {
        CostBound::Bounded(n) => out.push_str(&format!(
            "cost: at most {n} VM instructions (budget {})\n",
            vm::DEFAULT_BUDGET
        )),
        CostBound::Unbounded { pos, reason } => {
            out.push_str(&format!("cost: unbounded (at {pos}): {reason}\n"));
        }
    }
    match &cert.reads {
        MetricSet::All => out.push_str("reads: all metrics (dynamic input index)\n"),
        MetricSet::Fixed(set) if set.is_empty() => out.push_str("reads: nothing\n"),
        MetricSet::Fixed(set) => {
            let names: Vec<String> = set
                .iter()
                .map(|&i| {
                    env.name_of(i)
                        .map_or_else(|| format!("#{i}"), str::to_string)
                })
                .collect();
            out.push_str(&format!("reads: {}\n", names.join(", ")));
        }
    }
    match &cert.effects.writes {
        MetricSet::All => out.push_str("writes: all output slots (dynamic index)\n"),
        MetricSet::Fixed(set) if set.is_empty() => out.push_str("writes: nothing\n"),
        MetricSet::Fixed(set) => {
            let slots: Vec<String> = set.iter().map(|i| format!("output[{i}]")).collect();
            out.push_str(&format!("writes: {}\n", slots.join(", ")));
        }
    }
    let memo_note = match cert.effects.memo {
        ecode::MemoClass::Shared => "one evaluation serves every subscriber",
        ecode::MemoClass::SnapshotKeyed => {
            "shared per input snapshot, records copied per subscriber"
        }
        ecode::MemoClass::Bypass => "touches last_value_sent — evaluated per subscriber",
    };
    out.push_str(&format!(
        "memo: {} ({memo_note}); memo_safe = {}\n",
        cert.effects.memo.label(),
        cert.memo_safe
    ));
    match filter.admission_error() {
        None => out.push_str("verdict: admitted"),
        Some(reason) => out.push_str(&format!("verdict: rejected — {reason}")),
    }
    Ok(out)
}

/// Run the workspace replay-safety lint (same engine as
/// `cargo run -p detlint -- --check`) and summarize the result plus the
/// committed baseline.
fn detlint_report() -> Result<String, String> {
    use std::path::PathBuf;

    // The shell may run from anywhere; find the workspace root the same
    // way the detlint CLI does.
    let mut root = std::env::current_dir().map_err(|e| format!("detlint: cwd: {e}"))?;
    loop {
        let manifest = root.join("Cargo.toml");
        if std::fs::read_to_string(&manifest)
            .map(|t| t.contains("[workspace]"))
            .unwrap_or(false)
        {
            break;
        }
        if !root.pop() {
            return Err("detlint: no workspace root above the current directory".into());
        }
    }
    let baseline_path: PathBuf = root.join("detlint.baseline");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = detlint::Baseline::parse(&baseline_text);
    let report = detlint::run_scan(&root, &baseline).map_err(|e| format!("detlint: {e}"))?;
    let mut out = String::new();
    for f in &report.fresh {
        out.push_str(&f.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "detlint: {} files, {} fns scanned; {} error(s), {} warning(s), {} baselined",
        report.files_scanned,
        report.fns_scanned,
        report.fresh_errors(),
        report
            .fresh
            .iter()
            .filter(|f| f.severity == detlint::Severity::Warning)
            .count(),
        report.baselined.len()
    ));
    Ok(out)
}

fn main() {
    let stdin = io::stdin();
    let interactive = atty_stdin();
    let mut shell = Shell::new();
    if interactive {
        println!("dproc shell — `help` lists commands");
    }
    loop {
        if interactive {
            print!("dproc> ");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match parse(&line) {
            Ok(cmd) => match shell.exec(cmd) {
                Ok(Some(out)) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                Ok(None) => break,
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Crude interactivity check without extra dependencies: scripted runs
/// set `DPROC_SHELL_BATCH=1` or just pipe stdin (we can't portably detect
/// a tty without libc, so default to non-interactive when the var is set).
fn atty_stdin() -> bool {
    std::env::var("DPROC_SHELL_BATCH").is_err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_the_documented_grammar() {
        assert_eq!(
            parse("cluster 3 a b c").unwrap(),
            Cmd::Cluster {
                n: 3,
                names: vec!["a".into(), "b".into(), "c".into()]
            }
        );
        assert_eq!(parse("run 5").unwrap(), Cmd::Run { seconds: 5.0 });
        assert_eq!(
            parse("cat maui cluster/alan/cpu").unwrap(),
            Cmd::Cat {
                node: "maui".into(),
                path: "cluster/alan/cpu".into()
            }
        );
        assert_eq!(
            parse("ctl alan etna period cpu 2").unwrap(),
            Cmd::Ctl {
                node: "alan".into(),
                target: "etna".into(),
                text: "period cpu 2".into()
            }
        );
        assert_eq!(parse("threads 4").unwrap(), Cmd::Threads { n: 4 });
        assert_eq!(parse("racks 8").unwrap(), Cmd::Racks { size: 8 });
        assert_eq!(parse("racks off").unwrap(), Cmd::Racks { size: 0 });
        assert_eq!(parse("topo").unwrap(), Cmd::Topo);
        assert_eq!(
            parse("credits alan").unwrap(),
            Cmd::Credits {
                node: "alan".into()
            }
        );
        assert_eq!(parse("overload").unwrap(), Cmd::Overload);
        assert_eq!(parse("  # comment").unwrap(), Cmd::Nothing);
        assert_eq!(parse("").unwrap(), Cmd::Nothing);
        assert_eq!(parse("quit").unwrap(), Cmd::Quit);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "cluster",
            "cluster x",
            "cluster 0",
            "cluster 2 onlyone",
            "run",
            "run -3",
            "cat onlynode",
            "ctl node target",
            "linpack node many",
            "iperf a b fast",
            "revive",
            "partition onlyone",
            "heal onlyone",
            "loss lots",
            "threads",
            "threads zero",
            "threads 0",
            "racks",
            "racks tall",
            "credits",
            "credits two nodes",
            "frobnicate",
        ] {
            assert!(parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn scripted_session_works_end_to_end() {
        let mut shell = Shell::new();
        let script = [
            "cluster 3 alan maui etna",
            "run 5",
            "linpack etna 2",
            "run 65",
            "ctl alan etna period cpu 2",
            "run 5",
            "stats",
            "latency",
        ];
        let mut outputs = Vec::new();
        for line in script {
            let out = shell
                .exec(parse(line).unwrap())
                .expect("no error")
                .expect("no quit");
            outputs.push(out);
        }
        assert!(outputs[0].contains("alan, maui, etna"));
        // After 70 s, maui can read etna's load through /proc.
        let out = shell
            .exec(parse("cat maui cluster/etna/cpu").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.starts_with("cpu "), "{out}");
        assert!(outputs[6].contains("alan"));
        assert!(outputs[7].contains("monitoring latency"));
        // The control write installed a policy at etna.
        let sim = shell.sim.as_ref().unwrap();
        assert!(sim.world().dmons[2].policy_for(NodeId(0)).is_some());
    }

    #[test]
    fn lint_command_reports_verdicts() {
        let mut shell = Shell::new();
        // Works with no cluster: lint is purely static.
        let ok = shell
            .exec(parse("lint { output[0] = input[LOADAVG]; }").unwrap())
            .unwrap()
            .unwrap();
        assert!(ok.contains("verdict: admitted"), "{ok}");
        assert!(ok.contains("reads: LOADAVG"), "{ok}");
        assert!(ok.contains("writes: output[0]"), "{ok}");
        assert!(ok.contains("memo: snapshot-keyed"), "{ok}");
        assert!(ok.contains("memo_safe = true"), "{ok}");
        let bad = shell
            .exec(parse("lint { while (1) { } }").unwrap())
            .unwrap()
            .unwrap();
        assert!(bad.contains("cost: unbounded"), "{bad}");
        assert!(bad.contains("verdict: rejected"), "{bad}");
        // Compile errors surface as recoverable shell errors.
        assert!(shell.exec(parse("lint { nonsense").unwrap()).is_err());
        // An impure filter is admitted but loses memo sharing.
        let impure = shell
            .exec(parse("lint { if (input[LOADAVG].value > input[LOADAVG].last_value_sent) { output[0] = input[LOADAVG]; } }").unwrap())
            .unwrap()
            .unwrap();
        assert!(impure.contains("memo: per-subscriber"), "{impure}");
        assert!(impure.contains("memo_safe = false"), "{impure}");
        assert!(impure.contains("verdict: admitted"), "{impure}");
    }

    #[test]
    fn detlint_command_summarizes_the_workspace() {
        let mut shell = Shell::new();
        let out = shell.exec(parse("detlint").unwrap()).unwrap().unwrap();
        assert!(out.contains("detlint:"), "{out}");
        assert!(out.contains("files"), "{out}");
        // The committed tree must scan clean.
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn fault_commands_drive_the_failure_model() {
        let mut shell = Shell::new();
        shell
            .exec(parse("cluster 3 alan maui etna").unwrap())
            .unwrap();
        shell.exec(parse("run 5").unwrap()).unwrap();
        // Crash + long silence: survivors suspect and then evict maui.
        shell.exec(parse("kill maui").unwrap()).unwrap();
        shell.exec(parse("run 12").unwrap()).unwrap();
        let faults = shell.exec(parse("faults").unwrap()).unwrap().unwrap();
        assert!(faults.contains("partitions: none"), "{faults}");
        {
            let sim = shell.sim.as_ref().unwrap();
            assert!(!sim.world().is_alive(NodeId(1)));
            assert!(sim.world().dmons[0].stats.nodes_evicted >= 1);
        }
        // Revive: maui rejoins and the survivors see it fresh again.
        let out = shell.exec(parse("revive maui").unwrap()).unwrap().unwrap();
        assert!(out.contains("epoch 1"), "{out}");
        shell.exec(parse("run 10").unwrap()).unwrap();
        {
            let sim = shell.sim.as_ref().unwrap();
            assert!(sim.world().is_alive(NodeId(1)));
            let status = sim.world().hosts[0]
                .proc
                .read("cluster/maui/status")
                .unwrap();
            assert!(status.starts_with("fresh"), "{status}");
        }
        // Partition shows up in `faults` and drops deliveries; heal clears.
        shell.exec(parse("partition alan etna").unwrap()).unwrap();
        shell.exec(parse("run 5").unwrap()).unwrap();
        let faults = shell.exec(parse("faults").unwrap()).unwrap().unwrap();
        assert!(faults.contains("alan <-/-> etna"), "{faults}");
        shell.exec(parse("heal alan etna").unwrap()).unwrap();
        let faults = shell.exec(parse("faults").unwrap()).unwrap().unwrap();
        assert!(faults.contains("partitions: none"), "{faults}");
        // Reviving a live node is a user error, not a crash.
        assert!(shell.exec(parse("revive alan").unwrap()).is_err());
        assert!(shell.exec(parse("partition alan alan").unwrap()).is_err());
        assert!(shell.exec(parse("loss 2.0").unwrap()).is_err());
    }

    #[test]
    fn credits_and_overload_commands_surface_flow_control() {
        let mut shell = Shell::new();
        // Both need a cluster.
        assert!(shell.exec(parse("credits node0").unwrap()).is_err());
        assert!(shell.exec(parse("overload").unwrap()).is_err());
        shell
            .exec(parse("cluster 3 alan maui etna").unwrap())
            .unwrap();
        shell.exec(parse("run 10").unwrap()).unwrap();
        // A healthy cluster: full windows, nothing parked, ladder 0.
        let out = shell.exec(parse("credits alan").unwrap()).unwrap().unwrap();
        assert!(out.contains("maui") && out.contains("etna"), "{out}");
        assert!(out.contains("subscriber"), "{out}");
        assert!(!out.contains("alan  "), "publisher not its own subscriber");
        let out = shell.exec(parse("overload").unwrap()).unwrap().unwrap();
        assert!(out.contains("ladder"), "{out}");
        assert!(out.contains("link tail-drops"), "{out}");
        for line in out.lines().skip(1).take(3) {
            assert!(line.contains(" 0"), "healthy cluster shows zeros: {line}");
        }
        // Crash a subscriber: the survivors' windows toward it deflate
        // (spend with no grants coming back) — visible through `credits`
        // before the failure detector evicts the peer and reaps the
        // stream state.
        shell.exec(parse("kill etna").unwrap()).unwrap();
        shell.exec(parse("run 4").unwrap()).unwrap();
        let out = shell.exec(parse("credits alan").unwrap()).unwrap().unwrap();
        assert!(out.contains("etna"), "{out}");
        assert!(out.contains("credit-stalled polls"), "{out}");
        let sim = shell.sim.as_ref().unwrap();
        assert!(
            sim.world().dmons[0].credits_for(NodeId(2)) < kecho::INITIAL_CREDITS,
            "window toward the dead subscriber should be deflating:\n{out}"
        );
    }

    #[test]
    fn threads_command_builds_a_sharded_cluster() {
        let mut shell = Shell::new();
        let out = shell.exec(parse("threads 2").unwrap()).unwrap().unwrap();
        assert!(out.contains("threads = 2"), "{out}");
        let out = shell
            .exec(parse("cluster 4 a b c d").unwrap())
            .unwrap()
            .unwrap();
        assert!(out.contains("2 shards"), "{out}");
        shell.exec(parse("run 5").unwrap()).unwrap();
        // Read paths still work against the reassembled world.
        let stats = shell.exec(parse("stats").unwrap()).unwrap().unwrap();
        assert!(stats.contains('a'), "{stats}");
        // Live fault injection is a friendly error, not a panic.
        let err = shell.exec(parse("loss 0.1").unwrap()).unwrap_err();
        assert!(err.contains("serial driver"), "{err}");
        let err = shell.exec(parse("partition a b").unwrap()).unwrap_err();
        assert!(err.contains("serial driver"), "{err}");
        // Dropping back to one thread restores them on the next cluster.
        shell.exec(parse("threads 1").unwrap()).unwrap();
        shell.exec(parse("cluster 2").unwrap()).unwrap();
        shell.exec(parse("run 2").unwrap()).unwrap();
        assert!(shell.exec(parse("loss 0.1").unwrap()).is_ok());
    }

    #[test]
    fn racks_and_topo_commands_surface_the_hierarchy() {
        let mut shell = Shell::new();
        // topo needs a cluster.
        assert!(shell.exec(parse("topo").unwrap()).is_err());
        shell.exec(parse("racks 2").unwrap()).unwrap();
        let up = shell
            .exec(parse("cluster 6 a b c d e f").unwrap())
            .unwrap()
            .unwrap();
        assert!(up.contains("in 3 racks"), "{up}");
        shell.exec(parse("run 12").unwrap()).unwrap();
        let out = shell.exec(parse("topo").unwrap()).unwrap().unwrap();
        assert!(out.contains("6 nodes in 3 racks"), "{out}");
        assert!(out.contains("aggregator a"), "{out}");
        assert!(out.contains("aggregator c"), "{out}");
        assert!(out.contains("members: e, f"), "{out}");
        assert!(out.contains("digests:"), "{out}");
        assert!(!out.contains("digests: 0 sent"), "{out}");
        // Aggregators publish rack summaries readable through /proc.
        let digest = shell
            .exec(parse("cat a cluster/rack1/cpu").unwrap())
            .unwrap()
            .unwrap();
        assert!(digest.contains("mean"), "{digest}");
        // Rack scoping: a (rack 0) reads its rack peer b, but d's stream
        // (rack 1) never reaches it — only rack 1's digest does.
        assert!(shell.exec(parse("cat a cluster/b/cpu").unwrap()).is_ok());
        assert!(shell.exec(parse("cat a cluster/d/cpu").unwrap()).is_err());
        // `racks off` restores the flat star for the next cluster.
        shell.exec(parse("racks off").unwrap()).unwrap();
        shell.exec(parse("cluster 2").unwrap()).unwrap();
        let out = shell.exec(parse("topo").unwrap()).unwrap().unwrap();
        assert!(out.contains("flat star"), "{out}");
    }

    #[test]
    fn numeric_node_names_resolve() {
        let mut shell = Shell::new();
        shell.exec(parse("cluster 2").unwrap()).unwrap();
        shell.exec(parse("run 3").unwrap()).unwrap();
        let out = shell.exec(parse("ls 0 cluster").unwrap()).unwrap().unwrap();
        assert!(out.contains("node0") && out.contains("node1"));
    }

    #[test]
    fn bad_control_text_reports_without_breaking() {
        let mut shell = Shell::new();
        shell.exec(parse("cluster 2").unwrap()).unwrap();
        let err = shell
            .exec(parse("ctl node0 node1 gibberish here").unwrap())
            .unwrap_err();
        assert!(err.contains("ctl:"), "{err}");
        // Shell still alive after a user error.
        assert!(shell
            .exec(parse("run 1").unwrap())
            .unwrap()
            .unwrap()
            .contains("t ="));
        // Unknown node is also a recoverable error.
        assert!(shell.exec(parse("cat nosuch loadavg").unwrap()).is_err());
    }
}
