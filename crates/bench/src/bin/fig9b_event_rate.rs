//! Regenerates Figure 9(b): events/sec processed at the client vs. the
//! number of linpack threads.
fn main() {
    print!("{}", dproc_bench::harness::fig9b_data(200, 9).render());
}
