//! Ablation: server fan-out scalability — how many clients one
//! SmartPointer server sustains, with and without dproc-driven dynamic
//! filters.
//!
//! The paper claims its customizations "decrease the total lag in the
//! system and increase stream transfer rate"; this sweep quantifies the
//! aggregate effect as the client population grows. Every client is a
//! uniprocessor display node; half of them carry two linpack threads
//! (mixed population). Without filters the loaded half collapses and
//! drags buffer memory with it; with hybrid dynamic filters every client
//! keeps the frame rate.

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::parallel::{run_sweep, suggested_threads};
use simcore::series::{Series, Table};
use simcore::SimTime;
use simnet::NodeId;
use simos::host::HostConfig;
use smartpointer::policy::{MonitorSet, Policy};
use smartpointer::{FrameSpec, SmartPointer, SmartPointerConfig};

struct Outcome {
    mean_rate: f64,
    worst_latency: f64,
    dropped: u64,
}

fn run(n_clients: usize, policy: Policy) -> Outcome {
    let mut cfg = ClusterConfig::new(n_clients + 1);
    for i in 1..=n_clients {
        cfg = cfg.host_cfg(i, HostConfig::uniprocessor());
    }
    let mut sim = ClusterSim::new(cfg);
    sim.start();
    for i in 1..=n_clients {
        sim.write_control(NodeId(i), &format!("node{i}"), "window cpu 5");
    }
    let app = SmartPointer::install(
        &mut sim,
        SmartPointerConfig {
            server: NodeId(0),
            clients: (1..=n_clients).map(|i| (NodeId(i), policy)).collect(),
            spec: FrameSpec::interactive(),
            rate_hz: 5.0,
            write_to_disk: false,
            queue_cap: 64,
        },
    );
    // Half the clients are CPU-loaded.
    for i in (1..=n_clients).step_by(2) {
        sim.start_linpack(NodeId(i), 2);
    }
    sim.run_until(SimTime::from_secs(120));
    let horizon = 120.0;
    let mut rates = Vec::new();
    let mut worst = 0.0f64;
    let mut dropped = 0;
    for c in 0..n_clients {
        let st = app.client_stats(c);
        rates.push(st.processed as f64 / horizon);
        if let Some(&(_, l)) = st.log.last() {
            worst = worst.max(l);
        }
        dropped += st.dropped;
    }
    Outcome {
        mean_rate: rates.iter().sum::<f64>() / rates.len() as f64,
        worst_latency: worst,
        dropped,
    }
}

fn main() {
    let sizes = [1usize, 2, 4, 8, 12, 16];
    let mut rate_table = Table::new(
        "Ablation: mean client frame rate vs. population (server at 5/s)",
        "clients",
    );
    let mut lat_table = Table::new("Ablation: worst client latency (s)", "clients");
    let mut drop_table = Table::new("Ablation: total frames dropped in 120 s", "clients");
    for (label, policy) in [
        ("no filter", Policy::NoFilter),
        ("dynamic hybrid", Policy::Dynamic(MonitorSet::Hybrid)),
    ] {
        let outcomes = run_sweep(sizes.to_vec(), suggested_threads(6), move |n| {
            run(n, policy)
        });
        let mut rate = Series::new(label);
        let mut lat = Series::new(label);
        let mut drops = Series::new(label);
        for (n, o) in sizes.iter().zip(outcomes) {
            rate.push(*n as f64, o.mean_rate);
            lat.push(*n as f64, o.worst_latency);
            drops.push(*n as f64, o.dropped as f64);
        }
        rate_table.add(rate);
        lat_table.add(lat);
        drop_table.add(drops);
    }
    print!("{}", rate_table.render());
    println!();
    print!("{}", lat_table.render());
    println!();
    print!("{}", drop_table.render());
}
