//! Regenerates Figure 8: per-polling-iteration overhead of receiving
//! incoming monitoring events.
fn main() {
    print!("{}", dproc_bench::harness::fig8_data().render());
}
