//! `bench_pipeline` — end-to-end wall-clock throughput of the simulator's
//! poll→sample→filter→encode→deliver pipeline on the 16-node scalability
//! scenario.
//!
//! Unlike the `fig*` binaries (which report *modeled* costs), this measures
//! the harness itself: how many simulated monitoring events per wall-clock
//! second the pipeline sustains, how many wall-clock nanoseconds one d-mon
//! poll tick costs, and how many heap allocations each delivered event
//! drags along. The numbers land in `BENCH_pipeline.json` so every PR has
//! a perf trajectory.
//!
//! Usage:
//!   bench_pipeline [--quick] [--threads N] [--out PATH] [--check BASELINE.json]
//!
//! `--quick` shortens the measured window (CI smoke). `--threads N` sets
//! the worker count for the sharded-parallel section (default: one shard
//! per available core, up to 8); the section runs the 64-node scenario
//! serially and on N shards and records the speedup. `--check` compares
//! events/sec and allocs/event against a previously emitted JSON and
//! exits non-zero on a regression (>25% throughput drop or >15% alloc
//! growth). The serial baseline fields are measured with threads=1
//! regardless of `--threads`, so the gate is machine-parallelism
//! independent.

// The counting allocator is the one place in the workspace that needs
// `unsafe`: wrapping the system allocator behind `GlobalAlloc` to count
// allocations per delivered event.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::{SimDur, SimTime};
use simnet::{FaultPlan, LinkSpec, NodeId};

/// System allocator wrapper counting every allocation (not bytes — the
/// metric tracked is allocator round-trips on the hot path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured run of the 16-node scenario.
struct Measurement {
    nodes: usize,
    sim_secs: u64,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    ns_per_poll_tick: f64,
    allocs_per_event: f64,
    sched_events_per_sec: f64,
    /// Filter evaluations that had to bypass the shared memo
    /// (`MemoClass::Bypass`, i.e. impure filters). The standard bench
    /// scenario deploys only parameter rules, so this must stay 0 — any
    /// other value means the memo gate regressed.
    memo_bypassed: u64,
}

fn measure(nodes: usize, warmup_s: u64, measure_s: u64) -> Measurement {
    measure_threaded(nodes, warmup_s, measure_s, 1, false).0
}

/// Measure `nodes` on `threads` worker shards; returns the measurement
/// and the shard count actually used. The speedup section passes
/// `tiny_stagger` for both the serial and the parallel run: a 1 µs poll
/// stagger lets polls share conservative windows (the 1 ms default models
/// boot skew but serializes the window schedule), and using it on both
/// sides keeps the comparison apples-to-apples.
fn measure_threaded(
    nodes: usize,
    warmup_s: u64,
    measure_s: u64,
    threads: usize,
    tiny_stagger: bool,
) -> (Measurement, usize) {
    let mut cfg = ClusterConfig::new(nodes);
    if tiny_stagger {
        cfg = cfg.stagger(SimDur::from_micros(1));
    }
    let mut sim = ClusterSim::new(cfg);
    sim.set_threads(threads);
    sim.start();
    sim.run_until(SimTime::from_secs(warmup_s));

    let events_before = sim.world().mon_delivered;
    let polls_before: u64 = sim.world().dmons.iter().map(|d| d.stats.iterations).sum();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    sim.run_for(SimDur::from_secs(measure_s));
    let wall = start.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;

    let events = sim.world().mon_delivered - events_before;
    let memo_bypassed: u64 = sim
        .world()
        .dmons
        .iter()
        .map(|d| d.stats.memo_bypassed)
        .sum();
    let polls: u64 = sim
        .world()
        .dmons
        .iter()
        .map(|d| d.stats.iterations)
        .sum::<u64>()
        - polls_before;
    let wall_s = wall.as_secs_f64().max(1e-9);
    let shards = sim.shards();
    (
        Measurement {
            nodes,
            sim_secs: measure_s,
            wall_ms: wall_s * 1e3,
            events,
            events_per_sec: events as f64 / wall_s,
            ns_per_poll_tick: wall.as_nanos() as f64 / polls.max(1) as f64,
            allocs_per_event: allocs as f64 / events.max(1) as f64,
            sched_events_per_sec: events as f64 / wall_s,
            memo_bypassed,
        },
        shards,
    )
}

/// Counters from the scripted overload scenario: a 3-node mesh with
/// megabyte events and a fan-out-tight link queue, one node's links
/// degraded to 10% capacity for 40 simulated seconds, then healed. The
/// counters are pure discrete-event-sim outputs — bit-deterministic on
/// any machine — so `--check` compares them exactly: a change means the
/// backpressure/ladder policy changed, not that the machine was noisy.
struct Overload {
    link_drops: u64,
    events_shed: u64,
    ladder_transitions: u64,
}

fn measure_overload() -> Overload {
    let mut cfg = ClusterConfig::new(3)
        .poll_period(SimDur::from_secs(1))
        .failure_bounds(SimDur::from_secs(3), SimDur::from_secs(8))
        .event_pad(1_500_000);
    cfg.link = LinkSpec::fast_ethernet().with_queue(2, 64 * 1024 * 1024);
    let mut sim = ClusterSim::new(cfg);
    sim.set_threads(1);
    sim.start();
    sim.apply_fault_plan(
        &FaultPlan::new(0x0BAD_10AD)
            .degrade_at(SimTime::from_secs(5), NodeId(2), 0.9)
            .heal_link_at(SimTime::from_secs(45), NodeId(2)),
    );
    sim.run_until(SimTime::from_secs(60));
    let w = sim.world();
    Overload {
        link_drops: w.net.link_drops(),
        events_shed: w.dmons.iter().map(|d| d.stats.events_shed).sum(),
        ladder_transitions: w.dmons.iter().map(|d| d.stats.ladder_transitions).sum(),
    }
}

impl Overload {
    fn json_fields(&self) -> String {
        format!(
            "  \"link_drops\": {},\n  \"events_shed\": {},\n  \"ladder_transitions\": {}",
            self.link_drops, self.events_shed, self.ladder_transitions,
        )
    }
}

/// Certified filter sources for the compilation section: one whose
/// effect certificate proves it subscriber-independent (`Shared` memo
/// class) and one pure passthrough (`SnapshotKeyed`). Both must be
/// accepted by the register compiler — an interpreter fallback here is
/// a compile-coverage regression, not noise.
const SHARED_FILTER: &str = "{ if (input[LOADAVG].value > 0.25) { output[0] = input[LOADAVG]; } }";
const SNAPSHOT_FILTER: &str = "{ output[0] = input[FREEMEM]; }";

/// Counters from a scripted filter-deployment scenario: an 8-node mesh
/// where every stream gets one of two certified E-code filters, so all
/// 56 admissions must hit the register compiler. The counters are pure
/// discrete-event-sim outputs — `--check` compares the compile/fallback
/// split exactly: a nonzero fallback count means the compiler stopped
/// covering a certified shape and the hot path silently fell back to
/// the interpreter.
struct FilterWorkload {
    filters_compiled: u64,
    interp_fallbacks: u64,
    filter_events: u64,
}

fn measure_filter_workload() -> FilterWorkload {
    let mut sim = ClusterSim::new(ClusterConfig::new(8).poll_period(SimDur::from_secs(1)));
    sim.set_threads(1);
    sim.start();
    sim.run_until(SimTime::from_secs(2));
    let calib = sim.world().calib.clone();
    {
        let w = sim.world_mut();
        let n = w.len();
        for p in 0..n {
            for s in 0..n {
                if p != s {
                    let source = if (p + s) % 2 == 0 {
                        SHARED_FILTER
                    } else {
                        SNAPSHOT_FILTER
                    };
                    w.dmons[p].on_control(
                        NodeId(s),
                        &kecho::ControlMsg::DeployFilter {
                            source: source.into(),
                        },
                        &calib,
                    );
                }
            }
        }
    }
    let before = sim.world().mon_delivered;
    sim.run_until(SimTime::from_secs(32));
    let w = sim.world();
    FilterWorkload {
        filters_compiled: w.dmons.iter().map(|d| d.stats.filters_compiled).sum(),
        interp_fallbacks: w.dmons.iter().map(|d| d.stats.interp_fallbacks).sum(),
        filter_events: w.mon_delivered - before,
    }
}

impl FilterWorkload {
    fn json_fields(&self) -> String {
        format!(
            "  \"filters_compiled\": {},\n  \"interp_fallbacks\": {},\n  \"filter_events\": {}",
            self.filters_compiled, self.interp_fallbacks, self.filter_events,
        )
    }
}

/// Counters from the scripted hierarchical-digest scenario: 12 nodes in
/// three racks of four, so each rack's aggregator folds its members into
/// a per-rack digest and publishes it to the other aggregators over the
/// spine. Every field is a pure discrete-event-sim output — `--check`
/// compares the digest counters exactly: a drift means the aggregation
/// tier's cadence or payload shape changed, and any spine drop at steady
/// state means the digest tier stopped fitting its links.
struct HierDigest {
    digests_sent: u64,
    digests_received: u64,
    digest_records: u64,
    spine_drops: u64,
    staleness_p50_s: f64,
    staleness_p95_s: f64,
}

fn measure_hier_digest() -> HierDigest {
    let cfg = ClusterConfig::new(12)
        .racks(4)
        .poll_period(SimDur::from_secs(1));
    let mut sim = ClusterSim::new(cfg);
    sim.set_threads(1);
    sim.start();
    sim.run_until(SimTime::from_secs(30));
    let w = sim.world();
    let mut staleness = simcore::stats::Sampler::new();
    for d in &w.dmons {
        for &s in d.stats.digest_staleness_s.values() {
            staleness.add(s);
        }
    }
    HierDigest {
        digests_sent: w.dmons.iter().map(|d| d.stats.digests_sent).sum(),
        digests_received: w.dmons.iter().map(|d| d.stats.digests_received).sum(),
        digest_records: w.dmons.iter().map(|d| d.stats.digest_records).sum(),
        spine_drops: w.net.spine_drops(),
        staleness_p50_s: staleness.percentile(50.0),
        staleness_p95_s: staleness.percentile(95.0),
    }
}

impl HierDigest {
    fn json_fields(&self) -> String {
        format!(
            "  \"hier_digests_sent\": {},\n  \"hier_digests_received\": {},\n  \"hier_digest_records\": {},\n  \"hier_spine_drops\": {},\n  \"hier_staleness_p50_s\": {:.6},\n  \"hier_staleness_p95_s\": {:.6}",
            self.digests_sent,
            self.digests_received,
            self.digest_records,
            self.spine_drops,
            self.staleness_p50_s,
            self.staleness_p95_s,
        )
    }
}

/// The large hierarchical scenario: the full run drives 4096 nodes in 64
/// racks of 64 through the whole pipeline; `--quick` drops to 1024 nodes
/// in 32 racks (the CI scale smoke). Rack-scoped channels keep per-node
/// fan-out at rack size, so the event volume grows linearly with the
/// cluster — the run both proves the topology completes at scale and
/// checks the two structural invariants that make the hierarchy honest:
/// zero spine drops at steady state, and every link's lifetime throughput
/// below its configured rate.
struct ScaleRun {
    nodes: usize,
    racks: usize,
    sim_secs: u64,
    wall_ms: f64,
    events: u64,
    digests_received: u64,
    spine_drops: u64,
    staleness_p50_s: f64,
    staleness_p95_s: f64,
    staleness_max_s: f64,
    max_link_mbps: f64,
    /// Peak per-link utilization (lifetime payload bits over elapsed sim
    /// time, against the link's configured rate). Must stay ≤ 1.
    max_link_util: f64,
}

fn measure_scale(nodes: usize, rack_size: usize, sim_secs: u64) -> ScaleRun {
    let cfg = ClusterConfig::new(nodes).racks(rack_size);
    let mut sim = ClusterSim::new(cfg);
    sim.set_threads(1);
    sim.start();
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let wall = start.elapsed();
    let w = sim.world();
    let elapsed_s = sim_secs as f64;
    let mut max_bps = 0.0f64;
    let mut max_util = 0.0f64;
    let mut track = |bytes: u64, rate_bps: f64| {
        let bps = bytes as f64 * 8.0 / elapsed_s;
        max_bps = max_bps.max(bps);
        max_util = max_util.max(bps / rate_bps);
    };
    for i in 0..nodes {
        let id = NodeId(i);
        track(w.net.uplink(id).bytes(), w.net.uplink(id).effective_bps());
        track(
            w.net.downlink(id).bytes(),
            w.net.downlink(id).effective_bps(),
        );
    }
    for r in 0..w.net.n_racks() {
        let up = w.net.switch_uplink(r);
        let down = w.net.switch_downlink(r);
        track(up.bytes(), up.effective_bps());
        track(down.bytes(), down.effective_bps());
    }
    let mut staleness = simcore::stats::Sampler::new();
    for d in &w.dmons {
        for &s in d.stats.digest_staleness_s.values() {
            staleness.add(s);
        }
    }
    ScaleRun {
        nodes,
        racks: w.net.n_racks(),
        sim_secs,
        wall_ms: wall.as_secs_f64() * 1e3,
        events: w.mon_delivered,
        digests_received: w.dmons.iter().map(|d| d.stats.digests_received).sum(),
        spine_drops: w.net.spine_drops(),
        staleness_p50_s: staleness.percentile(50.0),
        staleness_p95_s: staleness.percentile(95.0),
        staleness_max_s: staleness.max(),
        max_link_mbps: max_bps / 1e6,
        max_link_util: max_util,
    }
}

impl ScaleRun {
    fn json_fields(&self) -> String {
        format!(
            "  \"scale_nodes\": {},\n  \"scale_racks\": {},\n  \"scale_sim_secs\": {},\n  \"scale_wall_ms\": {:.3},\n  \"scale_events\": {},\n  \"scale_digests_received\": {},\n  \"scale_spine_drops\": {},\n  \"scale_staleness_p50_s\": {:.6},\n  \"scale_staleness_p95_s\": {:.6},\n  \"scale_staleness_max_s\": {:.6},\n  \"scale_max_link_mbps\": {:.3},\n  \"scale_max_link_util\": {:.6}",
            self.nodes,
            self.racks,
            self.sim_secs,
            self.wall_ms,
            self.events,
            self.digests_received,
            self.spine_drops,
            self.staleness_p50_s,
            self.staleness_p95_s,
            self.staleness_max_s,
            self.max_link_mbps,
            self.max_link_util,
        )
    }
}

/// Serial-vs-sharded wall clock on one scenario size.
struct Speedup {
    nodes: usize,
    shards: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    speedup: f64,
}

fn measure_speedup(nodes: usize, warmup_s: u64, measure_s: u64, threads: usize) -> Speedup {
    let (serial, _) = measure_threaded(nodes, warmup_s, measure_s, 1, true);
    let (parallel, shards) = measure_threaded(nodes, warmup_s, measure_s, threads, true);
    Speedup {
        nodes,
        shards,
        serial_wall_ms: serial.wall_ms,
        parallel_wall_ms: parallel.wall_ms,
        speedup: serial.wall_ms / parallel.wall_ms.max(1e-9),
    }
}

impl Measurement {
    fn json_fields(&self) -> String {
        format!(
            "  \"scenario\": \"scalability{}\",\n  \"sim_secs\": {},\n  \"wall_ms\": {:.3},\n  \"events\": {},\n  \"events_per_sec\": {:.1},\n  \"ns_per_poll_tick\": {:.1},\n  \"allocs_per_event\": {:.2},\n  \"sched_events_per_sec\": {:.1},\n  \"memo_bypassed\": {}",
            self.nodes,
            self.sim_secs,
            self.wall_ms,
            self.events,
            self.events_per_sec,
            self.ns_per_poll_tick,
            self.allocs_per_event,
            self.sched_events_per_sec,
            self.memo_bypassed,
        )
    }
}

impl Speedup {
    fn json_fields(&self) -> String {
        let n = self.nodes;
        format!(
            "  \"par{n}_serial_wall_ms\": {:.3},\n  \"par{n}_parallel_wall_ms\": {:.3},\n  \"par{n}_speedup\": {:.2}",
            self.serial_wall_ms, self.parallel_wall_ms, self.speedup,
        )
    }
}

/// Pull a numeric field out of a previously emitted `BENCH_pipeline.json`
/// (flat object, one `"key": value` pair per line — no JSON dependency).
fn json_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix(&needle) {
            let v = rest.trim_start_matches(':').trim().trim_end_matches(',');
            if let Ok(v) = v.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_val("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let baseline = arg_val("--check");
    let threads = arg_val("--threads")
        .map(|v| v.parse::<usize>().expect("--threads takes a number"))
        .unwrap_or_else(|| simcore::parallel::suggested_threads(8));

    let (warmup_s, measure_s) = if quick { (3, 10) } else { (5, 30) };
    let m = measure(16, warmup_s, measure_s);

    // The sharded-parallel section: serial vs `threads` shards on the
    // bigger scenarios (64 nodes always; 256 in full mode only).
    let (par_warm, par_secs) = if quick { (1, 4) } else { (2, 10) };
    let mut speedups = vec![measure_speedup(64, par_warm, par_secs, threads)];
    if !quick {
        speedups.push(measure_speedup(256, 1, 3, threads));
    }
    for s in &speedups {
        eprintln!(
            "bench_pipeline: scalability{}: serial {:.0} ms, {} shards {:.0} ms -> {:.2}x",
            s.nodes, s.serial_wall_ms, s.shards, s.parallel_wall_ms, s.speedup
        );
    }

    // The overload section: deterministic robustness counters from a
    // scripted congestion scenario, so the perf trajectory also tracks
    // the backpressure policy.
    let overload = measure_overload();
    eprintln!(
        "bench_pipeline: overload: {} link drops, {} shed, {} ladder transitions",
        overload.link_drops, overload.events_shed, overload.ladder_transitions
    );

    // The filter-compilation section: every admission in the scripted
    // filter mesh must land on the register compiler; the compiled vs
    // interpreter-fallback split travels with the perf numbers.
    let fw = measure_filter_workload();
    eprintln!(
        "bench_pipeline: filters: {} compiled, {} interpreter fallbacks, {} events",
        fw.filters_compiled, fw.interp_fallbacks, fw.filter_events
    );

    // The hierarchical-digest section: deterministic aggregation-tier
    // counters from a scripted 3-rack scenario.
    let hier = measure_hier_digest();
    eprintln!(
        "bench_pipeline: hier: {} digests sent, {} received, {} records, {} spine drops",
        hier.digests_sent, hier.digests_received, hier.digest_records, hier.spine_drops
    );

    // The scale section: the full hierarchical cluster end to end — 4096
    // nodes (1024 in quick mode, the CI scale smoke).
    let (scale_nodes, rack_size, scale_secs) = if quick { (1024, 32, 6) } else { (4096, 64, 8) };
    let scale = measure_scale(scale_nodes, rack_size, scale_secs);
    eprintln!(
        "bench_pipeline: scale: {} nodes / {} racks, {} sim-s in {:.0} ms, {} events, {} digests, staleness p95 {:.3} s, max link util {:.3}",
        scale.nodes,
        scale.racks,
        scale.sim_secs,
        scale.wall_ms,
        scale.events,
        scale.digests_received,
        scale.staleness_p95_s,
        scale.max_link_util,
    );

    // Record the replay-safety lint state alongside the perf numbers:
    // how many findings the workspace scan produced (fresh + baselined).
    // The committed tree keeps this at 0; the count travels with every
    // bench artifact so a perf trajectory is also a lint trajectory.
    let detlint = detlint_summary();

    let mut sections = vec![m.json_fields()];
    sections.push(format!(
        "  \"threads\": {},\n  \"shards\": {}",
        threads, speedups[0].shards
    ));
    if let Some((fresh_errors, total)) = detlint {
        sections.push(format!("  \"detlint_findings\": {total}"));
        if fresh_errors > 0 {
            eprintln!("bench_pipeline: WARNING {fresh_errors} unbaselined detlint error(s)");
        }
    }
    sections.push(overload.json_fields());
    sections.push(fw.json_fields());
    sections.push(hier.json_fields());
    sections.push(scale.json_fields());
    sections.extend(speedups.iter().map(Speedup::json_fields));
    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    eprintln!(
        "bench_pipeline: {} sim-s of 16 nodes in {:.0} ms -> {} written",
        m.sim_secs, m.wall_ms, out_path
    );

    if let Some(base_path) = baseline {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let base_eps = json_field(&base, "events_per_sec").expect("baseline events_per_sec");
        // Allow a wide band: CI machines vary, but a >25% drop against the
        // checked-in baseline flags a hot-path regression. A slow first
        // sample alone is not a verdict — cold caches and frequency
        // scaling produce 2x outliers — so a regression must survive two
        // re-measurements (best-of-3) before it fails the job.
        let mut best = m.events_per_sec;
        for _ in 0..2 {
            if best / base_eps >= 0.75 {
                break;
            }
            let retry = measure(16, warmup_s, measure_s);
            eprintln!(
                "bench_pipeline: retry measured {:.0} events/sec",
                retry.events_per_sec
            );
            best = best.max(retry.events_per_sec);
        }
        let ratio = best / base_eps;
        eprintln!(
            "bench_pipeline: events/sec {:.0} vs baseline {:.0} ({:.2}x)",
            best, base_eps, ratio
        );
        if ratio < 0.75 {
            eprintln!("bench_pipeline: REGRESSION beyond 25% budget");
            std::process::exit(1);
        }
        // Allocations per delivered event are deterministic (no noise
        // band needed beyond rounding): more than 15% growth means a new
        // allocation crept onto the hot path.
        if let Some(base_allocs) = json_field(&base, "allocs_per_event") {
            eprintln!(
                "bench_pipeline: allocs/event {:.2} vs baseline {:.2}",
                m.allocs_per_event, base_allocs
            );
            if m.allocs_per_event > base_allocs * 1.15 {
                eprintln!("bench_pipeline: ALLOCATION REGRESSION beyond 15% budget");
                std::process::exit(1);
            }
        }
        // The bench scenario deploys only parameter rules — no E-code
        // filters — so memo bypasses are fully deterministic (0 today).
        // An exact mismatch against the baseline means the memo gate is
        // misclassifying filters, not that the machine is noisy.
        if let Some(base_bypass) = json_field(&base, "memo_bypassed") {
            eprintln!(
                "bench_pipeline: memo_bypassed {} vs baseline {:.0}",
                m.memo_bypassed, base_bypass
            );
            #[allow(clippy::float_cmp)] // integer-valued counters, exact by design
            if m.memo_bypassed as f64 != base_bypass {
                eprintln!("bench_pipeline: MEMO GATE REGRESSION (bypass count changed)");
                std::process::exit(1);
            }
        }
        // Overload counters are bit-deterministic sim outputs — exact
        // comparison, no noise band. A mismatch means the backpressure
        // or ladder policy changed without the baseline being
        // regenerated alongside it.
        for (key, got) in [
            ("link_drops", overload.link_drops),
            ("events_shed", overload.events_shed),
            ("ladder_transitions", overload.ladder_transitions),
        ] {
            if let Some(base_v) = json_field(&base, key) {
                eprintln!("bench_pipeline: {key} {got} vs baseline {base_v:.0}");
                #[allow(clippy::float_cmp)] // integer-valued counters, exact by design
                if got as f64 != base_v {
                    eprintln!("bench_pipeline: OVERLOAD POLICY DRIFT ({key} changed)");
                    std::process::exit(1);
                }
            }
        }
        // The compile/fallback split is exact: every certified filter in
        // the scripted mesh must compile, and the fallback count must
        // match the baseline (0) — a drift means the register compiler
        // lost coverage of a certified shape.
        for (key, got) in [
            ("filters_compiled", fw.filters_compiled),
            ("interp_fallbacks", fw.interp_fallbacks),
        ] {
            if let Some(base_v) = json_field(&base, key) {
                eprintln!("bench_pipeline: {key} {got} vs baseline {base_v:.0}");
                #[allow(clippy::float_cmp)] // integer-valued counters, exact by design
                if got as f64 != base_v {
                    eprintln!("bench_pipeline: FILTER COMPILE DRIFT ({key} changed)");
                    std::process::exit(1);
                }
            }
        }
        // The aggregation tier's cadence and payload shape are exact:
        // digest counts and folded record counts are bit-deterministic
        // sim outputs, so any drift against the baseline means the
        // hierarchy changed behavior without the baseline moving with it.
        for (key, got) in [
            ("hier_digests_sent", hier.digests_sent),
            ("hier_digests_received", hier.digests_received),
            ("hier_digest_records", hier.digest_records),
        ] {
            if let Some(base_v) = json_field(&base, key) {
                eprintln!("bench_pipeline: {key} {got} vs baseline {base_v:.0}");
                #[allow(clippy::float_cmp)] // integer-valued counters, exact by design
                if got as f64 != base_v {
                    eprintln!("bench_pipeline: DIGEST DRIFT ({key} changed)");
                    std::process::exit(1);
                }
            }
        }
        // Structural invariants of the hierarchy, independent of any
        // baseline: the digest tier must fit its spine links (no drops at
        // steady state, in either scripted scenario or the scale run),
        // and no link may carry more than its configured rate.
        if hier.spine_drops != 0 || scale.spine_drops != 0 {
            eprintln!(
                "bench_pipeline: SPINE DROPS at steady state (hier {}, scale {})",
                hier.spine_drops, scale.spine_drops
            );
            std::process::exit(1);
        }
        if scale.max_link_util > 1.0 {
            eprintln!(
                "bench_pipeline: LINK OVERCOMMIT (peak utilization {:.3} > 1)",
                scale.max_link_util
            );
            std::process::exit(1);
        }
        if scale.digests_received == 0 {
            eprintln!("bench_pipeline: SCALE RUN VACUOUS (no digests delivered)");
            std::process::exit(1);
        }
        // Same for the lint state: new unbaselined errors fail the run.
        if let Some((fresh_errors, _)) = detlint {
            if fresh_errors > 0 {
                eprintln!("bench_pipeline: DETLINT ERRORS present");
                std::process::exit(1);
            }
        }
    }
}

/// Run the workspace replay-safety scan (same engine as
/// `cargo run -p detlint -- --check`). Returns `(fresh_errors, total
/// findings incl. baselined)`, or `None` when no workspace root is
/// reachable from the current directory (e.g. an installed binary).
fn detlint_summary() -> Option<(u64, u64)> {
    let mut root = std::env::current_dir().ok()?;
    loop {
        if std::fs::read_to_string(root.join("Cargo.toml"))
            .map(|t| t.contains("[workspace]"))
            .unwrap_or(false)
        {
            break;
        }
        if !root.pop() {
            return None;
        }
    }
    let baseline_text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap_or_default();
    let baseline = detlint::Baseline::parse(&baseline_text);
    let report = detlint::run_scan(&root, &baseline).ok()?;
    Some((
        report.fresh_errors() as u64,
        (report.fresh.len() + report.baselined.len()) as u64,
    ))
}
