//! `bench_pipeline` — end-to-end wall-clock throughput of the simulator's
//! poll→sample→filter→encode→deliver pipeline on the 16-node scalability
//! scenario.
//!
//! Unlike the `fig*` binaries (which report *modeled* costs), this measures
//! the harness itself: how many simulated monitoring events per wall-clock
//! second the pipeline sustains, how many wall-clock nanoseconds one d-mon
//! poll tick costs, and how many heap allocations each delivered event
//! drags along. The numbers land in `BENCH_pipeline.json` so every PR has
//! a perf trajectory.
//!
//! Usage:
//!   bench_pipeline [--quick] [--out PATH] [--check BASELINE.json]
//!
//! `--quick` shortens the measured window (CI smoke). `--check` compares
//! events/sec against a previously emitted JSON and exits non-zero on a
//! regression of more than 25%.

// The counting allocator is the one place in the workspace that needs
// `unsafe`: wrapping the system allocator behind `GlobalAlloc` to count
// allocations per delivered event.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::{SimDur, SimTime};

/// System allocator wrapper counting every allocation (not bytes — the
/// metric tracked is allocator round-trips on the hot path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One measured run of the 16-node scenario.
struct Measurement {
    nodes: usize,
    sim_secs: u64,
    wall_ms: f64,
    events: u64,
    events_per_sec: f64,
    ns_per_poll_tick: f64,
    allocs_per_event: f64,
    sched_events_per_sec: f64,
}

fn measure(nodes: usize, warmup_s: u64, measure_s: u64) -> Measurement {
    let mut sim = ClusterSim::new(ClusterConfig::new(nodes));
    sim.start();
    sim.run_until(SimTime::from_secs(warmup_s));

    let events_before = sim.world().mon_delivered;
    let polls_before: u64 = sim.world().dmons.iter().map(|d| d.stats.iterations).sum();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    sim.run_for(SimDur::from_secs(measure_s));
    let wall = start.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;

    let events = sim.world().mon_delivered - events_before;
    let polls: u64 = sim
        .world()
        .dmons
        .iter()
        .map(|d| d.stats.iterations)
        .sum::<u64>()
        - polls_before;
    let wall_s = wall.as_secs_f64().max(1e-9);
    Measurement {
        nodes,
        sim_secs: measure_s,
        wall_ms: wall_s * 1e3,
        events,
        events_per_sec: events as f64 / wall_s,
        ns_per_poll_tick: wall.as_nanos() as f64 / polls.max(1) as f64,
        allocs_per_event: allocs as f64 / events.max(1) as f64,
        sched_events_per_sec: events as f64 / wall_s,
    }
}

impl Measurement {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"scenario\": \"scalability{}\",\n  \"sim_secs\": {},\n  \"wall_ms\": {:.3},\n  \"events\": {},\n  \"events_per_sec\": {:.1},\n  \"ns_per_poll_tick\": {:.1},\n  \"allocs_per_event\": {:.2},\n  \"sched_events_per_sec\": {:.1}\n}}\n",
            self.nodes,
            self.sim_secs,
            self.wall_ms,
            self.events,
            self.events_per_sec,
            self.ns_per_poll_tick,
            self.allocs_per_event,
            self.sched_events_per_sec,
        )
    }
}

/// Pull a numeric field out of a previously emitted `BENCH_pipeline.json`
/// (flat object, one `"key": value` pair per line — no JSON dependency).
fn json_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix(&needle) {
            let v = rest.trim_start_matches(':').trim().trim_end_matches(',');
            if let Ok(v) = v.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_val("--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let baseline = arg_val("--check");

    let (warmup_s, measure_s) = if quick { (3, 10) } else { (5, 30) };
    let m = measure(16, warmup_s, measure_s);

    let json = m.to_json();
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    eprintln!(
        "bench_pipeline: {} sim-s of 16 nodes in {:.0} ms -> {} written",
        m.sim_secs, m.wall_ms, out_path
    );

    if let Some(base_path) = baseline {
        let base = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let base_eps = json_field(&base, "events_per_sec").expect("baseline events_per_sec");
        // Allow a wide band: CI machines vary, but a >25% drop against the
        // checked-in baseline flags a hot-path regression. A slow first
        // sample alone is not a verdict — cold caches and frequency
        // scaling produce 2x outliers — so a regression must survive two
        // re-measurements (best-of-3) before it fails the job.
        let mut best = m.events_per_sec;
        for _ in 0..2 {
            if best / base_eps >= 0.75 {
                break;
            }
            let retry = measure(16, warmup_s, measure_s);
            eprintln!(
                "bench_pipeline: retry measured {:.0} events/sec",
                retry.events_per_sec
            );
            best = best.max(retry.events_per_sec);
        }
        let ratio = best / base_eps;
        eprintln!(
            "bench_pipeline: events/sec {:.0} vs baseline {:.0} ({:.2}x)",
            best, base_eps, ratio
        );
        if ratio < 0.75 {
            eprintln!("bench_pipeline: REGRESSION beyond 25% budget");
            std::process::exit(1);
        }
    }
}
