//! Regenerates Figure 6: per-polling-iteration event submission overhead
//! (microseconds) vs. cluster size, with 50-100 B monitoring events.
fn main() {
    print!("{}", dproc_bench::harness::fig6_data().render());
}
