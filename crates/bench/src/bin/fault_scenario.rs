//! `fault_scenario` — headless crash/partition/recovery smoke run.
//!
//! Drives the canonical fault timeline against a 4-node cluster:
//!
//! * t=10 s  crash `node3`
//! * t=20 s  partition `node0` from `node1`
//! * t=30 s  heal the partition
//! * t=40 s  revive `node3`
//!
//! and checks the failure machinery end to end: detector transitions,
//! directory eviction, gap detection, heartbeats, and resync. With
//! `--no-faults` the same cluster runs the same 60 s with an empty plan
//! and every fault counter must be exactly zero — the control that
//! proves the failure paths cost nothing when nothing fails.
//!
//! Exits nonzero (or panics) on any violated invariant, so CI can run
//! both modes as a fault-matrix smoke step.

use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::{SimDur, SimTime};
use simnet::{FaultPlan, NodeId};

fn scenario_plan() -> FaultPlan {
    let t = |s: u64| SimTime::from_secs(s);
    FaultPlan::new(0xFA17)
        .crash_at(t(10), NodeId(3))
        .partition_at(t(20), NodeId(0), NodeId(1))
        .heal_at(t(30), NodeId(0), NodeId(1))
        .revive_at(t(40), NodeId(3))
}

fn run(with_faults: bool) -> ClusterSim {
    let cfg = ClusterConfig::new(4)
        .poll_period(SimDur::from_secs(1))
        .failure_bounds(SimDur::from_secs(3), SimDur::from_secs(8));
    let mut sim = ClusterSim::new(cfg);
    if with_faults {
        sim.apply_fault_plan(&scenario_plan());
    }
    sim.start();
    sim.run_until(SimTime::from_secs(60));
    sim
}

fn report(sim: &ClusterSim) {
    let w = sim.world();
    let fs = w.fault.stats;
    println!(
        "drops: {} total ({} partition, {} loss, {} crash)",
        fs.events_lost, fs.partition_drops, fs.loss_drops, fs.crash_drops
    );
    println!("node      gaps  hb_sent  hb_recv  hb_miss  suspected  evicted  resyncs  alive");
    for i in 0..w.len() {
        let d = &w.dmons[i].stats;
        println!(
            "{:<8} {:>5} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>6}",
            w.hosts[i].name,
            d.gaps_detected,
            d.heartbeats_sent,
            d.heartbeats_received,
            d.heartbeats_missed,
            d.nodes_suspected,
            d.nodes_evicted,
            d.resyncs,
            w.is_alive(NodeId(i)),
        );
    }
}

fn check(ok: bool, what: &str, failures: &mut u32) {
    if ok {
        println!("ok: {what}");
    } else {
        eprintln!("FAIL: {what}");
        *failures += 1;
    }
}

fn main() {
    let no_faults = std::env::args().any(|a| a == "--no-faults");
    let mut failures = 0;

    if no_faults {
        println!("== control: no faults ==");
        let sim = run(false);
        report(&sim);
        let w = sim.world();
        check(
            w.fault.stats.events_lost == 0,
            "no deliveries lost without faults",
            &mut failures,
        );
        for i in 0..w.len() {
            let d = &w.dmons[i].stats;
            check(
                d.gaps_detected == 0
                    && d.heartbeats_missed == 0
                    && d.nodes_suspected == 0
                    && d.nodes_evicted == 0
                    && d.resyncs == 0,
                &format!("all fault counters zero on {}", w.hosts[i].name),
                &mut failures,
            );
        }
    } else {
        println!("== scenario: crash@10 partition@20 heal@30 revive@40 ==");
        let sim = run(true);
        report(&sim);
        let w = sim.world();
        check(
            w.fault.stats.crash_drops > 0,
            "in-flight deliveries died with the crashed node",
            &mut failures,
        );
        check(
            w.fault.stats.partition_drops > 0,
            "the partition destroyed deliveries",
            &mut failures,
        );
        check(
            w.is_alive(NodeId(3)),
            "node3 is back after revive",
            &mut failures,
        );
        check(
            w.dmons[3].epoch() == 1,
            "node3 restarted with a bumped epoch",
            &mut failures,
        );
        for i in 0..3 {
            let d = &w.dmons[i].stats;
            let name = &w.hosts[i].name;
            check(
                d.nodes_suspected > 0,
                &format!("{name} suspected someone"),
                &mut failures,
            );
            check(
                d.nodes_evicted > 0,
                &format!("{name} evicted someone"),
                &mut failures,
            );
            check(
                d.heartbeats_missed > 0,
                &format!("{name} counted missed heartbeats"),
                &mut failures,
            );
        }
        check(
            (0..3).any(|i| w.dmons[i].stats.gaps_detected > 0),
            "the partition left detectable sequence gaps",
            &mut failures,
        );
        check(
            (0..4).any(|i| w.dmons[i].stats.resyncs > 0),
            "someone replayed customizations on a recovered peer",
            &mut failures,
        );
        let status = w.hosts[0]
            .proc
            .read("cluster/node3/status")
            .expect("status file");
        check(
            status.starts_with("fresh"),
            &format!("node0 sees node3 fresh again (got `{status}`)"),
            &mut failures,
        );
    }

    if failures > 0 {
        eprintln!("{failures} invariant(s) violated");
        std::process::exit(1);
    }
    println!("all invariants held");
}
