//! Runs every figure regeneration in sequence and prints the tables —
//! the input recorded in EXPERIMENTS.md.
use dproc_bench::harness as h;

type FigFn = Box<dyn Fn() -> simcore::series::Table + Send>;

fn main() {
    let figs: Vec<(&str, FigFn)> = vec![
        ("fig4", Box::new(h::fig4_data)),
        ("fig5", Box::new(h::fig5_data)),
        ("fig6", Box::new(h::fig6_data)),
        ("fig7", Box::new(h::fig7_data)),
        ("fig8", Box::new(h::fig8_data)),
        ("fig9a", Box::new(|| h::fig9a_data(200, 9))),
        ("fig9b", Box::new(|| h::fig9b_data(200, 9))),
        ("fig10", Box::new(|| h::fig10_data(60))),
        ("fig11", Box::new(|| h::fig11_data(60))),
    ];
    for (name, f) in figs {
        eprintln!("[run_all] generating {name} ...");
        println!("{}", f().render());
    }
}
