//! Shared experiment drivers for the figure-regeneration binaries.
//!
//! Each `figN_data` function rebuilds the corresponding figure of the
//! paper's evaluation as a [`simcore::series::Table`]; the `fig*` binaries
//! print them. Independent configuration points run in parallel on a
//! scoped thread pool (`simcore::parallel`), while each simulation itself
//! stays single-threaded and deterministic.

use dproc::cluster::{ClusterConfig, ClusterSim};
use dproc::measure::iperf_probe_mbps;
use kecho::{ControlMsg, ParamSpec};
use simcore::parallel::{run_sweep, suggested_threads};
use simcore::series::{Series, Table};
use simcore::{SimDur, SimTime};
use simnet::NodeId;
use simos::host::HostConfig;
use smartpointer::policy::{MonitorSet, Policy};
use smartpointer::scenarios;
use smartpointer::StreamMode;

/// The three monitoring configurations the microbenchmarks compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonConfig {
    /// Update period 1 s.
    Period1,
    /// Update period 2 s.
    Period2,
    /// Differential filter: send on ≥15% change.
    Differential,
}

impl MonConfig {
    /// All three, in the paper's legend order.
    pub fn all() -> [MonConfig; 3] {
        [
            MonConfig::Period1,
            MonConfig::Period2,
            MonConfig::Differential,
        ]
    }

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            MonConfig::Period1 => "update period=1s",
            MonConfig::Period2 => "update period=2s",
            MonConfig::Differential => "differential filter",
        }
    }

    fn param(self) -> ParamSpec {
        match self {
            MonConfig::Period1 => ParamSpec::Period { period_s: 1.0 },
            MonConfig::Period2 => ParamSpec::Period { period_s: 2.0 },
            MonConfig::Differential => ParamSpec::DeltaFraction { fraction: 0.15 },
        }
    }
}

/// Build an `n`-node cluster with the given monitoring configuration
/// applied between every publisher/subscriber pair. `linpack_uni` makes
/// node 0 a uniprocessor (the Fig. 4 probe host).
pub fn micro_cluster(n: usize, cfg: MonConfig, pad: u32, linpack_uni: bool) -> ClusterSim {
    let mut ccfg = ClusterConfig::new(n).event_pad(pad);
    if linpack_uni {
        ccfg = ccfg.host_cfg(0, HostConfig::uniprocessor());
    }
    let mut sim = ClusterSim::new(ccfg);
    // Install the per-pair parameters directly (equivalently every node
    // could write `period * 2` / `delta * 0.15` into each control file;
    // the direct route keeps setup out of the measured window).
    let calib = sim.world().calib.clone();
    let w = sim.world_mut();
    let n_nodes = w.len();
    for publisher in 0..n_nodes {
        for subscriber in 0..n_nodes {
            if publisher == subscriber {
                continue;
            }
            w.dmons[publisher].on_control(
                NodeId(subscriber),
                &ControlMsg::SetParam {
                    metric: "*".to_string(),
                    param: cfg.param(),
                },
                &calib,
            );
        }
    }
    sim.start();
    sim
}

/// Discard warm-up statistics on every d-mon.
pub fn reset_stats(sim: &mut ClusterSim) {
    for d in &mut sim.world_mut().dmons {
        d.stats.reset();
    }
}

const WARMUP: SimDur = SimDur::from_secs(70);
/// Measured iterations for the rdtsc-style averages (the paper uses 100).
const MEASURE: SimDur = SimDur::from_secs(110);

/// Fig. 4 — CPU perturbation: linpack Mflops on node 0 vs. cluster size.
pub fn fig4_data() -> Table {
    let mut table = Table::new(
        "Figure 4: CPU perturbation (linpack Mflops vs. cluster size)",
        "nodes",
    );
    for cfg in MonConfig::all() {
        let points: Vec<usize> = (0..=8).collect();
        let results = run_sweep(points.clone(), suggested_threads(8), |n| {
            if n == 0 {
                // No dproc at all: bare host, bare linpack.
                let mut sim =
                    ClusterSim::new(ClusterConfig::new(1).host_cfg(0, HostConfig::uniprocessor()));
                sim.start_linpack(NodeId(0), 1);
                sim.mark_linpack(NodeId(0));
                sim.run_until(SimTime::from_secs(60));
                return sim.linpack_mflops(NodeId(0));
            }
            let mut sim = micro_cluster(n, cfg, 0, true);
            sim.start_linpack(NodeId(0), 1);
            sim.run_until(SimTime::ZERO + WARMUP);
            sim.mark_linpack(NodeId(0));
            sim.run_for(MEASURE);
            sim.linpack_mflops(NodeId(0))
        });
        let mut s = Series::new(cfg.label());
        for (n, mflops) in points.iter().zip(results) {
            s.push(*n as f64, mflops);
        }
        table.add(s);
    }
    table
}

/// Fig. 5 — network perturbation: Iperf available bandwidth between two
/// nodes vs. cluster size.
pub fn fig5_data() -> Table {
    let mut table = Table::new(
        "Figure 5: network perturbation (available Mbps vs. cluster size)",
        "nodes",
    );
    for cfg in MonConfig::all() {
        let points: Vec<usize> = (0..=8).collect();
        let results = run_sweep(points.clone(), suggested_threads(8), |n| {
            if n < 2 {
                // Fewer than two monitored nodes: an unperturbed link.
                let mut sim = ClusterSim::new(ClusterConfig::new(2));
                let now = sim.now();
                let w = sim.world_mut();
                return iperf_probe_mbps(w, now, NodeId(0), NodeId(1));
            }
            let mut sim = micro_cluster(n, cfg, 0, false);
            sim.run_until(SimTime::ZERO + WARMUP);
            let now = sim.now();
            let w = sim.world_mut();
            iperf_probe_mbps(w, now, NodeId(0), NodeId(1))
        });
        let mut s = Series::new(cfg.label());
        for (n, mbps) in points.iter().zip(results) {
            s.push(*n as f64, mbps);
        }
        table.add(s);
    }
    table
}

fn submission_overhead(pad: u32) -> Table {
    let title = if pad == 0 {
        "Figure 6: event submission overhead per polling iteration (us)"
    } else {
        "Figure 7: submission overhead, ~5KB events (us)"
    };
    let mut table = Table::new(title, "nodes");
    for cfg in MonConfig::all() {
        let points: Vec<usize> = (1..=8).collect();
        let results = run_sweep(points.clone(), suggested_threads(8), move |n| {
            let mut sim = micro_cluster(n, cfg, pad, false);
            sim.run_until(SimTime::ZERO + WARMUP);
            reset_stats(&mut sim);
            sim.run_for(MEASURE);
            sim.world().dmons[0].stats.submit_cost_us.mean()
        });
        let mut s = Series::new(cfg.label());
        for (n, us) in points.iter().zip(results) {
            s.push(*n as f64, us);
        }
        table.add(s);
    }
    table
}

/// Fig. 6 — event submission overhead (small events).
pub fn fig6_data() -> Table {
    submission_overhead(0)
}

/// Fig. 7 — event submission overhead with ~5 KB events.
pub fn fig7_data() -> Table {
    // 4.9 KB of pad on top of the ~190 B record payload ≈ 5 KB events.
    submission_overhead(4900)
}

/// Fig. 8 — overhead of receiving incoming events per polling iteration.
pub fn fig8_data() -> Table {
    let mut table = Table::new(
        "Figure 8: event receiving overhead per polling iteration (us)",
        "nodes",
    );
    for cfg in MonConfig::all() {
        let points: Vec<usize> = (1..=8).collect();
        let results = run_sweep(points.clone(), suggested_threads(8), |n| {
            let mut sim = micro_cluster(n, cfg, 0, false);
            sim.run_until(SimTime::ZERO + WARMUP);
            reset_stats(&mut sim);
            sim.run_for(MEASURE);
            sim.world().dmons[0].stats.receive_cost_us.mean()
        });
        let mut s = Series::new(cfg.label());
        for (n, us) in points.iter().zip(results) {
            s.push(*n as f64, us);
        }
        table.add(s);
    }
    table
}

/// The three SmartPointer stream policies of Figs. 9 and 10.
pub fn stream_policies() -> [(&'static str, Policy); 3] {
    [
        ("no filter", Policy::NoFilter),
        ("static filter", Policy::Static(StreamMode::SubSample(2))),
        ("dynamic filter", Policy::Dynamic(MonitorSet::Cpu)),
    ]
}

/// Fig. 9(a) — latency over time with a CPU-loaded client (one linpack
/// thread added per `segment_s` segment).
pub fn fig9a_data(segment_s: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "Figure 9a: propagation + processing time under CPU load (s)",
        "time_s",
    );
    let policies = stream_policies();
    let results = run_sweep(
        policies.to_vec(),
        suggested_threads(3),
        move |(_, policy)| scenarios::cpu_loaded(policy, threads, segment_s),
    );
    for ((name, _), result) in policies.iter().zip(results) {
        let mut s = Series::new(*name);
        for (t, lat) in scenarios::bucket_log(&result.stats.log, segment_s as f64 / 2.0) {
            s.push((t * 10.0).round() / 10.0, lat);
        }
        table.add(s);
    }
    table
}

/// Fig. 9(b) — client event rate vs. number of linpack threads.
pub fn fig9b_data(segment_s: u64, threads: usize) -> Table {
    let mut table = Table::new(
        "Figure 9b: events/sec processed at the client vs. linpack threads",
        "linpack_threads",
    );
    let policies = stream_policies();
    let results = run_sweep(
        policies.to_vec(),
        suggested_threads(3),
        move |(_, policy)| scenarios::cpu_loaded(policy, threads, segment_s),
    );
    for ((name, _), result) in policies.iter().zip(results) {
        let mut s = Series::new(*name);
        for (k, rate) in &result.rate_by_threads {
            s.push(*k as f64, *rate);
        }
        table.add(s);
    }
    table
}

/// Fig. 10 — latency vs. Iperf network perturbation (3 MB events). The
/// dynamic filter uses network monitoring, as in the paper.
pub fn fig10_data(duration_s: u64) -> Table {
    let mut table = Table::new(
        "Figure 10: latency vs. network perturbation (s)",
        "perturbation_mbps",
    );
    let policies: [(&str, Policy); 3] = [
        ("no filter", Policy::NoFilter),
        ("static filter", Policy::Static(StreamMode::SubSample(1))),
        ("dynamic filter", Policy::Dynamic(MonitorSet::Net)),
    ];
    let levels: Vec<f64> = (0..=9).map(|i| i as f64 * 10.0).collect();
    for (name, policy) in policies {
        let results = run_sweep(levels.clone(), suggested_threads(10), move |mbps| {
            scenarios::net_perturbed(policy, mbps, duration_s)
        });
        let mut s = Series::new(name);
        for (mbps, lat) in levels.iter().zip(results) {
            s.push(*mbps, lat);
        }
        table.add(s);
    }
    table
}

/// Fig. 11 — latency vs. combined perturbation for dynamic filters using
/// CPU-only, network-only, or hybrid monitoring.
pub fn fig11_data(duration_s: u64) -> Table {
    let mut table = Table::new(
        "Figure 11: latency vs. combined perturbation (k linpack + 10k Mbps)",
        "k",
    );
    let sets: [(&str, MonitorSet); 3] = [
        ("cpu monitor", MonitorSet::Cpu),
        ("network monitor", MonitorSet::Net),
        ("hybrid monitor", MonitorSet::Hybrid),
    ];
    let steps: Vec<usize> = (1..=8).collect();
    for (name, set) in sets {
        let results = run_sweep(steps.clone(), suggested_threads(8), move |k| {
            scenarios::hybrid(set, k, duration_s)
        });
        let mut s = Series::new(name);
        for (k, lat) in steps.iter().zip(results) {
            s.push(*k as f64, lat);
        }
        table.add(s);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mon_config_labels_and_params() {
        assert_eq!(MonConfig::all().len(), 3);
        assert_eq!(MonConfig::Period1.label(), "update period=1s");
        assert!(matches!(
            MonConfig::Differential.param(),
            ParamSpec::DeltaFraction { fraction } if fraction == 0.15
        ));
    }

    #[test]
    fn micro_cluster_installs_policies() {
        let sim = micro_cluster(3, MonConfig::Period2, 0, false);
        let w = sim.world();
        let p = w.dmons[0].policy_for(NodeId(1)).expect("policy");
        assert_eq!(p.rule_count("LOADAVG"), 1);
    }

    #[test]
    fn reset_clears_samplers() {
        let mut sim = micro_cluster(2, MonConfig::Period1, 0, false);
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.world().dmons[0].stats.iterations > 0);
        reset_stats(&mut sim);
        assert_eq!(sim.world().dmons[0].stats.iterations, 0);
        assert_eq!(sim.world().dmons[0].stats.submit_cost_us.len(), 0);
    }
}
