//! `dproc-bench` — the figure-regeneration harness.
//!
//! One binary per evaluation figure of the paper (`fig4_cpu_perturbation`
//! … `fig11_hybrid`), a `run_all` binary producing the complete
//! EXPERIMENTS.md input, and an `ablation_topology` binary for the
//! peer-to-peer vs. central-collector design comparison. Criterion
//! microbenchmarks live under `benches/`.

pub mod harness;
