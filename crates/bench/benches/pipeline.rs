//! End-to-end hot-path benchmark: poll → sample → filter → encode →
//! deliver across a full monitored cluster.
//!
//! This is the criterion companion to the `bench_pipeline` binary (which
//! emits `BENCH_pipeline.json` for the tracked baseline): same 16-node
//! scenario, so a regression seen here reproduces under the JSON harness
//! and vice versa.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::SimDur;

fn warmed(nodes: usize) -> ClusterSim {
    let mut sim = ClusterSim::new(ClusterConfig::new(nodes));
    sim.start();
    // Get past subscription setup and first-poll transients so the
    // measured region is the steady-state pipeline.
    sim.run_for(SimDur::from_secs(5));
    sim
}

fn bench_pipeline_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/cold_10_sim_seconds");
    group.sample_size(10);
    for n in [4usize, 16] {
        group.bench_function(format!("{n}_nodes"), |b| {
            b.iter_batched(
                || {
                    let mut sim = ClusterSim::new(ClusterConfig::new(n));
                    sim.start();
                    sim
                },
                |mut sim| {
                    sim.run_for(SimDur::from_secs(10));
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_pipeline_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/steady_10_sim_seconds");
    group.sample_size(10);
    for n in [4usize, 16] {
        group.bench_function(format!("{n}_nodes"), |b| {
            b.iter_batched(
                || warmed(n),
                |mut sim| {
                    sim.run_for(SimDur::from_secs(10));
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_cold, bench_pipeline_steady);
criterion_main!(benches);
