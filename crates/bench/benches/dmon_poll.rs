//! d-mon polling-iteration cost (wall time of the simulator itself, not
//! the modeled cost — that is Figs. 6–8).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dproc::calib::Calib;
use dproc::dmon::DMon;
use dproc::modules::standard_modules;
use kecho::Directory;
use simcore::{SimDur, SimTime};
use simnet::NodeId;
use simos::host::{Host, HostConfig};

fn setup(n_subs: usize) -> (DMon, Host, Directory, kecho::ChannelId, kecho::ChannelId) {
    let names: Vec<String> = (0..=n_subs).map(|i| format!("node{i}")).collect();
    let dmon = DMon::new(NodeId(0), names, standard_modules(), SimDur::from_secs(1));
    let host = Host::new("node0", NodeId(0), &HostConfig::testbed());
    let mut dir = Directory::default();
    let mon = dir.open("mon");
    let ctl = dir.open("ctl");
    for i in 0..=n_subs {
        dir.subscribe(mon, NodeId(i));
        dir.subscribe(ctl, NodeId(i));
    }
    (dmon, host, dir, mon, ctl)
}

fn bench_poll(c: &mut Criterion) {
    let calib = Calib::default();
    let mut group = c.benchmark_group("dmon/poll_iteration");
    for subs in [1usize, 7] {
        let (mut dmon, mut host, dir, mon, ctl) = setup(subs);
        let mut t = 1u64;
        group.bench_function(format!("{subs}_subscribers"), |b| {
            b.iter(|| {
                t += 1;
                dmon.poll(
                    &mut host,
                    &dir,
                    mon,
                    ctl,
                    SimTime::from_millis(black_box(t)),
                    &calib,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_poll);
criterion_main!(benches);
