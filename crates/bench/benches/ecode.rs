//! E-code compiler/VM microbenchmarks, including the DESIGN.md ablation:
//! bytecode-VM execution vs. a hand-written native Rust filter doing the
//! same work (quantifying what the original's native code generation
//! would buy).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecode::{compile_filter, fig3_env, EnvSpec, Filter, MetricRecord, FIG3_SOURCE};

fn fig3_inputs() -> [MetricRecord; 4] {
    [
        MetricRecord::new(0, 3.0),
        MetricRecord::new(1, 20_000.0),
        MetricRecord::new(2, 10e6),
        MetricRecord::new(3, 5000.0).with_last_sent(100.0),
    ]
}

/// The native-Rust equivalent of the paper's Figure 3 filter.
fn fig3_native(inputs: &[MetricRecord]) -> Vec<MetricRecord> {
    let mut out = Vec::new();
    if inputs[0].value > 2.0 {
        out.push(inputs[0]);
    }
    if inputs[1].value > 10_000.0 && inputs[2].value < 50e6 {
        out.push(inputs[1]);
        out.push(inputs[2]);
    }
    if inputs[3].value > inputs[3].last_value_sent {
        out.push(inputs[3]);
    }
    out
}

fn bench_compile(c: &mut Criterion) {
    let env = fig3_env();
    c.bench_function("ecode/compile_fig3", |b| {
        b.iter(|| Filter::compile(black_box(FIG3_SOURCE), &env).unwrap())
    });
}

/// Admission-time specialization latency: lowering an already-admitted
/// filter's stack chunk to fused register code and boxing the closure.
/// This is the cost `DeployFilter` pays once per admission so that
/// millions of per-sample executions run register code — it must stay
/// trivially small next to parse+certify (`ecode/compile_fig3`).
fn bench_specialize(c: &mut Criterion) {
    let env = fig3_env();
    let filter = Filter::compile(FIG3_SOURCE, &env).unwrap();
    c.bench_function("ecode/specialize_fig3", |b| {
        b.iter(|| compile_filter(black_box(&filter)).expect("fig3 compiles"))
    });
}

fn bench_execute(c: &mut Criterion) {
    let env = fig3_env();
    let filter = Filter::compile(FIG3_SOURCE, &env).unwrap();
    let compiled = compile_filter(&filter).expect("fig3 compiles");
    let inputs = fig3_inputs();
    let mut group = c.benchmark_group("ecode/execute_fig3");
    group.bench_function("vm", |b| b.iter(|| filter.run(black_box(&inputs)).unwrap()));
    group.bench_function("compiled", |b| {
        b.iter(|| compiled.run(black_box(&inputs)).unwrap())
    });
    group.bench_function("native_rust", |b| {
        b.iter(|| fig3_native(black_box(&inputs)))
    });
    group.finish();
}

fn bench_loop_heavy(c: &mut Criterion) {
    // A filter dominated by loop iterations, the VM's worst case.
    let env = EnvSpec::new(["X"]);
    let src = "{ int s = 0; for (int i = 0; i < 1000; i = i + 1) { s = s + i; } if (s > 0) { output[0] = input[X]; } }";
    let filter = Filter::compile(src, &env).unwrap();
    let inputs = [MetricRecord::new(0, 1.0)];
    c.bench_function("ecode/loop_1000_iters", |b| {
        b.iter(|| filter.run(black_box(&inputs)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_specialize,
    bench_execute,
    bench_loop_heavy
);
criterion_main!(benches);
