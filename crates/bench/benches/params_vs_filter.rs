//! The paper claims parameters are "cheaper" than equivalent E-code
//! filters (less book-keeping, no dynamic code generation). This ablation
//! measures both implementations of the same differential rule.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dproc::params::{PolicySet, Rule};
use ecode::{EnvSpec, Filter, MetricRecord};
use simcore::SimTime;

fn bench_parameter_rule(c: &mut Criterion) {
    let mut policy = PolicySet::new();
    policy.set_rule("*", Rule::DeltaFraction(0.15));
    let ctx = dproc::params::RuleCtx {
        value: 1.3,
        last_sent_value: 1.0,
        last_sent_at: Some(SimTime::from_secs(1)),
        now: SimTime::from_secs(2),
    };
    c.bench_function("customization/parameter_delta15", |b| {
        b.iter(|| policy.decide(black_box("LOADAVG"), black_box(&ctx)))
    });
}

fn bench_equivalent_filter(c: &mut Criterion) {
    let env = EnvSpec::new(["LOADAVG"]);
    let src = r#"
{
    double last = input[LOADAVG].last_value_sent;
    double delta = input[LOADAVG].value - last;
    if (delta < 0.0) { delta = 0.0 - delta; }
    if (delta >= last * 0.15) {
        output[0] = input[LOADAVG];
    }
}
"#;
    let filter = Filter::compile(src, &env).unwrap();
    let inputs = [MetricRecord::new(0, 1.3).with_last_sent(1.0)];
    c.bench_function("customization/ecode_delta15", |b| {
        b.iter(|| filter.run(black_box(&inputs)).unwrap())
    });
}

fn bench_filter_deployment(c: &mut Criterion) {
    // The one-time cost the parameter path never pays.
    let env = EnvSpec::new(["LOADAVG"]);
    let src = "{ if (input[LOADAVG].value > 2.0) { output[0] = input[LOADAVG]; } }";
    c.bench_function("customization/filter_compile", |b| {
        b.iter(|| Filter::compile(black_box(src), &env).unwrap())
    });
}

criterion_group!(
    benches,
    bench_parameter_rule,
    bench_equivalent_filter,
    bench_filter_deployment
);
criterion_main!(benches);
