//! Static-analysis microbenchmarks: what filter admission costs at
//! deploy time. The verifier (lint + cost certification + read-set
//! extraction) runs once per `DeployFilter`, so its cost rides on the
//! paper's filter-deployment path — these benches keep it honest
//! against plain compilation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecode::parser::parse;
use ecode::sema::analyze;
use ecode::{analysis, fig3_env, EnvSpec, Filter, FIG3_SOURCE};

/// A loop-heavy filter: the worst case for the affine trip-count
/// inference and the interval walk.
const LOOPY: &str = "{ int s = 0; for (int i = 0; i < 1000; i = i + 1) { s = s + i; } if (s > 0) { output[0] = input[X]; } }";

fn bench_lint(c: &mut Criterion) {
    let env = fig3_env();
    let prog = analyze(&parse(FIG3_SOURCE).unwrap(), &env).unwrap();
    c.bench_function("analysis/lint_fig3", |b| {
        b.iter(|| analysis::lint(black_box(&prog)))
    });
}

fn bench_certify(c: &mut Criterion) {
    let env = fig3_env();
    let folded = ecode::opt::fold_program(analyze(&parse(FIG3_SOURCE).unwrap(), &env).unwrap());
    c.bench_function("analysis/certify_fig3", |b| {
        b.iter(|| analysis::certify(black_box(&folded)))
    });
}

fn bench_deploy_analysis(c: &mut Criterion) {
    // The full admission pipeline as Filter::compile runs it, for the
    // paper's Figure 3 filter and for a loop-heavy one.
    let mut group = c.benchmark_group("analysis/compile_with_verifier");
    let fig3 = fig3_env();
    group.bench_function("fig3", |b| {
        b.iter(|| Filter::compile(black_box(FIG3_SOURCE), &fig3).unwrap())
    });
    let env = EnvSpec::new(["X"]);
    group.bench_function("loop_1000", |b| {
        b.iter(|| Filter::compile(black_box(LOOPY), &env).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_lint, bench_certify, bench_deploy_analysis);
criterion_main!(benches);
