//! ProcFs microbenchmarks: the read/write paths every `/proc/cluster`
//! access goes through.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simos::ProcFs;

fn populated() -> ProcFs {
    let mut fs = ProcFs::new();
    for node in 0..8 {
        for metric in ["cpu", "mem", "disk", "net", "pmc"] {
            fs.set(&format!("cluster/node{node}/{metric}"), "value 1.0 ts 0")
                .unwrap();
        }
        fs.set(&format!("cluster/node{node}/control"), "").unwrap();
    }
    fs
}

fn bench_read(c: &mut Criterion) {
    let fs = populated();
    c.bench_function("procfs/read_deep_path", |b| {
        b.iter(|| fs.read(black_box("cluster/node5/cpu")).unwrap())
    });
}

fn bench_set(c: &mut Criterion) {
    let mut fs = populated();
    c.bench_function("procfs/set_existing", |b| {
        b.iter(|| {
            fs.set(black_box("cluster/node5/cpu"), black_box("value 2.0 ts 1"))
                .unwrap()
        })
    });
}

fn bench_list(c: &mut Criterion) {
    let fs = populated();
    c.bench_function("procfs/list_cluster", |b| {
        b.iter(|| fs.list(black_box("cluster")).unwrap())
    });
}

fn bench_control_write(c: &mut Criterion) {
    let mut fs = populated();
    c.bench_function("procfs/control_write_and_drain", |b| {
        b.iter(|| {
            fs.write(
                black_box("cluster/node3/control"),
                black_box("period cpu 2"),
            )
            .unwrap();
            fs.drain_writes()
        })
    });
}

criterion_group!(
    benches,
    bench_read,
    bench_set,
    bench_list,
    bench_control_write
);
criterion_main!(benches);
