//! Wire-codec microbenchmarks: encode/decode of the event sizes the
//! paper's microbenchmarks exercise (small ~90 B and ~5 KB events).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kecho::wire::{decode_event, encode_event};
use kecho::{Event, MonRecord, MonitoringPayload};
use simnet::NodeId;

fn event(records: usize, pad: u32) -> Event {
    Event::monitoring(
        1,
        99,
        NodeId(2),
        MonitoringPayload {
            origin: NodeId(2),
            epoch: 0,
            stream_seq: 0,
            credit_grant: 0,
            records: (0..records)
                .map(|i| MonRecord {
                    metric_id: i as u32,
                    value: i as f64 * 1.5,
                    last_value_sent: i as f64,
                    timestamp: 123.456,
                })
                .collect(),
            pad_bytes: pad,
            ext_names: Vec::new(),
        },
    )
}

fn bench_encode(c: &mut Criterion) {
    let small = event(5, 0);
    let large = event(5, 4900);
    let mut group = c.benchmark_group("wire/encode");
    group.bench_function("small_event", |b| {
        b.iter(|| encode_event(black_box(&small)))
    });
    group.bench_function("5kb_event", |b| b.iter(|| encode_event(black_box(&large))));
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let small = encode_event(&event(5, 0));
    let large = encode_event(&event(5, 4900));
    let mut group = c.benchmark_group("wire/decode");
    group.bench_function("small_event", |b| {
        b.iter(|| decode_event(black_box(small.clone())).unwrap())
    });
    group.bench_function("5kb_event", |b| {
        b.iter(|| decode_event(black_box(large.clone())).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
