//! Whole-simulator throughput: how fast the DES advances a full 8-node
//! monitored cluster (simulated seconds per wall second matter for the
//! long Fig. 9–11 sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use dproc::cluster::{ClusterConfig, ClusterSim};
use simcore::SimDur;

fn bench_cluster_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/advance_10_sim_seconds");
    group.sample_size(20);
    for n in [2usize, 8] {
        group.bench_function(format!("{n}_nodes"), |b| {
            b.iter_batched(
                || {
                    let mut sim = ClusterSim::new(ClusterConfig::new(n));
                    sim.start();
                    sim
                },
                |mut sim| {
                    sim.run_for(SimDur::from_secs(10));
                    sim
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_advance);
criterion_main!(benches);
