//! A single link direction: capacity, FIFO busy horizon, background load,
//! and utilization accounting.

use std::collections::VecDeque;

use simcore::{SimDur, SimTime};

/// Static parameters of a (full-duplex) link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Raw capacity in bits per second (per direction).
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: SimDur,
    /// Maximum transmission unit payload (bytes per packet on the wire).
    pub mtu_payload: usize,
    /// Per-packet overhead on the wire (headers, preamble, inter-frame gap).
    pub per_packet_overhead: usize,
    /// Maximum bulk messages queued per direction; a bulk message arriving
    /// while this many are already in flight is tail-dropped. A message
    /// arriving at an empty queue is always admitted regardless of caps.
    pub queue_msgs: usize,
    /// Maximum queued wire bytes per direction (tail-drop beyond, same
    /// empty-queue exemption as `queue_msgs`).
    pub queue_bytes: u64,
}

impl LinkSpec {
    /// 100 Mbps switched Fast Ethernet, as in the paper's testbed. The
    /// default queue caps are sized so ordinary monitoring traffic never
    /// sheds; overload scenarios tighten them via [`LinkSpec::with_queue`].
    pub fn fast_ethernet() -> Self {
        LinkSpec {
            bandwidth_bps: 100e6,
            latency: SimDur::from_micros(30),
            mtu_payload: 1448,
            per_packet_overhead: 78,
            queue_msgs: 4096,
            queue_bytes: 256 * 1024 * 1024,
        }
    }

    /// Same link with bounded per-direction queues of `msgs` messages /
    /// `bytes` wire bytes.
    #[must_use]
    pub fn with_queue(mut self, msgs: usize, bytes: u64) -> Self {
        self.queue_msgs = msgs;
        self.queue_bytes = bytes;
        self
    }

    /// Number of bytes actually occupying the wire for a `bytes` payload.
    pub fn wire_bytes(&self, bytes: usize) -> usize {
        if bytes == 0 {
            return self.per_packet_overhead;
        }
        let packets = bytes.div_ceil(self.mtu_payload);
        bytes + packets * self.per_packet_overhead
    }

    /// Serialization time of `bytes` of payload at full capacity.
    pub fn tx_time(&self, bytes: usize) -> SimDur {
        SimDur::from_secs_f64(self.wire_bytes(bytes) as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Conservative lookahead for parallel simulation: a message sent at
    /// `t` cannot be delivered before `t + lookahead()`. The send path
    /// charges at least two propagation latencies plus two first-packet
    /// serializations; the serializations only get *longer* under load or
    /// degradation (effective bandwidth never exceeds the nominal rate),
    /// and the empty-payload wire size (`per_packet_overhead` bytes) lower
    /// bounds every first packet. Loopback bypasses the wire but also
    /// never crosses a shard boundary.
    pub fn lookahead(&self) -> SimDur {
        (self.latency + self.tx_time(0)).mul_f64(2.0)
    }
}

/// Sliding-window byte accounting, used to estimate recent utilization.
#[derive(Debug, Clone)]
pub struct BytesWindow {
    window: SimDur,
    entries: VecDeque<(SimTime, u64)>,
    total: u64,
}

impl BytesWindow {
    /// Track bytes over a sliding `window`.
    pub fn new(window: SimDur) -> Self {
        assert!(!window.is_zero(), "zero-width byte window");
        BytesWindow {
            window,
            entries: VecDeque::new(),
            total: 0,
        }
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = now - self.window;
        while let Some(&(t, b)) = self.entries.front() {
            if t < cutoff {
                self.entries.pop_front();
                self.total -= b;
            } else {
                break;
            }
        }
    }

    /// Record `bytes` transferred at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.prune(now);
        self.entries.push_back((now, bytes));
        self.total += bytes;
    }

    /// Bytes observed within the window ending at `now`.
    pub fn bytes(&mut self, now: SimTime) -> u64 {
        self.prune(now);
        self.total
    }

    /// Average bits per second over the window ending at `now`.
    pub fn bps(&mut self, now: SimTime) -> f64 {
        self.prune(now);
        self.total as f64 * 8.0 / self.window.as_secs_f64()
    }

    /// Window width.
    pub fn window(&self) -> SimDur {
        self.window
    }
}

/// One direction of a full-duplex link: a FIFO store-and-forward queue with
/// a busy horizon, shared between discrete messages and fluid background
/// flows.
#[derive(Debug, Clone)]
pub struct DirLink {
    spec: LinkSpec,
    /// Time at which the link becomes free for the next message.
    busy_until: SimTime,
    /// Fluid background load (e.g. Iperf UDP floods), bits per second.
    background_bps: f64,
    /// Recent message traffic, for utilization probes.
    msg_window: BytesWindow,
    /// Lifetime counters.
    messages: u64,
    bytes: u64,
    /// Bulk transfers still occupying the queue: `(drain time, wire bytes)`,
    /// in FIFO order. Bounded by `spec.queue_msgs`.
    pending: VecDeque<(SimTime, u64)>,
    /// Sum of the wire bytes in `pending`.
    queued_bytes: u64,
    /// Tail-dropped messages / wire bytes (lifetime).
    drops: u64,
    drop_bytes: u64,
    /// High-water marks of the queue depth.
    hwm_msgs: usize,
    hwm_bytes: u64,
}

impl DirLink {
    /// New idle link direction.
    pub fn new(spec: LinkSpec) -> Self {
        DirLink {
            spec,
            busy_until: SimTime::ZERO,
            background_bps: 0.0,
            msg_window: BytesWindow::new(SimDur::from_secs(1)),
            messages: 0,
            bytes: 0,
            pending: VecDeque::new(),
            queued_bytes: 0,
            drops: 0,
            drop_bytes: 0,
            hwm_msgs: 0,
            hwm_bytes: 0,
        }
    }

    /// Static link parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Capacity available to discrete messages after background flows,
    /// in bits per second. Floored at 1% of raw capacity: even under severe
    /// UDP flooding some packets get through (UDP floods and TCP-ish
    /// messages share the wire statistically).
    pub fn effective_bps(&self) -> f64 {
        let residual = self.spec.bandwidth_bps - self.background_bps;
        residual.max(self.spec.bandwidth_bps * 0.01)
    }

    /// Serialization time of `bytes` at the current effective rate.
    pub fn tx_time_now(&self, bytes: usize) -> SimDur {
        SimDur::from_secs_f64(self.spec.wire_bytes(bytes) as f64 * 8.0 / self.effective_bps())
    }

    /// Enqueue a message: returns `(start, finish)` of its serialization on
    /// this link direction. FIFO: transmission starts when the link frees.
    pub fn enqueue(&mut self, now: SimTime, bytes: usize) -> (SimTime, SimTime) {
        let (start, finish) = self.reserve(now, self.tx_time_now(bytes));
        self.account(now, bytes);
        (start, finish)
    }

    /// Reserve the link for `dur` starting no earlier than `earliest`
    /// (FIFO behind existing traffic). Returns `(start, finish)` and marks
    /// the link busy until `finish`. Does not touch byte accounting.
    pub fn reserve(&mut self, earliest: SimTime, dur: SimDur) -> (SimTime, SimTime) {
        let start = self.busy_until.max(earliest);
        let finish = start + dur;
        self.busy_until = finish;
        (start, finish)
    }

    /// Push the busy horizon out to `t` if it is later (used when a
    /// downstream constraint stretches a reserved transmission).
    pub fn extend_busy(&mut self, t: SimTime) {
        self.busy_until = self.busy_until.max(t);
    }

    /// Record a message's bytes in the counters and the utilization window.
    pub fn account(&mut self, now: SimTime, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.msg_window.record(now, bytes as u64);
    }

    /// Queueing delay a message would currently experience (time until the
    /// link frees), without enqueuing.
    pub fn backlog(&self, now: SimTime) -> SimDur {
        self.busy_until.since(now)
    }

    /// Drop queue entries whose transmissions have drained by `now`.
    fn drain_queue(&mut self, now: SimTime) {
        while let Some(&(t, b)) = self.pending.front() {
            if t <= now {
                self.pending.pop_front();
                self.queued_bytes -= b;
            } else {
                break;
            }
        }
    }

    /// Deterministic tail-drop admission for a bulk transfer of
    /// `wire_bytes` arriving at `now`: drains finished entries, then
    /// rejects the newcomer if either queue cap would be exceeded. An
    /// empty queue always admits, so a single transfer larger than
    /// `queue_bytes` still passes (the NIC streams it; only *queueing*
    /// behind it is bounded). A rejection bumps the drop counters.
    pub fn admit(&mut self, now: SimTime, wire_bytes: u64) -> bool {
        self.drain_queue(now);
        if self.pending.is_empty() {
            return true;
        }
        if self.pending.len() >= self.spec.queue_msgs
            || self.queued_bytes + wire_bytes > self.spec.queue_bytes
        {
            self.drops += 1;
            self.drop_bytes += wire_bytes;
            return false;
        }
        true
    }

    /// Record an admitted bulk transfer occupying the queue until `until`
    /// (its serialization finish), updating the high-water marks.
    pub fn occupy(&mut self, until: SimTime, wire_bytes: u64) {
        self.pending.push_back((until, wire_bytes));
        self.queued_bytes += wire_bytes;
        self.hwm_msgs = self.hwm_msgs.max(self.pending.len());
        self.hwm_bytes = self.hwm_bytes.max(self.queued_bytes);
    }

    /// Current queue depth at `now` as `(messages, wire bytes)`.
    pub fn queue_depth(&mut self, now: SimTime) -> (usize, u64) {
        self.drain_queue(now);
        (self.pending.len(), self.queued_bytes)
    }

    /// Lifetime tail-dropped message count.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Lifetime tail-dropped wire bytes.
    pub fn drop_bytes(&self) -> u64 {
        self.drop_bytes
    }

    /// High-water mark of queued messages.
    pub fn hwm_msgs(&self) -> usize {
        self.hwm_msgs
    }

    /// High-water mark of queued wire bytes.
    pub fn hwm_bytes(&self) -> u64 {
        self.hwm_bytes
    }

    /// Add fluid background load (bits/sec).
    pub fn add_background(&mut self, bps: f64) {
        assert!(bps >= 0.0, "negative background load");
        self.background_bps += bps;
    }

    /// Remove fluid background load (bits/sec); clamps at zero.
    pub fn remove_background(&mut self, bps: f64) {
        self.background_bps = (self.background_bps - bps).max(0.0);
    }

    /// Current fluid background load in bits/sec.
    pub fn background_bps(&self) -> f64 {
        self.background_bps
    }

    /// Recent message throughput in bits/sec (sliding 1 s window).
    pub fn message_bps(&mut self, now: SimTime) -> f64 {
        self.msg_window.bps(now)
    }

    /// Lifetime message count.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Lifetime payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec::fast_ethernet()
    }

    #[test]
    fn wire_bytes_adds_per_packet_overhead() {
        let s = spec();
        assert_eq!(s.wire_bytes(100), 100 + 78);
        assert_eq!(s.wire_bytes(1448), 1448 + 78);
        assert_eq!(s.wire_bytes(1449), 1449 + 2 * 78);
        assert_eq!(s.wire_bytes(0), 78);
    }

    #[test]
    fn tx_time_scales_with_size() {
        let s = spec();
        let t1 = s.tx_time(1000);
        let t2 = s.tx_time(2000);
        assert!(t2 > t1);
        // 100 Mbps: 1 MB payload ≈ 80 ms + overheads
        let t = s.tx_time(1_000_000);
        assert!(
            t > SimDur::from_millis(80) && t < SimDur::from_millis(90),
            "{t}"
        );
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut l = DirLink::new(spec());
        let (s1, f1) = l.enqueue(SimTime::ZERO, 125_000); // 1 Mbit => 10ms + oh
        assert_eq!(s1, SimTime::ZERO);
        let (s2, f2) = l.enqueue(SimTime::ZERO, 125_000);
        assert_eq!(s2, f1, "second message starts when the first ends");
        assert!(f2 > f1);
        assert_eq!(l.messages(), 2);
        assert_eq!(l.bytes(), 250_000);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = DirLink::new(spec());
        l.enqueue(SimTime::ZERO, 1000);
        // long after the first finishes the link is idle again
        assert_eq!(l.backlog(SimTime::from_secs(5)), SimDur::ZERO);
        let (s, _) = l.enqueue(SimTime::from_secs(5), 1000);
        assert_eq!(s, SimTime::from_secs(5));
    }

    #[test]
    fn background_reduces_effective_bandwidth() {
        let mut l = DirLink::new(spec());
        let t_before = l.tx_time_now(125_000);
        l.add_background(50e6);
        let t_after = l.tx_time_now(125_000);
        assert!(
            t_after > t_before.mul_f64(1.9) && t_after < t_before.mul_f64(2.1),
            "halving bandwidth doubles tx time: {t_before} -> {t_after}"
        );
        l.remove_background(50e6);
        assert_eq!(l.background_bps(), 0.0);
    }

    #[test]
    fn effective_bandwidth_floored() {
        let mut l = DirLink::new(spec());
        l.add_background(500e6); // way over capacity
        assert!((l.effective_bps() - 1e6).abs() < 1.0, "1% floor");
    }

    #[test]
    fn bytes_window_slides() {
        let mut w = BytesWindow::new(SimDur::from_secs(1));
        w.record(SimTime::ZERO, 1000);
        w.record(SimTime::from_millis(500), 1000);
        assert_eq!(w.bytes(SimTime::from_millis(900)), 2000);
        // at t=1.2s the first entry (t=0) leaves the window
        assert_eq!(w.bytes(SimTime::from_millis(1200)), 1000);
        assert!((w.bps(SimTime::from_millis(1200)) - 8000.0).abs() < 1e-9);
        assert_eq!(w.window(), SimDur::from_secs(1));
    }

    #[test]
    fn tail_drop_bounds_the_queue() {
        let mut l = DirLink::new(spec().with_queue(2, u64::MAX));
        let w = spec().wire_bytes(125_000) as u64;
        // First transfer: empty queue, always admitted.
        assert!(l.admit(SimTime::ZERO, w));
        let (_, f1) = l.enqueue(SimTime::ZERO, 125_000);
        l.occupy(f1, w);
        // Second fits under the cap.
        assert!(l.admit(SimTime::ZERO, w));
        let (_, f2) = l.enqueue(SimTime::ZERO, 125_000);
        l.occupy(f2, w);
        // Third exceeds queue_msgs = 2: tail-dropped.
        assert!(!l.admit(SimTime::ZERO, w));
        assert_eq!(l.drops(), 1);
        assert_eq!(l.drop_bytes(), w);
        assert_eq!(l.hwm_msgs(), 2);
        assert_eq!(l.queue_depth(SimTime::ZERO), (2, 2 * w));
        // After both drain, the queue is empty and admits again.
        assert!(l.admit(f2 + SimDur::from_millis(1), w));
        assert_eq!(l.queue_depth(f2 + SimDur::from_millis(1)), (0, 0));
    }

    #[test]
    fn byte_cap_drops_but_oversize_single_passes() {
        let mut l = DirLink::new(spec().with_queue(usize::MAX, 1000));
        // A 1 MB transfer into an empty queue passes despite the 1000-byte
        // cap: only queueing behind it is bounded.
        let big = spec().wire_bytes(1_000_000) as u64;
        assert!(l.admit(SimTime::ZERO, big));
        let (_, f) = l.enqueue(SimTime::ZERO, 1_000_000);
        l.occupy(f, big);
        // Anything arriving behind it busts the byte cap.
        assert!(!l.admit(SimTime::ZERO, 100));
        assert_eq!(l.drops(), 1);
        assert!(l.hwm_bytes() >= big);
    }

    #[test]
    fn message_bps_reflects_traffic() {
        let mut l = DirLink::new(spec());
        l.enqueue(SimTime::ZERO, 125_000);
        let bps = l.message_bps(SimTime::from_millis(100));
        assert!((bps - 1e6).abs() < 1e-6, "1 Mbit in a 1 s window: {bps}");
    }
}
